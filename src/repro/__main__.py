"""Module entry point: ``python -m repro "<query>"``."""

import sys

from repro.cli import main

sys.exit(main())
