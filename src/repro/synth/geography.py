"""Geographic substrate: regions, countries, coastal cities, distances.

The catalog below is a deliberately compact model of world geography.  It
keeps real country codes, plausible centroids, and the coastal cities that
anchor submarine-cable landing points, so that downstream geolocation and
speed-of-light validation behave like they would on real data.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum


class Region(str, Enum):
    """Continental regions used for spatial scoping of queries."""

    EUROPE = "europe"
    ASIA = "asia"
    MIDDLE_EAST = "middle_east"
    AFRICA = "africa"
    NORTH_AMERICA = "north_america"
    SOUTH_AMERICA = "south_america"
    OCEANIA = "oceania"


@dataclass(frozen=True)
class Country:
    """A country with a centroid and a routing-weight proxy for its size."""

    code: str
    name: str
    region: Region
    lat: float
    lon: float
    weight: float  # relative Internet footprint; drives AS/prefix counts

    @property
    def centroid(self) -> tuple[float, float]:
        return (self.lat, self.lon)


@dataclass(frozen=True)
class CoastalCity:
    """A coastal city eligible to host submarine-cable landing points."""

    name: str
    country_code: str
    lat: float
    lon: float


def _c(code: str, name: str, region: Region, lat: float, lon: float, weight: float) -> Country:
    return Country(code=code, name=name, region=region, lat=lat, lon=lon, weight=weight)


#: Country catalog.  Weights are relative Internet footprints (AS counts,
#: prefix counts and probe density all scale with them).
COUNTRIES: tuple[Country, ...] = (
    # Europe
    _c("FR", "France", Region.EUROPE, 46.2, 2.2, 3.0),
    _c("DE", "Germany", Region.EUROPE, 51.2, 10.4, 3.2),
    _c("GB", "United Kingdom", Region.EUROPE, 54.0, -2.0, 3.1),
    _c("IT", "Italy", Region.EUROPE, 42.8, 12.8, 2.4),
    _c("ES", "Spain", Region.EUROPE, 40.2, -3.5, 2.0),
    _c("NL", "Netherlands", Region.EUROPE, 52.2, 5.3, 2.2),
    _c("GR", "Greece", Region.EUROPE, 39.0, 22.0, 1.2),
    _c("PT", "Portugal", Region.EUROPE, 39.5, -8.0, 1.0),
    # Middle East
    _c("EG", "Egypt", Region.MIDDLE_EAST, 26.8, 30.8, 1.6),
    _c("SA", "Saudi Arabia", Region.MIDDLE_EAST, 23.9, 45.1, 1.5),
    _c("AE", "United Arab Emirates", Region.MIDDLE_EAST, 23.4, 53.8, 1.4),
    _c("OM", "Oman", Region.MIDDLE_EAST, 21.5, 55.9, 0.8),
    _c("YE", "Yemen", Region.MIDDLE_EAST, 15.6, 48.0, 0.5),
    _c("TR", "Turkey", Region.MIDDLE_EAST, 39.0, 35.0, 1.6),
    _c("DJ", "Djibouti", Region.MIDDLE_EAST, 11.8, 42.6, 0.4),
    # Asia
    _c("IN", "India", Region.ASIA, 21.0, 78.0, 3.0),
    _c("LK", "Sri Lanka", Region.ASIA, 7.9, 80.8, 0.7),
    _c("BD", "Bangladesh", Region.ASIA, 23.7, 90.4, 0.8),
    _c("MM", "Myanmar", Region.ASIA, 19.8, 96.1, 0.5),
    _c("TH", "Thailand", Region.ASIA, 15.1, 101.0, 1.2),
    _c("MY", "Malaysia", Region.ASIA, 3.9, 102.0, 1.2),
    _c("SG", "Singapore", Region.ASIA, 1.35, 103.8, 1.8),
    _c("ID", "Indonesia", Region.ASIA, -2.5, 118.0, 1.4),
    _c("HK", "Hong Kong", Region.ASIA, 22.3, 114.2, 1.6),
    _c("CN", "China", Region.ASIA, 35.0, 103.0, 3.2),
    _c("JP", "Japan", Region.ASIA, 36.2, 138.3, 2.8),
    _c("KR", "South Korea", Region.ASIA, 36.5, 127.8, 2.2),
    _c("TW", "Taiwan", Region.ASIA, 23.7, 121.0, 1.5),
    _c("PH", "Philippines", Region.ASIA, 12.9, 121.8, 0.9),
    _c("VN", "Vietnam", Region.ASIA, 16.0, 107.8, 0.9),
    _c("PK", "Pakistan", Region.ASIA, 30.4, 69.4, 1.0),
    # Africa
    _c("KE", "Kenya", Region.AFRICA, 0.2, 37.9, 0.7),
    _c("ZA", "South Africa", Region.AFRICA, -29.0, 24.0, 1.1),
    _c("NG", "Nigeria", Region.AFRICA, 9.1, 8.7, 0.9),
    # Americas
    _c("US", "United States", Region.NORTH_AMERICA, 39.8, -98.6, 4.0),
    _c("CA", "Canada", Region.NORTH_AMERICA, 56.1, -106.3, 1.8),
    _c("MX", "Mexico", Region.NORTH_AMERICA, 23.6, -102.5, 1.2),
    _c("BR", "Brazil", Region.SOUTH_AMERICA, -10.3, -53.2, 1.8),
    _c("AR", "Argentina", Region.SOUTH_AMERICA, -34.0, -64.0, 1.0),
    # Oceania
    _c("AU", "Australia", Region.OCEANIA, -25.3, 133.8, 1.6),
    _c("NZ", "New Zealand", Region.OCEANIA, -41.0, 174.0, 0.7),
)

_BY_CODE: dict[str, Country] = {c.code: c for c in COUNTRIES}


#: Coastal cities hosting cable landing points.  Coordinates are real-world
#: approximations so that segment lengths and latency figures are plausible.
COASTAL_CITIES: tuple[CoastalCity, ...] = (
    CoastalCity("Marseille", "FR", 43.30, 5.37),
    CoastalCity("Toulon", "FR", 43.12, 5.93),
    CoastalCity("Bude", "GB", 50.83, -4.55),
    CoastalCity("Porthcurno", "GB", 50.04, -5.65),
    CoastalCity("Palermo", "IT", 38.12, 13.36),
    CoastalCity("Catania", "IT", 37.50, 15.09),
    CoastalCity("Bilbao", "ES", 43.26, -2.93),
    CoastalCity("Lisbon", "PT", 38.72, -9.14),
    CoastalCity("Amsterdam", "NL", 52.37, 4.90),
    CoastalCity("Chania", "GR", 35.51, 24.02),
    CoastalCity("Istanbul", "TR", 41.01, 28.98),
    CoastalCity("Alexandria", "EG", 31.20, 29.92),
    CoastalCity("Suez", "EG", 29.97, 32.55),
    CoastalCity("Zafarana", "EG", 29.11, 32.65),
    CoastalCity("Jeddah", "SA", 21.49, 39.19),
    CoastalCity("Yanbu", "SA", 24.09, 38.06),
    CoastalCity("Fujairah", "AE", 25.13, 56.34),
    CoastalCity("Dubai", "AE", 25.20, 55.27),
    CoastalCity("Muscat", "OM", 23.59, 58.41),
    CoastalCity("Aden", "YE", 12.79, 45.03),
    CoastalCity("Djibouti City", "DJ", 11.59, 43.15),
    CoastalCity("Mumbai", "IN", 19.08, 72.88),
    CoastalCity("Chennai", "IN", 13.08, 80.27),
    CoastalCity("Colombo", "LK", 6.93, 79.85),
    CoastalCity("Matara", "LK", 5.95, 80.54),
    CoastalCity("Cox's Bazar", "BD", 21.43, 91.97),
    CoastalCity("Ngwe Saung", "MM", 16.86, 94.40),
    CoastalCity("Satun", "TH", 6.62, 100.07),
    CoastalCity("Songkhla", "TH", 7.20, 100.60),
    CoastalCity("Melaka", "MY", 2.19, 102.25),
    CoastalCity("Penang", "MY", 5.41, 100.33),
    CoastalCity("Tuas", "SG", 1.32, 103.65),
    CoastalCity("Changi", "SG", 1.39, 103.99),
    CoastalCity("Jakarta", "ID", -6.21, 106.85),
    CoastalCity("Tseung Kwan O", "HK", 22.31, 114.26),
    CoastalCity("Chung Hom Kok", "HK", 22.22, 114.20),
    CoastalCity("Shanghai", "CN", 31.23, 121.47),
    CoastalCity("Shantou", "CN", 23.35, 116.68),
    CoastalCity("Chikura", "JP", 34.95, 139.95),
    CoastalCity("Shima", "JP", 34.30, 136.80),
    CoastalCity("Busan", "KR", 35.18, 129.08),
    CoastalCity("Toucheng", "TW", 24.85, 121.82),
    CoastalCity("Batangas", "PH", 13.76, 121.06),
    CoastalCity("Da Nang", "VN", 16.05, 108.21),
    CoastalCity("Karachi", "PK", 24.86, 67.00),
    CoastalCity("Mombasa", "KE", -4.04, 39.66),
    CoastalCity("Mtunzini", "ZA", -28.95, 31.75),
    CoastalCity("Lagos", "NG", 6.45, 3.39),
    CoastalCity("New York", "US", 40.71, -74.01),
    CoastalCity("Virginia Beach", "US", 36.85, -75.98),
    CoastalCity("Los Angeles", "US", 34.05, -118.24),
    CoastalCity("Hillsboro", "US", 45.52, -122.99),
    CoastalCity("Halifax", "CA", 44.65, -63.57),
    CoastalCity("Cancun", "MX", 21.16, -86.85),
    CoastalCity("Fortaleza", "BR", -3.73, -38.52),
    CoastalCity("Santos", "BR", -23.96, -46.33),
    CoastalCity("Las Toninas", "AR", -36.49, -56.70),
    CoastalCity("Sydney", "AU", -33.87, 151.21),
    CoastalCity("Perth", "AU", -31.95, 115.86),
    CoastalCity("Auckland", "NZ", -36.85, 174.76),
)

_CITY_BY_NAME: dict[str, CoastalCity] = {c.name: c for c in COASTAL_CITIES}


def country_by_code(code: str) -> Country:
    """Return the country for an ISO-2 code, raising ``KeyError`` if unknown."""
    return _BY_CODE[code]


def all_country_codes() -> list[str]:
    return [c.code for c in COUNTRIES]


def countries_in_region(region: Region) -> list[Country]:
    return [c for c in COUNTRIES if c.region == region]


def city_by_name(name: str) -> CoastalCity:
    """Return the coastal city with the given name (``KeyError`` if unknown)."""
    return _CITY_BY_NAME[name]


EARTH_RADIUS_KM = 6371.0


def haversine_km(a: tuple[float, float], b: tuple[float, float]) -> float:
    """Great-circle distance in kilometres between two ``(lat, lon)`` points."""
    lat1, lon1 = math.radians(a[0]), math.radians(a[1])
    lat2, lon2 = math.radians(b[0]), math.radians(b[1])
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = math.sin(dlat / 2.0) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_KM * math.asin(math.sqrt(h))


def path_length_km(points: list[tuple[float, float]]) -> float:
    """Total great-circle length of a polyline of ``(lat, lon)`` points."""
    if len(points) < 2:
        return 0.0
    return sum(haversine_km(points[i], points[i + 1]) for i in range(len(points) - 1))


def point_within_radius(
    point: tuple[float, float], center: tuple[float, float], radius_km: float
) -> bool:
    """True when ``point`` lies within ``radius_km`` of ``center``."""
    return haversine_km(point, center) <= radius_km


def interpolate(
    a: tuple[float, float], b: tuple[float, float], fraction: float
) -> tuple[float, float]:
    """Linear interpolation between two coordinates.

    Linear in lat/lon space is adequate for the segment sampling used by
    disaster footprints; we do not need true great-circle interpolation.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be within [0, 1], got {fraction}")
    return (a[0] + (b[0] - a[0]) * fraction, a[1] + (b[1] - a[1]) * fraction)
