"""Autonomous-system substrate: AS generation and inter-AS relationships.

The generator produces a three-tier hierarchy shaped like CAIDA's AS
relationship inference: a clique-ish set of global tier-1 transits, regional
tier-2 transits that buy from tier-1s and peer laterally, and tier-3 access
or content networks that buy from tier-2s.  Relationship edges carry the
customer-to-provider / peer-to-peer semantics used by valley-free path
inference in :mod:`repro.bgp.paths`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum

from repro.synth.geography import COUNTRIES, Country, Region


class ASType(str, Enum):
    TRANSIT = "transit"
    ACCESS = "access"
    CONTENT = "content"
    ENTERPRISE = "enterprise"


class RelationshipKind(str, Enum):
    CUSTOMER_PROVIDER = "c2p"  # first AS is customer of the second
    PEER_PEER = "p2p"


@dataclass(frozen=True)
class AutonomousSystem:
    """A synthetic AS: number, name, home country, tier and business type."""

    asn: int
    name: str
    country_code: str
    tier: int  # 1 (global transit), 2 (regional transit), 3 (edge)
    as_type: ASType

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"AS{self.asn} ({self.name})"


@dataclass(frozen=True)
class ASRelationship:
    """A directed business relationship between two ASes."""

    a: int
    b: int
    kind: RelationshipKind

    def involves(self, asn: int) -> bool:
        return asn == self.a or asn == self.b


_TRANSIT_SYLLABLES = ("Tele", "Net", "Glo", "Trans", "Inter", "Core", "Back")
_TRANSIT_SUFFIXES = ("com", "net", "link", "wave", "path", "bone")
_CONTENT_NAMES = ("StreamCo", "CloudNine", "Cachely", "VidSphere", "EdgeBox", "PixelCDN")


def _as_name(rng: random.Random, country: Country, tier: int, as_type: ASType, index: int) -> str:
    if as_type is ASType.CONTENT:
        base = rng.choice(_CONTENT_NAMES)
        return f"{base}-{country.code}{index}"
    prefix = rng.choice(_TRANSIT_SYLLABLES)
    suffix = rng.choice(_TRANSIT_SUFFIXES)
    role = {1: "GL", 2: "RG", 3: "AC"}[tier]
    return f"{prefix}{suffix}-{country.code}-{role}{index}"


@dataclass
class ASLayer:
    """The generated AS layer: ASes plus their relationship edges."""

    ases: dict[int, AutonomousSystem]
    relationships: list[ASRelationship]

    def by_country(self, code: str) -> list[AutonomousSystem]:
        return [a for a in self.ases.values() if a.country_code == code]

    def by_tier(self, tier: int) -> list[AutonomousSystem]:
        return [a for a in self.ases.values() if a.tier == tier]

    def providers_of(self, asn: int) -> list[int]:
        return [r.b for r in self.relationships if r.kind is RelationshipKind.CUSTOMER_PROVIDER and r.a == asn]

    def customers_of(self, asn: int) -> list[int]:
        return [r.a for r in self.relationships if r.kind is RelationshipKind.CUSTOMER_PROVIDER and r.b == asn]

    def peers_of(self, asn: int) -> list[int]:
        out: list[int] = []
        for r in self.relationships:
            if r.kind is not RelationshipKind.PEER_PEER:
                continue
            if r.a == asn:
                out.append(r.b)
            elif r.b == asn:
                out.append(r.a)
        return out


def generate_as_layer(
    rng: random.Random,
    tier1_count: int = 8,
    tier2_per_region: int = 4,
    edge_density: float = 1.0,
) -> ASLayer:
    """Generate the AS hierarchy.

    ``edge_density`` scales the number of tier-3 networks per country; 1.0
    yields roughly two edge networks per unit of country weight.
    """
    ases: dict[int, AutonomousSystem] = {}
    relationships: list[ASRelationship] = []
    next_asn = 1000

    def add_as(country: Country, tier: int, as_type: ASType, index: int) -> AutonomousSystem:
        nonlocal next_asn
        asys = AutonomousSystem(
            asn=next_asn,
            name=_as_name(rng, country, tier, as_type, index),
            country_code=country.code,
            tier=tier,
            as_type=as_type,
        )
        ases[asys.asn] = asys
        next_asn += 1
        return asys

    # Tier 1: global transit providers homed in the highest-weight countries.
    heavy = sorted(COUNTRIES, key=lambda c: c.weight, reverse=True)
    tier1: list[AutonomousSystem] = []
    for i in range(tier1_count):
        country = heavy[i % len(heavy)]
        tier1.append(add_as(country, 1, ASType.TRANSIT, i))

    # Tier-1 mesh: a complete peering clique.  Tier-1s have no providers, so
    # any missing peering would make two of them mutually unreachable under
    # valley-free policy — the real default-free zone is fully meshed for
    # exactly this reason.
    for i, a in enumerate(tier1):
        for b in tier1[i + 1 :]:
            relationships.append(ASRelationship(a.asn, b.asn, RelationshipKind.PEER_PEER))

    # Tier 2: regional transits, multi-homed to two tier-1s, peering within
    # their region.
    tier2_by_region: dict[Region, list[AutonomousSystem]] = {}
    for region in Region:
        regional_countries = [c for c in COUNTRIES if c.region == region]
        if not regional_countries:
            continue
        members: list[AutonomousSystem] = []
        for i in range(tier2_per_region):
            country = rng.choice(regional_countries)
            asys = add_as(country, 2, ASType.TRANSIT, i)
            members.append(asys)
            for provider in rng.sample(tier1, k=min(2, len(tier1))):
                relationships.append(
                    ASRelationship(asys.asn, provider.asn, RelationshipKind.CUSTOMER_PROVIDER)
                )
        for i, a in enumerate(members):
            for b in members[i + 1 :]:
                if rng.random() < 0.5:
                    relationships.append(ASRelationship(a.asn, b.asn, RelationshipKind.PEER_PEER))
        tier2_by_region[region] = members

    # Tier 3: access/content/enterprise networks per country, buying from
    # regional tier-2s (falling back to tier-1 when a region has none).
    for country in COUNTRIES:
        n_edge = max(1, round(country.weight * 2 * edge_density))
        regional = tier2_by_region.get(country.region) or tier1
        for i in range(n_edge):
            roll = rng.random()
            if roll < 0.55:
                as_type = ASType.ACCESS
            elif roll < 0.8:
                as_type = ASType.CONTENT
            else:
                as_type = ASType.ENTERPRISE
            asys = add_as(country, 3, as_type, i)
            n_providers = 2 if rng.random() < 0.4 else 1
            for provider in rng.sample(regional, k=min(n_providers, len(regional))):
                relationships.append(
                    ASRelationship(asys.asn, provider.asn, RelationshipKind.CUSTOMER_PROVIDER)
                )

    return ASLayer(ases=ases, relationships=relationships)
