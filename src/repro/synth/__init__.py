"""Synthetic Internet generator.

This package replaces the proprietary datasets the ArachNet paper relies on
(TeleGeography cable maps, CAIDA AS relationships, RIPE Atlas probe metadata)
with a deterministic, seedable generator.  The generated world is shaped like
the real artifacts: named submarine cables with landing-point sequences,
autonomous systems with tiers and relationships, IP prefixes geolocated to
countries, and cross-layer IP-link-to-cable assignments.

The entry point is :func:`repro.synth.world.build_world`, which returns a
:class:`repro.synth.world.SyntheticWorld` consumed by every substrate package
(``repro.nautilus``, ``repro.xaminer``, ``repro.bgp``, ``repro.traceroute``).
"""

from repro.synth.geography import (
    COUNTRIES,
    Country,
    Region,
    country_by_code,
    haversine_km,
)
from repro.synth.cables import CABLE_BLUEPRINTS, CableBlueprint, LandingPoint, SubmarineCable
from repro.synth.ases import AutonomousSystem, ASRelationship, RelationshipKind
from repro.synth.iplinks import IPLink, Prefix
from repro.synth.world import SyntheticWorld, WorldConfig, build_world
from repro.synth.scenarios import (
    DisasterEvent,
    DisasterKind,
    LatencyIncident,
    default_disaster_catalog,
    make_latency_incident,
)

__all__ = [
    "COUNTRIES",
    "Country",
    "Region",
    "country_by_code",
    "haversine_km",
    "CABLE_BLUEPRINTS",
    "CableBlueprint",
    "LandingPoint",
    "SubmarineCable",
    "AutonomousSystem",
    "ASRelationship",
    "RelationshipKind",
    "IPLink",
    "Prefix",
    "SyntheticWorld",
    "WorldConfig",
    "build_world",
    "DisasterEvent",
    "DisasterKind",
    "LatencyIncident",
    "default_disaster_catalog",
    "make_latency_incident",
]
