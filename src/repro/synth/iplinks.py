"""IP-layer substrate: prefixes, router-level links, cross-layer assignment.

Every inter-AS relationship materialises into one or more router-level IP
links with geolocated endpoints.  Links that cross continental regions are
*submarine* and are assigned to exactly one cable by detour minimisation —
the same physical reasoning Nautilus uses (an IP link rides the cable whose
landing points minimise the path stretch between the link endpoints).
"""

from __future__ import annotations

import ipaddress
import random
from dataclasses import dataclass
from enum import Enum

from repro.synth.ases import ASLayer, AutonomousSystem
from repro.synth.cables import LandingPoint, SubmarineCable
from repro.synth.geography import (
    COASTAL_CITIES,
    Region,
    country_by_code,
    haversine_km,
)


class LinkKind(str, Enum):
    DOMESTIC = "domestic"  # both endpoints in the same country
    TERRESTRIAL = "terrestrial"  # cross-country, same region
    SUBMARINE = "submarine"  # cross-region, rides a cable


@dataclass(frozen=True)
class Prefix:
    """An IPv4 prefix originated by an AS and geolocated to its country."""

    cidr: str
    asn: int
    country_code: str

    @property
    def network(self) -> ipaddress.IPv4Network:
        return ipaddress.ip_network(self.cidr)


@dataclass
class IPLink:
    """A router-level link between two ASes with cross-layer metadata."""

    id: str
    ip_a: str
    ip_b: str
    asn_a: int
    asn_b: int
    coord_a: tuple[float, float]
    coord_b: tuple[float, float]
    country_a: str
    country_b: str
    kind: LinkKind
    cable_id: str | None
    capacity_gbps: float
    base_load: float  # fraction of capacity carried at steady state

    @property
    def endpoints(self) -> tuple[str, str]:
        return (self.ip_a, self.ip_b)

    @property
    def as_pair(self) -> tuple[int, int]:
        return (min(self.asn_a, self.asn_b), max(self.asn_a, self.asn_b))

    def other_end(self, ip: str) -> str:
        if ip == self.ip_a:
            return self.ip_b
        if ip == self.ip_b:
            return self.ip_a
        raise ValueError(f"{ip} is not an endpoint of link {self.id}")


def allocate_prefixes(ases: dict[int, AutonomousSystem]) -> dict[int, list[Prefix]]:
    """Allocate deterministic /16 prefixes out of 10.0.0.0/8 per AS.

    Larger (lower-tier) networks get a single prefix; transit networks get
    two so that partial withdrawals are observable in the BGP substrate.
    """
    prefixes: dict[int, list[Prefix]] = {}
    block = 0
    for asn in sorted(ases):
        asys = ases[asn]
        count = 2 if asys.tier <= 2 else 1
        own: list[Prefix] = []
        for _ in range(count):
            if block > 0xFFFF:
                raise RuntimeError("prefix space exhausted; reduce AS count")
            cidr = f"10.{block >> 8}.{block & 0xFF}.0/24"
            own.append(Prefix(cidr=cidr, asn=asn, country_code=asys.country_code))
            block += 1
        prefixes[asn] = own
    return prefixes


class _HostAllocator:
    """Deterministically hands out host addresses from an AS's first prefix."""

    def __init__(self, prefixes: dict[int, list[Prefix]]):
        self._prefixes = prefixes
        self._next_host: dict[int, int] = {}

    def next_ip(self, asn: int) -> str:
        index = self._next_host.get(asn, 1)
        prefix = self._prefixes[asn][0].network
        if index >= prefix.num_addresses - 1:
            raise RuntimeError(f"host space exhausted for AS{asn}")
        self._next_host[asn] = index + 1
        return str(prefix.network_address + index)


def _coastal_coords(country_code: str) -> list[tuple[float, float]]:
    return [(c.lat, c.lon) for c in COASTAL_CITIES if c.country_code == country_code]


def _endpoint_coord(rng: random.Random, asys: AutonomousSystem, submarine: bool) -> tuple[float, float]:
    """Place a router endpoint inside the AS's home country.

    Submarine link endpoints sit at coastal cities when the country has any;
    other endpoints jitter around the country centroid.  Keeping submarine
    endpoints coastal makes speed-of-light validation in Nautilus meaningful.
    """
    country = country_by_code(asys.country_code)
    if submarine:
        coastal = _coastal_coords(asys.country_code)
        if coastal:
            return rng.choice(coastal)
    jitter_lat = rng.uniform(-2.0, 2.0)
    jitter_lon = rng.uniform(-2.0, 2.0)
    return (country.lat + jitter_lat, country.lon + jitter_lon)


def cable_path_km(cable: SubmarineCable, lp_a: str, lp_b: str) -> float:
    """Wet-path length along ``cable`` between two of its landing points."""
    ids = cable.landing_point_ids
    ia, ib = ids.index(lp_a), ids.index(lp_b)
    lo, hi = min(ia, ib), max(ia, ib)
    return sum(seg.length_km for seg in cable.segments[lo:hi])


def rank_cables_for_link(
    coord_a: tuple[float, float],
    coord_b: tuple[float, float],
    cables: dict[str, SubmarineCable],
    landing_points: dict[str, LandingPoint],
) -> list[tuple[str, float]]:
    """Rank cables by total detour between two endpoints, ascending.

    Detour = terrestrial tail from endpoint A to its nearest landing point of
    the cable, plus the wet path between the two chosen landing points, plus
    the tail to endpoint B.  Tails are weighted 4x: they model overland
    backhaul, which in practice is short — without the penalty a cable lying
    entirely on one continent can "win" an intercontinental link through an
    absurd terrestrial detour.  Returns ``[(cable_id, detour_km), ...]``.
    """
    tail_penalty = 4.0
    ranked: list[tuple[str, float]] = []
    for cable in cables.values():
        lps = [landing_points[i] for i in cable.landing_point_ids]
        near_a = min(lps, key=lambda lp: haversine_km(coord_a, lp.coord))
        near_b = min(lps, key=lambda lp: haversine_km(coord_b, lp.coord))
        if near_a.id == near_b.id:
            continue  # a single landing point cannot carry a crossing
        detour = (
            tail_penalty * haversine_km(coord_a, near_a.coord)
            + cable_path_km(cable, near_a.id, near_b.id)
            + tail_penalty * haversine_km(near_b.coord, coord_b)
        )
        ranked.append((cable.id, detour))
    if not ranked:
        raise RuntimeError("no cable can carry the link; catalog too sparse")
    ranked.sort(key=lambda pair: pair[1])
    return ranked


def best_cable_for_link(
    coord_a: tuple[float, float],
    coord_b: tuple[float, float],
    cables: dict[str, SubmarineCable],
    landing_points: dict[str, LandingPoint],
) -> tuple[str, float]:
    """The single minimum-detour cable (see :func:`rank_cables_for_link`)."""
    return rank_cables_for_link(coord_a, coord_b, cables, landing_points)[0]


def choose_cable_for_link(
    rng: random.Random,
    coord_a: tuple[float, float],
    coord_b: tuple[float, float],
    cables: dict[str, SubmarineCable],
    landing_points: dict[str, LandingPoint],
    spread: int = 5,
) -> str:
    """Sample a cable among the ``spread`` lowest-detour candidates.

    Real corridors are served by several parallel systems (SeaMeWe-5, AAE-1
    and SeaMeWe-4 all carry Europe–Asia traffic); strict argmin assignment
    would funnel every link onto one cable and make single-cable failures
    unrealistically binary.  Candidates within 2.0x of the best detour are
    eligible, weighted by system capacity — the share of traffic a corridor
    system carries tracks its lit capacity far more than small detour deltas.
    """
    ranked = rank_cables_for_link(coord_a, coord_b, cables, landing_points)
    best_detour = ranked[0][1]
    eligible = [cid for cid, d in ranked[:spread] if d <= best_detour * 2.0]
    weights = [cables[cid].capacity_tbps for cid in eligible]
    return rng.choices(eligible, weights=weights, k=1)[0]


def true_path_km(
    link: IPLink,
    cables: dict[str, SubmarineCable],
    landing_points: dict[str, LandingPoint],
) -> float:
    """Physical path length of a link, honouring its cable assignment.

    Submarine links run: terrestrial tail to the nearest landing point of
    their cable, the wet path between landing points, and the far tail.
    Terrestrial/domestic links take the great circle with a 1.3 road factor.
    This single function anchors both the traceroute RTT model and the
    RTT-based validation inside Nautilus, so the two substrates are
    physically consistent by construction.
    """
    if link.cable_id is None:
        return haversine_km(link.coord_a, link.coord_b) * 1.3
    cable = cables[link.cable_id]
    lps = [landing_points[i] for i in cable.landing_point_ids]
    near_a = min(lps, key=lambda lp: haversine_km(link.coord_a, lp.coord))
    near_b = min(lps, key=lambda lp: haversine_km(link.coord_b, lp.coord))
    if near_a.id == near_b.id:
        return haversine_km(link.coord_a, link.coord_b) * 1.3
    return (
        haversine_km(link.coord_a, near_a.coord) * 1.3
        + cable_path_km(cable, near_a.id, near_b.id)
        + haversine_km(near_b.coord, link.coord_b) * 1.3
    )


def _link_kind(a: AutonomousSystem, b: AutonomousSystem) -> LinkKind:
    if a.country_code == b.country_code:
        return LinkKind.DOMESTIC
    region_a = country_by_code(a.country_code).region
    region_b = country_by_code(b.country_code).region
    if region_a == region_b:
        return LinkKind.TERRESTRIAL
    return LinkKind.SUBMARINE


_CAPACITY_BY_TIER_PAIR = {
    (1, 1): 400.0,
    (1, 2): 200.0,
    (2, 2): 100.0,
    (1, 3): 100.0,
    (2, 3): 40.0,
    (3, 3): 10.0,
}


def build_ip_links(
    rng: random.Random,
    as_layer: ASLayer,
    prefixes: dict[int, list[Prefix]],
    cables: dict[str, SubmarineCable],
    landing_points: dict[str, LandingPoint],
    parallel_link_prob: float = 0.3,
) -> list[IPLink]:
    """Materialise IP links for every AS relationship.

    Tier-1 interconnects receive parallel links with probability
    ``parallel_link_prob`` so that single-cable failures do not always
    partition the backbone — matching the redundancy of real transit.
    """
    allocator = _HostAllocator(prefixes)
    links: list[IPLink] = []
    counter = 0
    for rel in as_layer.relationships:
        a = as_layer.ases[rel.a]
        b = as_layer.ases[rel.b]
        n_parallel = 1
        if a.tier == 1 and b.tier == 1 and rng.random() < parallel_link_prob:
            n_parallel = 2
        for _ in range(n_parallel):
            kind = _link_kind(a, b)
            submarine = kind is LinkKind.SUBMARINE
            coord_a = _endpoint_coord(rng, a, submarine)
            coord_b = _endpoint_coord(rng, b, submarine)
            cable_id: str | None = None
            if submarine:
                cable_id = choose_cable_for_link(rng, coord_a, coord_b, cables, landing_points)
            tier_pair = (min(a.tier, b.tier), max(a.tier, b.tier))
            capacity = _CAPACITY_BY_TIER_PAIR[tier_pair]
            link = IPLink(
                id=f"link-{counter:05d}",
                ip_a=allocator.next_ip(a.asn),
                ip_b=allocator.next_ip(b.asn),
                asn_a=a.asn,
                asn_b=b.asn,
                coord_a=coord_a,
                coord_b=coord_b,
                country_a=a.country_code,
                country_b=b.country_code,
                kind=kind,
                cable_id=cable_id,
                capacity_gbps=capacity,
                base_load=rng.uniform(0.25, 0.6),
            )
            links.append(link)
            counter += 1
    return links
