"""World assembly: one deterministic object bundling every substrate layer.

:func:`build_world` is the single entry point the rest of the repository
uses.  The world is immutable by convention — substrates derive views and
never mutate it — which keeps case studies reproducible and lets tests share
a module-scoped world.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import asdict, dataclass, field

from repro.synth.ases import ASLayer, ASRelationship, AutonomousSystem, generate_as_layer
from repro.synth.cables import (
    LandingPoint,
    SubmarineCable,
    build_cables,
    build_landing_points,
    cable_by_name,
)
from repro.synth.geography import COUNTRIES, Country, Region, country_by_code
from repro.synth.iplinks import IPLink, LinkKind, Prefix, allocate_prefixes, build_ip_links


@dataclass(frozen=True)
class WorldConfig:
    """Knobs for world generation.  Defaults produce a mid-sized Internet."""

    seed: int = 7
    tier1_count: int = 12
    tier2_per_region: int = 6
    edge_density: float = 1.6
    parallel_link_prob: float = 0.35


@dataclass
class SyntheticWorld:
    """The generated Internet: geography, cables, ASes, prefixes and links."""

    config: WorldConfig
    countries: dict[str, Country]
    landing_points: dict[str, LandingPoint]
    cables: dict[str, SubmarineCable]
    as_layer: ASLayer
    prefixes: dict[int, list[Prefix]]
    ip_links: list[IPLink]

    # Derived indexes, built once in __post_init__.
    links_by_cable: dict[str, list[IPLink]] = field(default_factory=dict, repr=False)
    links_by_asn: dict[int, list[IPLink]] = field(default_factory=dict, repr=False)
    link_by_id: dict[str, IPLink] = field(default_factory=dict, repr=False)
    prefix_by_cidr: dict[str, Prefix] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self.links_by_cable = {}
        self.links_by_asn = {}
        self.link_by_id = {}
        for link in self.ip_links:
            self.link_by_id[link.id] = link
            if link.cable_id is not None:
                self.links_by_cable.setdefault(link.cable_id, []).append(link)
            self.links_by_asn.setdefault(link.asn_a, []).append(link)
            self.links_by_asn.setdefault(link.asn_b, []).append(link)
        self.prefix_by_cidr = {
            p.cidr: p for plist in self.prefixes.values() for p in plist
        }
        # Memoized derivations; the world is immutable by convention, so both
        # are computed at most once (the BGP collector consults all_prefixes
        # per route table and the serve/live layers fingerprint per payload).
        self._all_prefixes: list[Prefix] | None = None
        self._fingerprint: str | None = None

    # -- lookup helpers -----------------------------------------------------

    @property
    def ases(self) -> dict[int, AutonomousSystem]:
        return self.as_layer.ases

    @property
    def relationships(self) -> list[ASRelationship]:
        return self.as_layer.relationships

    def cable_named(self, name: str) -> SubmarineCable:
        """Case-insensitive cable lookup by human-readable name."""
        return cable_by_name(self.cables, name)

    def cable_names(self) -> list[str]:
        return sorted(c.name for c in self.cables.values())

    def country(self, code: str) -> Country:
        return self.countries[code]

    def countries_in_region(self, region: Region) -> list[Country]:
        return [c for c in self.countries.values() if c.region == region]

    def links_on_cable(self, cable_id: str) -> list[IPLink]:
        return list(self.links_by_cable.get(cable_id, []))

    def submarine_links(self) -> list[IPLink]:
        return [l for l in self.ip_links if l.kind is LinkKind.SUBMARINE]

    def prefixes_of(self, asn: int) -> list[Prefix]:
        return list(self.prefixes.get(asn, []))

    def all_prefixes(self) -> list[Prefix]:
        """Every announced prefix, memoized — callers must not mutate it."""
        if self._all_prefixes is None:
            self._all_prefixes = [p for plist in self.prefixes.values() for p in plist]
        return self._all_prefixes

    def ases_in_country(self, code: str) -> list[AutonomousSystem]:
        return self.as_layer.by_country(code)

    def fingerprint(self) -> str:
        """Stable hex identity of this generated world.

        Hashes the generation config plus the structural summary — enough to
        distinguish any two worlds :func:`build_world` can produce, since
        generation is a pure function of the config.  The live subsystem
        folds this into per-epoch fingerprints so cached epoch results from
        one world can never be served for another, and the process execution
        backend ships it with every job payload — so compute it once.
        """
        if self._fingerprint is None:
            material = json.dumps(
                {"config": asdict(self.config), "summary": self.summary()},
                sort_keys=True,
            )
            self._fingerprint = hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]
        return self._fingerprint

    def summary(self) -> dict[str, int]:
        """Size summary used by docs and sanity tests."""
        return {
            "countries": len(self.countries),
            "landing_points": len(self.landing_points),
            "cables": len(self.cables),
            "ases": len(self.ases),
            "relationships": len(self.relationships),
            "prefixes": len(self.all_prefixes()),
            "ip_links": len(self.ip_links),
            "submarine_links": len(self.submarine_links()),
        }


def build_world(config: WorldConfig | None = None) -> SyntheticWorld:
    """Generate a :class:`SyntheticWorld` deterministically from the config.

    Two calls with equal configs produce byte-identical worlds; every random
    draw flows through one seeded ``random.Random``.
    """
    cfg = config or WorldConfig()
    rng = random.Random(cfg.seed)

    landing_points = build_landing_points()
    cables = build_cables(landing_points)
    as_layer = generate_as_layer(
        rng,
        tier1_count=cfg.tier1_count,
        tier2_per_region=cfg.tier2_per_region,
        edge_density=cfg.edge_density,
    )
    prefixes = allocate_prefixes(as_layer.ases)
    ip_links = build_ip_links(
        rng,
        as_layer,
        prefixes,
        cables,
        landing_points,
        parallel_link_prob=cfg.parallel_link_prob,
    )

    return SyntheticWorld(
        config=cfg,
        countries={c.code: c for c in COUNTRIES},
        landing_points=landing_points,
        cables=cables,
        as_layer=as_layer,
        prefixes=prefixes,
        ip_links=ip_links,
    )


_WORLD_CACHE: dict[WorldConfig, SyntheticWorld] = {}


def default_world() -> SyntheticWorld:
    """A process-wide cached world with default config.

    Examples, tests and benchmarks share this instance; building it is cheap
    but not free, and sharing guarantees cross-module consistency.
    """
    cfg = WorldConfig()
    if cfg not in _WORLD_CACHE:
        _WORLD_CACHE[cfg] = build_world(cfg)
    return _WORLD_CACHE[cfg]
