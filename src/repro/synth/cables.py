"""Submarine-cable substrate: landing points, segments, and a cable catalog.

The blueprint catalog mirrors the shape of the TeleGeography map that the
Nautilus paper consumes: every cable is a named sequence of landing points
(coastal cities), materialised into per-segment geometry with great-circle
lengths.  The catalog includes analogues of the cables named in the ArachNet
paper — SeaMeWe-5, AAE-1 and FALCON — with their real Europe–Asia corridor
shape, so the case-study queries resolve against realistic infrastructure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.synth.geography import (
    CoastalCity,
    city_by_name,
    country_by_code,
    haversine_km,
    interpolate,
)


@dataclass(frozen=True)
class LandingPoint:
    """A cable landing station: a coastal city hosting one or more cables."""

    id: str
    city: str
    country_code: str
    lat: float
    lon: float

    @property
    def coord(self) -> tuple[float, float]:
        return (self.lat, self.lon)


@dataclass(frozen=True)
class CableSegment:
    """A wet segment between two consecutive landing points of a cable."""

    cable_id: str
    index: int
    src_landing: str  # landing point id
    dst_landing: str
    length_km: float

    def sample_points(self, src: LandingPoint, dst: LandingPoint, n: int = 8) -> list[tuple[float, float]]:
        """Sample ``n`` points along the segment for geo-intersection tests."""
        if n < 2:
            raise ValueError("need at least 2 sample points")
        return [interpolate(src.coord, dst.coord, i / (n - 1)) for i in range(n)]


@dataclass
class SubmarineCable:
    """A materialised submarine cable: landing sequence plus segments."""

    id: str
    name: str
    landing_point_ids: list[str]
    segments: list[CableSegment]
    rfs_year: int
    capacity_tbps: float
    owners: tuple[str, ...] = field(default_factory=tuple)

    @property
    def length_km(self) -> float:
        return sum(s.length_km for s in self.segments)

    def country_codes(self, landing_points: dict[str, LandingPoint]) -> list[str]:
        """Ordered, de-duplicated list of countries this cable lands in."""
        seen: list[str] = []
        for lp_id in self.landing_point_ids:
            code = landing_points[lp_id].country_code
            if code not in seen:
                seen.append(code)
        return seen


@dataclass(frozen=True)
class CableBlueprint:
    """Declarative cable description: name plus ordered landing cities."""

    name: str
    cities: tuple[str, ...]
    rfs_year: int
    capacity_tbps: float
    owners: tuple[str, ...] = ()


#: The cable catalog.  City names refer to :data:`repro.synth.geography.COASTAL_CITIES`.
CABLE_BLUEPRINTS: tuple[CableBlueprint, ...] = (
    # The Europe–Asia corridor cables central to the paper's case studies.
    CableBlueprint(
        name="SeaMeWe-5",
        cities=(
            "Marseille", "Catania", "Chania", "Zafarana", "Jeddah", "Djibouti City",
            "Karachi", "Mumbai", "Matara", "Cox's Bazar", "Ngwe Saung", "Satun",
            "Melaka", "Tuas",
        ),
        rfs_year=2016,
        capacity_tbps=24.0,
        owners=("ConsortiumSMW5",),
    ),
    CableBlueprint(
        name="AAE-1",
        cities=(
            "Marseille", "Suez", "Jeddah", "Aden", "Djibouti City", "Muscat",
            "Fujairah", "Karachi", "Mumbai", "Colombo", "Songkhla", "Penang",
            "Changi", "Da Nang", "Tseung Kwan O",
        ),
        rfs_year=2017,
        capacity_tbps=40.0,
        owners=("ConsortiumAAE1",),
    ),
    CableBlueprint(
        name="FALCON",
        cities=("Suez", "Jeddah", "Aden", "Muscat", "Dubai", "Karachi", "Mumbai"),
        rfs_year=2006,
        capacity_tbps=2.6,
        owners=("GlobalCliff",),
    ),
    CableBlueprint(
        name="SeaMeWe-4",
        cities=(
            "Marseille", "Palermo", "Alexandria", "Suez", "Jeddah", "Karachi",
            "Mumbai", "Colombo", "Cox's Bazar", "Penang", "Tuas",
        ),
        rfs_year=2005,
        capacity_tbps=4.6,
        owners=("ConsortiumSMW4",),
    ),
    CableBlueprint(
        name="IMEWE",
        cities=("Catania", "Alexandria", "Suez", "Jeddah", "Karachi", "Mumbai"),
        rfs_year=2010,
        capacity_tbps=3.8,
        owners=("ConsortiumIMEWE",),
    ),
    CableBlueprint(
        name="EIG",
        cities=("Bude", "Lisbon", "Catania", "Alexandria", "Suez", "Jeddah", "Fujairah", "Mumbai"),
        rfs_year=2011,
        capacity_tbps=3.8,
        owners=("ConsortiumEIG",),
    ),
    # Intra-Asia
    CableBlueprint(
        name="APG",
        cities=("Changi", "Da Nang", "Tseung Kwan O", "Shantou", "Toucheng", "Busan", "Chikura"),
        rfs_year=2016,
        capacity_tbps=54.0,
        owners=("ConsortiumAPG",),
    ),
    CableBlueprint(
        name="SJC",
        cities=("Tuas", "Jakarta", "Batangas", "Chung Hom Kok", "Shantou", "Chikura"),
        rfs_year=2013,
        capacity_tbps=28.0,
        owners=("ConsortiumSJC",),
    ),
    CableBlueprint(
        name="ASE",
        cities=("Changi", "Penang", "Batangas", "Tseung Kwan O", "Shima"),
        rfs_year=2012,
        capacity_tbps=15.0,
        owners=("ConsortiumASE",),
    ),
    # Trans-Pacific
    CableBlueprint(
        name="PacLight",
        cities=("Chikura", "Toucheng", "Los Angeles"),
        rfs_year=2020,
        capacity_tbps=120.0,
        owners=("ContentCoA",),
    ),
    CableBlueprint(
        name="TransPac-N",
        cities=("Shima", "Busan", "Hillsboro"),
        rfs_year=2018,
        capacity_tbps=80.0,
        owners=("ContentCoB",),
    ),
    CableBlueprint(
        name="SouthernCross-X",
        cities=("Sydney", "Auckland", "Los Angeles"),
        rfs_year=2022,
        capacity_tbps=72.0,
        owners=("ConsortiumSCX",),
    ),
    # Trans-Atlantic
    CableBlueprint(
        name="Atlantica-1",
        cities=("Bude", "New York"),
        rfs_year=2015,
        capacity_tbps=60.0,
        owners=("ContentCoA",),
    ),
    CableBlueprint(
        name="Amitie-X",
        cities=("Porthcurno", "Bilbao", "Virginia Beach"),
        rfs_year=2021,
        capacity_tbps=96.0,
        owners=("ContentCoB",),
    ),
    CableBlueprint(
        name="Hibernia-N",
        cities=("Bude", "Halifax", "New York"),
        rfs_year=2014,
        capacity_tbps=30.0,
        owners=("TransitCoN",),
    ),
    # Europe–Africa and Indian Ocean
    CableBlueprint(
        name="WACS-2",
        cities=("Lisbon", "Lagos", "Mtunzini"),
        rfs_year=2012,
        capacity_tbps=14.5,
        owners=("ConsortiumWACS",),
    ),
    CableBlueprint(
        name="EASSy-2",
        cities=("Djibouti City", "Mombasa", "Mtunzini"),
        rfs_year=2010,
        capacity_tbps=10.0,
        owners=("ConsortiumEASSY",),
    ),
    CableBlueprint(
        name="SAFE-X",
        cities=("Mtunzini", "Mombasa", "Mumbai", "Penang"),
        rfs_year=2009,
        capacity_tbps=6.0,
        owners=("ConsortiumSAFE",),
    ),
    # Americas
    CableBlueprint(
        name="Monet-S",
        cities=("Fortaleza", "Santos", "Las Toninas"),
        rfs_year=2017,
        capacity_tbps=64.0,
        owners=("ConsortiumMNS",),
    ),
    CableBlueprint(
        name="AmericasCrossing",
        cities=("New York", "Cancun", "Fortaleza"),
        rfs_year=2019,
        capacity_tbps=48.0,
        owners=("TransitCoN",),
    ),
    # Australia westward
    CableBlueprint(
        name="OMR-West",
        cities=("Perth", "Jakarta", "Tuas"),
        rfs_year=2018,
        capacity_tbps=40.0,
        owners=("ConsortiumOMR",),
    ),
    # Mediterranean shorties
    CableBlueprint(
        name="MedLoop",
        cities=("Marseille", "Palermo", "Chania", "Istanbul"),
        rfs_year=2019,
        capacity_tbps=16.0,
        owners=("TransitCoM",),
    ),
    CableBlueprint(
        name="Hawk-3",
        cities=("Toulon", "Alexandria"),
        rfs_year=2013,
        capacity_tbps=12.0,
        owners=("TransitCoM",),
    ),
)


def _landing_point_id(city: CoastalCity) -> str:
    slug = city.name.lower().replace(" ", "-").replace("'", "")
    return f"lp-{city.country_code.lower()}-{slug}"


def build_landing_points() -> dict[str, LandingPoint]:
    """Materialise a landing point for every coastal city in the catalog."""
    points: dict[str, LandingPoint] = {}
    from repro.synth.geography import COASTAL_CITIES

    for city in COASTAL_CITIES:
        # Validate the country code early: a typo here would surface as a
        # confusing KeyError deep inside impact aggregation.
        country_by_code(city.country_code)
        lp = LandingPoint(
            id=_landing_point_id(city),
            city=city.name,
            country_code=city.country_code,
            lat=city.lat,
            lon=city.lon,
        )
        points[lp.id] = lp
    return points


def build_cables(landing_points: dict[str, LandingPoint]) -> dict[str, SubmarineCable]:
    """Materialise every blueprint into a cable with per-segment geometry."""
    by_city = {lp.city: lp for lp in landing_points.values()}
    cables: dict[str, SubmarineCable] = {}
    for blueprint in CABLE_BLUEPRINTS:
        cable_id = "cable-" + blueprint.name.lower().replace(" ", "-")
        lp_ids: list[str] = []
        for city_name in blueprint.cities:
            city_by_name(city_name)  # raises KeyError on catalog drift
            lp_ids.append(by_city[city_name].id)
        segments: list[CableSegment] = []
        for i in range(len(lp_ids) - 1):
            src = landing_points[lp_ids[i]]
            dst = landing_points[lp_ids[i + 1]]
            # Wet segments are longer than the great circle; 1.2 is a common
            # slack factor for route planning around bathymetry.
            length = haversine_km(src.coord, dst.coord) * 1.2
            segments.append(
                CableSegment(
                    cable_id=cable_id,
                    index=i,
                    src_landing=src.id,
                    dst_landing=dst.id,
                    length_km=length,
                )
            )
        cables[cable_id] = SubmarineCable(
            id=cable_id,
            name=blueprint.name,
            landing_point_ids=lp_ids,
            segments=segments,
            rfs_year=blueprint.rfs_year,
            capacity_tbps=blueprint.capacity_tbps,
            owners=blueprint.owners,
        )
    return cables


def cable_by_name(cables: dict[str, SubmarineCable], name: str) -> SubmarineCable:
    """Case-insensitive cable lookup by human name.

    Raises ``KeyError`` with the list of known names to make agent errors
    actionable.
    """
    wanted = name.strip().lower()
    for cable in cables.values():
        if cable.name.lower() == wanted:
            return cable
    known = sorted(c.name for c in cables.values())
    raise KeyError(f"unknown cable {name!r}; known cables: {known}")
