"""Scenario substrate: disasters and ground-truth incidents.

Scenarios are *inputs* to the measurement frameworks: a disaster event with a
geographic footprint (earthquake, hurricane) or an explicit cable cut.  The
module also builds the ground-truth latency incident used by the forensic
case study — a specific cable failure at a known time, from which the
traceroute and BGP substrates derive observable evidence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.synth.world import SyntheticWorld


class DisasterKind(str, Enum):
    EARTHQUAKE = "earthquake"
    HURRICANE = "hurricane"
    CABLE_CUT = "cable_cut"


@dataclass(frozen=True)
class DisasterEvent:
    """A disaster with either a geographic footprint or explicit cable targets.

    ``magnitude`` is Richter-like for earthquakes and Saffir-Simpson category
    for hurricanes; ``severe`` earthquakes are magnitude >= 7.0 and severe
    hurricanes category >= 4 (the thresholds the Xaminer paper uses).
    """

    id: str
    kind: DisasterKind
    name: str
    center: tuple[float, float] | None = None
    radius_km: float = 0.0
    magnitude: float = 0.0
    cable_names: tuple[str, ...] = ()
    timestamp: float = 0.0

    @property
    def is_severe(self) -> bool:
        if self.kind is DisasterKind.EARTHQUAKE:
            return self.magnitude >= 7.0
        if self.kind is DisasterKind.HURRICANE:
            return self.magnitude >= 4.0
        return True  # explicit cable cuts are always "severe"


def default_disaster_catalog() -> list[DisasterEvent]:
    """Historical-shaped catalog of earthquakes and hurricanes.

    Centers sit in real seismic zones and hurricane basins so that severe
    events intersect cable-dense corridors (Luzon Strait, Japan trench,
    Caribbean) just as the motivating incidents in the paper did.
    """
    quakes = [
        DisasterEvent(
            id="eq-taiwan-2026", kind=DisasterKind.EARTHQUAKE, name="Hengchun II",
            center=(21.9, 120.7), radius_km=450.0, magnitude=7.4, timestamp=86_400.0,
        ),
        DisasterEvent(
            id="eq-japan-2026", kind=DisasterKind.EARTHQUAKE, name="Nankai Margin",
            center=(33.2, 136.5), radius_km=500.0, magnitude=7.9, timestamp=172_800.0,
        ),
        DisasterEvent(
            id="eq-sumatra-2026", kind=DisasterKind.EARTHQUAKE, name="Mentawai Gap",
            center=(-2.8, 99.2), radius_km=550.0, magnitude=8.1, timestamp=259_200.0,
        ),
        DisasterEvent(
            id="eq-marmara-2026", kind=DisasterKind.EARTHQUAKE, name="Marmara Fault",
            center=(40.8, 28.6), radius_km=300.0, magnitude=6.4, timestamp=345_600.0,
        ),
        DisasterEvent(
            id="eq-izmit-2026", kind=DisasterKind.EARTHQUAKE, name="Izmit Repeat",
            center=(40.7, 30.0), radius_km=420.0, magnitude=7.2, timestamp=432_000.0,
        ),
    ]
    hurricanes = [
        DisasterEvent(
            id="hu-caribbean-2026", kind=DisasterKind.HURRICANE, name="Hurricane Tellus",
            center=(22.5, -80.0), radius_km=600.0, magnitude=4.0, timestamp=518_400.0,
        ),
        DisasterEvent(
            id="hu-atlantic-2026", kind=DisasterKind.HURRICANE, name="Hurricane Vortex",
            center=(35.5, -74.0), radius_km=500.0, magnitude=5.0, timestamp=604_800.0,
        ),
        DisasterEvent(
            id="hu-luzon-2026", kind=DisasterKind.HURRICANE, name="Typhoon Albatross",
            center=(17.5, 122.0), radius_km=650.0, magnitude=5.0, timestamp=691_200.0,
        ),
        DisasterEvent(
            id="hu-gulf-2026", kind=DisasterKind.HURRICANE, name="Hurricane Briar",
            center=(27.5, -90.0), radius_km=450.0, magnitude=3.0, timestamp=777_600.0,
        ),
    ]
    return quakes + hurricanes


def cable_cut_event(world: SyntheticWorld, cable_name: str, timestamp: float = 0.0) -> DisasterEvent:
    """An explicit cut of one named cable (validates the name eagerly)."""
    cable = world.cable_named(cable_name)
    return DisasterEvent(
        id=f"cut-{cable.id}",
        kind=DisasterKind.CABLE_CUT,
        name=f"{cable.name} cable cut",
        cable_names=(cable.name,),
        timestamp=timestamp,
    )


@dataclass(frozen=True)
class LatencyIncident:
    """Ground truth for the forensic case study (§4.3).

    A named cable fails at ``onset`` (seconds into the observation window).
    The traceroute substrate raises RTTs on paths that rode the cable after
    onset; the BGP substrate emits correlated withdrawals and re-announcements.
    The forensic workflow must recover ``cable_name`` from those observables.
    """

    cable_name: str
    onset: float
    window_start: float
    window_end: float
    severity: float = 1.0  # scales the latency shift

    def __post_init__(self) -> None:
        if not self.window_start <= self.onset <= self.window_end:
            raise ValueError("onset must fall inside the observation window")


SECONDS_PER_DAY = 86_400.0


def make_latency_incident(
    world: SyntheticWorld,
    cable_name: str = "SeaMeWe-5",
    days_of_history: float = 7.0,
    days_since_onset: float = 3.0,
    severity: float = 1.0,
) -> LatencyIncident:
    """Build the §4.3 scenario: anomaly started ``days_since_onset`` days ago.

    The observation window covers ``days_of_history`` days ending "now";
    the failure onsets ``days_since_onset`` days before the window end —
    matching the query "a sudden increase ... starting three days ago".
    """
    world.cable_named(cable_name)  # validate eagerly
    window_end = days_of_history * SECONDS_PER_DAY
    onset = window_end - days_since_onset * SECONDS_PER_DAY
    if onset <= 0:
        raise ValueError("history window too short for the requested onset")
    return LatencyIncident(
        cable_name=cable_name,
        onset=onset,
        window_start=0.0,
        window_end=window_end,
        severity=severity,
    )
