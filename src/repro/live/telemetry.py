"""Telemetry streams derived from the evolving world, one message per epoch.

Two producers mirror the two observables every case study leans on:

* :class:`TracerouteFeed` — continuous RTT probing over a fixed fleet of
  cross-region probe/target pairs.  Each epoch it resolves paths under the
  epoch's failed-link set, so a cable cut shows up as the familiar step in
  median RTT (or as loss where no policy path survives).
* :class:`BGPFeed` — a collector update stream: background churn every
  epoch plus a re-convergence burst on epochs where the failure set
  changed, computed as the route-table delta between the old and new world
  configurations (cuts and repairs both burst).

Producers publish to an :class:`~repro.live.bus.EventBus`; consumers (the
online detectors, or anything else) subscribe and read at their own pace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import median

from repro.bgp.collector import BGPCollectorSim, CollectorConfig, shared_collector
from repro.live.bus import EventBus
from repro.live.clock import EpochState
from repro.obs import METRICS_TOPIC  # noqa: F401 - topic namespace lives here too
from repro.traceroute.api import probe_pairs
from repro.traceroute.rtt import PathResolver
from repro.synth.world import SyntheticWorld

TRACEROUTE_TOPIC = "telemetry.traceroute"
BGP_TOPIC = "telemetry.bgp"
ALERTS_TOPIC = "alerts"


@dataclass
class TracerouteFeed:
    """Per-epoch RTT samples for a fixed probe-pair fleet."""

    world: SyntheticWorld
    bus: EventBus
    pair_count: int = 8
    samples_per_pair: int = 4

    def __post_init__(self) -> None:
        if self.samples_per_pair < 1:
            raise ValueError("samples_per_pair must be >= 1")
        self.pairs = probe_pairs(self.world, self.pair_count)
        self._resolver = PathResolver(self.world)
        self.epochs_published = 0

    @staticmethod
    def series_key(pair: dict) -> str:
        return f"{pair['src_country']}->{pair['dst_country']}"

    def measure(self, epoch: EpochState) -> list[dict]:
        """Raw per-sample rows for one epoch (``rtt_ms`` None = unreachable)."""
        rows: list[dict] = []
        span = epoch.window_end - epoch.window_start
        for pair in self.pairs:
            for i in range(self.samples_per_pair):
                ts = epoch.window_start + span * (i + 0.5) / self.samples_per_pair
                rtt, path = self._resolver.measured_rtt_ms(
                    pair["src_asn"], pair["dst_asn"], ts, epoch.failed_link_ids
                )
                rows.append({
                    "ts": ts,
                    "epoch": epoch.index,
                    "series_key": self.series_key(pair),
                    "probe_id": pair["probe_id"],
                    "src_country": pair["src_country"],
                    "dst_country": pair["dst_country"],
                    "rtt_ms": round(rtt, 3) if rtt is not None else None,
                    "hop_count": path.hop_count if path is not None else 0,
                })
        return rows

    def publish_epoch(self, epoch: EpochState) -> dict:
        """Measure one epoch, publish the message, and return it."""
        rows = self.measure(epoch)
        by_series: dict[str, list[float]] = {}
        losses: dict[str, int] = {}
        for row in rows:
            key = row["series_key"]
            if row["rtt_ms"] is None:
                losses[key] = losses.get(key, 0) + 1
            else:
                by_series.setdefault(key, []).append(row["rtt_ms"])
        message = {
            "kind": "traceroute",
            "epoch": epoch.index,
            "fingerprint": epoch.fingerprint,
            "window_end": epoch.window_end,
            "rows": rows,
            "series": {
                key: {
                    "median_rtt_ms": round(median(values), 3),
                    "sample_count": len(values),
                    "loss_count": losses.get(key, 0),
                }
                for key, values in sorted(by_series.items())
            },
            "lost_series": sorted(k for k in losses if k not in by_series),
        }
        self.bus.publish(TRACEROUTE_TOPIC, message)
        self.epochs_published += 1
        return message


@dataclass
class BGPFeed:
    """Per-epoch BGP update stream: churn plus change-driven bursts."""

    world: SyntheticWorld
    bus: EventBus
    config: CollectorConfig = field(default_factory=CollectorConfig)

    def __post_init__(self) -> None:
        # Shared per (world, config): standing forensic queries served during
        # the replay hit the same collector through fetch_updates, so the
        # feed and the serve path converge route tables once, not twice.
        self._sim = shared_collector(self.world, self.config)
        # The feed consumes route *diffs*, not full tables: a cross-epoch
        # delta stream tracks the previous epoch's failure state (pinning it
        # in the route cache) and each changed epoch advances it, yielding
        # exactly the (changed, withdrawn) rows the burst is built from.
        self._stream = self._sim.delta_stream(frozenset())
        self._previous_failed: frozenset[str] = frozenset()
        self._primed = False
        self._epoch_delta = None
        self.epochs_published = 0

    @property
    def collector(self) -> BGPCollectorSim:
        return self._sim

    @property
    def delta_stream(self):
        """The feed's cross-epoch route-delta cursor (see RouteDeltaStream)."""
        return self._stream

    def updates_for(self, epoch: EpochState) -> list:
        """The epoch's updates; advances the feed's failure-set memory."""
        updates = list(self._sim.churn_updates(epoch.window_start, epoch.window_end))
        self._epoch_delta = None
        if self._primed and epoch.failed_link_ids != self._previous_failed:
            delta = self._stream.advance(epoch.failed_link_ids)
            self._epoch_delta = delta
            updates.extend(
                self._sim.delta_updates(
                    epoch.window_start,
                    self._previous_failed,
                    epoch.failed_link_ids,
                    window_end=epoch.window_end,
                    delta=delta,
                )
            )
            updates.sort(key=lambda u: (u.ts, u.peer_asn, u.prefix, u.kind.value))
        self._previous_failed = epoch.failed_link_ids
        self._primed = True
        return updates

    def publish_epoch(self, epoch: EpochState) -> dict:
        updates = self.updates_for(epoch)
        delta = self._epoch_delta
        message = {
            "kind": "bgp",
            "epoch": epoch.index,
            "fingerprint": epoch.fingerprint,
            "window_end": epoch.window_end,
            "update_count": len(updates),
            "withdrawals": sum(1 for u in updates if u.kind.value == "W"),
            "updates": [u.to_dict() for u in updates],
            # The route-table diff this epoch rode on (None = routes
            # unchanged): what a delta-consuming subscriber pays instead of
            # a full-table comparison.
            "route_delta": (
                {
                    "changed": len(delta.changed),
                    "withdrawn": len(delta.withdrawn),
                    "bytes": delta.nbytes,
                }
                if delta is not None else None
            ),
        }
        self.bus.publish(BGP_TOPIC, message)
        self.epochs_published += 1
        return message
