"""The live replay driver: a scenario timeline run end-to-end.

Wires every live piece together — timeline, telemetry feeds, detector bank,
standing queries over a :class:`QueryBroker` — and steps the world epoch by
epoch at a configurable pace.  The run is scored against the timeline's own
ground truth (which epoch each incident fired) and reported as a
:class:`LiveReport`: epochs/sec, per-incident alert-detection latency,
standing-query cache economics, and broker/bus stats.  With a
``cache_dir``, the artifact cache is loaded before and spilled after the
replay, so a re-run serves unchanged epochs without recomputing anything.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from repro.live.bus import EventBus
from repro.live.clock import SimulationClock, TimelineEvent, WorldTimeline
from repro.live.detectors import DetectorBank
from repro.live.forensics import ForensicTrigger, TriggerPolicy
from repro.live.standing import EpochShardPool, StandingQuery, StandingQueryManager
from repro.live.telemetry import ALERTS_TOPIC, BGPFeed, TracerouteFeed
from repro.obs import (
    HEALTH_TOPIC,
    METRICS_TOPIC,
    ObsServer,
    SloEngine,
    load_slo_specs,
)
from repro.serve.broker import QueryBroker, ServeConfig
from repro.serve.cache import cache_file_path
from repro.synth.scenarios import cable_cut_event
from repro.synth.world import SyntheticWorld, default_world

#: The default standing query — the paper's §4.3 forensic question, asked
#: continuously: every epoch, "did a cable break, and which one?".
FORENSIC_STANDING_QUERY = (
    "A sudden increase in latency was observed from European probes to "
    "Asian destinations starting three days ago. Determine if a submarine "
    "cable failure caused this, and if so, identify the specific cable."
)


@dataclass
class LiveConfig:
    """Tunables for one replay."""

    epochs: int = 24
    epoch_seconds: float = 3600.0
    pace_s: float = 0.0  # real seconds per epoch; 0 = as fast as possible
    workers: int = 2
    backend: str = "thread"  # standing-query execution backend (see serve.backends)
    #: Process-backend tuning, passed through to :class:`ServeConfig`.
    affinity: bool = True
    dispatch_batch: int = 8
    cache_enabled: bool = True
    cache_dir: str | None = None
    pair_count: int = 8
    samples_per_pair: int = 4
    standing_every_n_epochs: int = 1
    #: Evolved-world shards retained by the shared epoch-shard pool before
    #: the least recently used idle one is evicted (see standing.py).
    max_epoch_shards: int = 8
    #: Close the loop: alerts spawn forensic queries (see forensics.py).
    forensics: bool = False
    #: Trace the replay (epoch ticks, alerts, cases, every served job) when
    #: the driver builds its own broker; a passed-in broker keeps whatever
    #: tracer it was constructed with.
    tracing: bool = False
    result_timeout_s: float | None = 120.0
    #: Serve ``/metrics``, ``/healthz``, ``/debug/flight`` and
    #: ``/debug/broker`` on this port for the duration of the replay
    #: (``None`` = no server; ``0`` = an ephemeral port).  Setting it also
    #: arms the SLO engine and flight recorder.
    obs_port: int | None = None
    #: Explicit :class:`~repro.obs.SloSpec` list; overrides ``slo_config``.
    slo_specs: list | None = None
    #: Path of a JSON SLO spec file (the ``--slo-config`` flag).
    slo_config: str | None = None
    #: Run the SLO engine (evaluated once per epoch) even without a server.
    health: bool = False
    #: Run the crash flight recorder even without a server; dumps land in
    #: ``flight_dir`` (defaulting to ``cache_dir``, next to the artifacts).
    flight: bool = False
    flight_dir: str | None = None
    #: Write-ahead journal directory for the replay's broker (``None`` =
    #: no journal).  A journaled replay records submissions, completions,
    #: standing registrations and forensic case transitions, so a killed
    #: replay resumes instead of recomputing (see serve/journal.py).
    journal_dir: str | None = None

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")


@dataclass
class LiveReport:
    """Everything one replay produced and what it cost."""

    epochs: int
    duration_s: float
    alerts: list[dict]
    incident_epochs: dict[str, int]
    detection: dict[str, dict]
    standing_results: list[dict]
    standing_stats: dict
    broker_stats: dict
    bus_stats: dict
    #: BGP collector route-cache economics: how much re-convergence work the
    #: incremental tables avoided across the replay (see BGPCollectorSim).
    routing_stats: dict = field(default_factory=dict)
    #: Closed-loop forensics: one record per alert-triggered case, plus the
    #: trigger plane's economics (empty when forensics is disabled).
    forensic_cases: list[dict] = field(default_factory=list)
    forensic_stats: dict = field(default_factory=dict)
    #: Final snapshot of the broker's unified metrics registry.
    metrics: dict = field(default_factory=dict)
    #: The SLO engine's final verdict (empty when the health plane was off).
    health: dict = field(default_factory=dict)
    #: Flight-recorder postmortems written during the replay.
    flight_dumps: list = field(default_factory=list)
    cache_file: str | None = None
    epoch_log: list[dict] = field(default_factory=list)

    @property
    def epochs_per_sec(self) -> float:
        return self.epochs / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def mean_detection_latency_epochs(self) -> float | None:
        latencies = [
            row["latency_epochs"]
            for row in self.detection.values()
            if row["latency_epochs"] is not None
        ]
        if not latencies:
            return None
        return sum(latencies) / len(latencies)

    @property
    def detected_incidents(self) -> int:
        return sum(
            1 for row in self.detection.values() if row["latency_epochs"] is not None
        )

    @property
    def completed_cases(self) -> int:
        return sum(1 for c in self.forensic_cases if c["state"] == "done")

    @property
    def confirmed_cases(self) -> int:
        return sum(1 for c in self.forensic_cases if c["verdict"] == "confirmed")

    def to_dict(self) -> dict:
        return {
            "epochs": self.epochs,
            "duration_s": round(self.duration_s, 4),
            "epochs_per_sec": round(self.epochs_per_sec, 2),
            "alerts": self.alerts,
            "incident_epochs": self.incident_epochs,
            "detection": self.detection,
            "mean_detection_latency_epochs": self.mean_detection_latency_epochs,
            "standing_results": self.standing_results,
            "standing_stats": self.standing_stats,
            "broker_stats": self.broker_stats,
            "bus_stats": self.bus_stats,
            "routing_stats": self.routing_stats,
            "forensic_cases": self.forensic_cases,
            "forensic_stats": self.forensic_stats,
            "metrics": self.metrics,
            "health": self.health,
            "flight_dumps": self.flight_dumps,
            "cache_file": self.cache_file,
            "epoch_log": self.epoch_log,
        }


def default_cut_epoch(total_epochs: int) -> int:
    """Where the canonical cut lands in a replay of ``total_epochs``: a third
    of the way in (capped at 8), leaving detectors a warmup baseline."""
    return min(8, max(1, total_epochs // 3))


def default_cable_cut_timeline(
    world: SyntheticWorld,
    cable_name: str | None = None,
    cut_epoch: int = 8,
    outage_epochs: int = 10,
) -> list[TimelineEvent]:
    """A canonical incident: one well-connected cable cut, later repaired.

    Defaults to the cable carrying the most IP links so the cut is loud in
    both telemetry streams.
    """
    if cable_name is None:
        cable_id = max(
            world.links_by_cable, key=lambda c: len(world.links_by_cable[c])
        )
        cable_name = world.cables[cable_id].name
    event = cable_cut_event(world, cable_name)
    return [TimelineEvent(event=event, start_epoch=cut_epoch,
                          duration_epochs=outage_epochs)]


def _score_detection(
    timeline: WorldTimeline, alerts: list[dict]
) -> dict[str, dict]:
    """Per incident: the first alert at or after its epoch, and the lag."""
    scored: dict[str, dict] = {}
    for event_id, incident_epoch in timeline.incident_epochs().items():
        candidates = [a for a in alerts if a["epoch"] >= incident_epoch]
        first = min(candidates, key=lambda a: a["epoch"]) if candidates else None
        scored[event_id] = {
            "incident_epoch": incident_epoch,
            "first_alert_epoch": first["epoch"] if first else None,
            "first_alert_kind": first["kind"] if first else None,
            "latency_epochs": (first["epoch"] - incident_epoch) if first else None,
        }
    return scored


def run_live_replay(
    world: SyntheticWorld | None = None,
    timeline_events: list[TimelineEvent] | None = None,
    config: LiveConfig | None = None,
    standing_queries: list[StandingQuery] | None = None,
    broker: QueryBroker | None = None,
    registry=None,
    trigger_policy: TriggerPolicy | None = None,
) -> LiveReport:
    """Run one scenario timeline end-to-end and score it.

    Pass an already-started ``broker`` to reuse its (warm) cache across
    replays; otherwise one is built (over ``registry``, when given) and
    shut down internally.  The default standing-query set is the
    continuous forensic question.  With ``config.forensics`` the
    closed loop is armed: a :class:`ForensicTrigger` (under
    ``trigger_policy``, defaulting to :class:`TriggerPolicy`) turns
    detector alerts into high-priority forensic queries and joins their
    verdicts into the report.
    """
    cfg = config or LiveConfig()
    world = world or default_world()
    events = (
        timeline_events
        if timeline_events is not None
        else default_cable_cut_timeline(world, cut_epoch=default_cut_epoch(cfg.epochs))
    )
    clock = SimulationClock(epoch_seconds=cfg.epoch_seconds, pace_s=cfg.pace_s)

    # Serving an obs port implies the full health plane: SLO engine +
    # flight recorder, whatever the individual flags say.
    flight_on = cfg.flight or cfg.obs_port is not None
    health_on = (cfg.health or cfg.obs_port is not None
                 or cfg.slo_specs is not None or bool(cfg.slo_config))
    owns_broker = broker is None
    if broker is None:
        broker = QueryBroker(
            world,
            registry=registry,
            config=ServeConfig(workers=cfg.workers, backend=cfg.backend,
                               affinity=cfg.affinity,
                               dispatch_batch=cfg.dispatch_batch,
                               cache_enabled=cfg.cache_enabled,
                               tracing=cfg.tracing,
                               flight=flight_on,
                               flight_dir=cfg.flight_dir or cfg.cache_dir,
                               journal_dir=cfg.journal_dir),
        ).start()
    # A passed-in broker keeps its own recorder (or none); the driver never
    # retrofits one, so reused brokers behave identically across replays.
    flight = broker.flight
    # The broker's tracer and registry are THE obs plane for the replay:
    # epoch ticks, bus accounting, alert spans and forensic cases all land
    # where the served jobs' spans already live.
    timeline = WorldTimeline(world, events, clock=clock, tracer=broker.tracer)
    cache_file = None
    if cfg.cache_dir and broker.cache is not None:
        cache_file = cache_file_path(cfg.cache_dir)
        if os.path.exists(cache_file):
            broker.cache.load(cache_file)

    bus = EventBus(metrics=broker.metrics)
    engine = None
    if health_on:
        specs = cfg.slo_specs
        if specs is None and cfg.slo_config:
            specs = load_slo_specs(cfg.slo_config)
        engine = SloEngine(broker.metrics, specs=specs, bus=bus, flight=flight)
    if flight is not None:
        # The black box rides the bus: recent alerts and health events are
        # part of any postmortem's context.
        flight.attach_bus(bus, (ALERTS_TOPIC, HEALTH_TOPIC))
    server = None
    if cfg.obs_port is not None:
        server = ObsServer(port=cfg.obs_port, registry=broker.metrics,
                           health=engine, flight=flight, broker=broker).start()
    traceroute_feed = TracerouteFeed(
        world, bus, pair_count=cfg.pair_count, samples_per_pair=cfg.samples_per_pair
    )
    bgp_feed = BGPFeed(world, bus)
    bank = DetectorBank(bus, tracer=broker.tracer, metrics=broker.metrics)
    # One shard pool shared by every plane that materializes evolved worlds,
    # so standing queries and triggered forensics reuse each other's shards
    # and their combined population stays LRU-bounded.
    pool = EpochShardPool(broker, max_epoch_shards=cfg.max_epoch_shards)
    manager = StandingQueryManager(broker, pool=pool)
    # Both planes consume route *diffs*: the feed advances the cursor, the
    # standing plane reports off the same one.  (The collector's cache and
    # repair counters reach broker.metrics through the broker's scrape-time
    # _refresh_routing collector — the feed's sim is memoized on the world.)
    manager.attach_delta_stream(bgp_feed.delta_stream)
    trigger = (
        ForensicTrigger(bus, broker, pool=pool, policy=trigger_policy,
                        timeline=timeline)
        if cfg.forensics else None
    )
    if standing_queries is None:
        standing_queries = [StandingQuery(
            name="forensic-watch",
            query=FORENSIC_STANDING_QUERY,
            every_n_epochs=cfg.standing_every_n_epochs,
        )]
    for sq in standing_queries:
        manager.register(sq)
    # A journaled replay resumed after a crash re-arms whatever standing
    # queries were live when it died (explicit registrations above win on
    # name conflicts).
    manager.restore_registrations()

    standing_results: list[dict] = []
    epoch_log: list[dict] = []
    started = time.perf_counter()
    try:
        for _ in range(cfg.epochs):
            state = timeline.step()
            traceroute_feed.publish_epoch(state)
            bgp_message = bgp_feed.publish_epoch(state)
            fresh = bank.process_pending()
            cases_opened = []
            if trigger is not None:
                # Trigger before standing queries: forensic submissions are
                # high-priority, so they claim the pool first by design.
                cases_opened = trigger.on_epoch(state)
            served = manager.on_epoch(state)
            if trigger is not None:
                trigger.collect(timeout=cfg.result_timeout_s)
            computed = manager.collect(timeout=cfg.result_timeout_s)
            standing_results.extend(r.to_dict() for r in served + computed)
            # Periodic snapshot on the metrics topic: any subscriber (a
            # dashboard, a test) sees the registry's view of this epoch.
            bus.publish(METRICS_TOPIC, {
                "epoch": state.index,
                "metrics": broker.metrics.snapshot(),
            })
            if flight is not None:
                flight.record("epoch", {
                    "epoch": state.index,
                    "fingerprint": state.fingerprint,
                    "alerts": len(fresh),
                })
                flight.poll()
            if engine is not None:
                # One evaluation per epoch; /healthz evaluates on demand
                # between epochs, so either path sees a breach within one
                # window of the inducing fault.
                engine.evaluate()
            epoch_log.append({
                "epoch": state.index,
                "fingerprint": state.fingerprint,
                "changed": state.changed,
                "failed_cables": list(state.failed_cable_ids),
                "alerts": len(fresh),
                "cases_opened": len(cases_opened),
                "standing_from_cache": sum(1 for r in served if r.from_cache),
                "standing_computed": len(computed),
                "route_delta": bgp_message["route_delta"],
            })
        duration = time.perf_counter() - started
        if cache_file is not None:
            broker.cache.spill(cache_file)
        report = LiveReport(
            epochs=cfg.epochs,
            duration_s=duration,
            alerts=[a.to_dict() for a in bank.alerts],
            incident_epochs=timeline.incident_epochs(),
            detection=_score_detection(timeline, [a.to_dict() for a in bank.alerts]),
            standing_results=standing_results,
            standing_stats=manager.stats(),
            broker_stats=broker.stats(),
            bus_stats=bus.stats(),
            routing_stats=bgp_feed.collector.cache_info(),
            forensic_cases=(
                [c.to_dict() for c in trigger.cases] if trigger else []
            ),
            forensic_stats=trigger.stats() if trigger else {},
            metrics=broker.metrics.snapshot(),
            health=engine.verdict() if engine is not None else {},
            flight_dumps=flight.dump_paths() if flight is not None else [],
            cache_file=cache_file,
            epoch_log=epoch_log,
        )
    finally:
        if server is not None:
            server.stop()
        if owns_broker:
            broker.shutdown()
    return report
