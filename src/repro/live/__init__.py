"""ArachNet Live: streaming measurement over an epoch-stepped world.

The batch layers answer questions about a frozen world; this subsystem
makes measurement *continuous*, the way cable cuts and routing cascades
actually unfold.  A :class:`WorldTimeline` evolves the synthetic world
through discrete epochs by firing and healing scenario-catalog disasters;
:mod:`telemetry <repro.live.telemetry>` derives per-epoch traceroute RTT
series and BGP update feeds and publishes them on an in-process
:class:`EventBus`; :mod:`detectors <repro.live.detectors>` consume the
streams with incremental changepoint/burst detection and emit alerts; and
:class:`StandingQueryManager` re-evaluates registered queries on epoch
boundaries through the serve broker, keyed by epoch fingerprint so
unchanged epochs are cache hits, not recomputation.  The
:func:`run_live_replay` driver runs a whole timeline end-to-end and scores
alert-detection latency against the timeline's ground truth.
"""

from repro.live.bus import EventBus, Subscription
from repro.live.clock import (
    EpochState,
    SimulationClock,
    TimelineEvent,
    WorldTimeline,
    compose_fingerprint,
    overlapping_catalog_timeline,
    timeline_from_catalog,
)
from repro.live.detectors import (
    Alert,
    BGPBurstDetector,
    DetectorBank,
    RTTChangeDetector,
)
from repro.live.forensics import (
    DEFAULT_TRIGGER_TEMPLATES,
    FORENSIC_PRIORITY,
    FORENSIC_STAGE,
    ForensicCase,
    ForensicTrigger,
    TriggerPolicy,
)
from repro.live.driver import (
    FORENSIC_STANDING_QUERY,
    LiveConfig,
    LiveReport,
    default_cable_cut_timeline,
    default_cut_epoch,
    run_live_replay,
)
from repro.live.standing import (
    STANDING_STAGE,
    EpochShardPool,
    StandingQuery,
    StandingQueryManager,
    StandingResult,
)
from repro.live.telemetry import (
    ALERTS_TOPIC,
    BGP_TOPIC,
    METRICS_TOPIC,
    TRACEROUTE_TOPIC,
    BGPFeed,
    TracerouteFeed,
)

__all__ = [
    "ALERTS_TOPIC",
    "METRICS_TOPIC",
    "Alert",
    "BGPBurstDetector",
    "BGPFeed",
    "BGP_TOPIC",
    "DEFAULT_TRIGGER_TEMPLATES",
    "DetectorBank",
    "EpochShardPool",
    "EpochState",
    "EventBus",
    "FORENSIC_PRIORITY",
    "FORENSIC_STAGE",
    "FORENSIC_STANDING_QUERY",
    "ForensicCase",
    "ForensicTrigger",
    "LiveConfig",
    "LiveReport",
    "RTTChangeDetector",
    "STANDING_STAGE",
    "SimulationClock",
    "StandingQuery",
    "StandingQueryManager",
    "StandingResult",
    "Subscription",
    "TRACEROUTE_TOPIC",
    "TimelineEvent",
    "TracerouteFeed",
    "TriggerPolicy",
    "WorldTimeline",
    "compose_fingerprint",
    "default_cable_cut_timeline",
    "default_cut_epoch",
    "overlapping_catalog_timeline",
    "run_live_replay",
    "timeline_from_catalog",
]
