"""Online detectors: incremental changepoint/anomaly detection over streams.

These are the streaming counterparts of the offline analysis the forensic
case study runs after the fact.  :class:`RTTChangeDetector` keeps one
:class:`~repro.analysis.changepoint.StreamingCUSUM` per latency series and
alarms on the epoch where the level shifts; :class:`BGPBurstDetector`
tracks the per-epoch update rate and alarms on re-convergence bursts.  A
:class:`DetectorBank` wires both to bus subscriptions and republishes every
alert on the ``alerts`` topic, so alert consumers are just more
subscribers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.changepoint import StreamingCUSUM
from repro.live.bus import EventBus, Subscription
from repro.live.telemetry import ALERTS_TOPIC, BGP_TOPIC, TRACEROUTE_TOPIC
from repro.obs import MetricsRegistry, resolve_tracer


@dataclass(frozen=True)
class Alert:
    """One detector firing: what moved, when, and by how much."""

    detector: str
    kind: str  # rtt_shift | rtt_loss | bgp_burst
    series_key: str
    epoch: int
    ts: float
    magnitude: float
    detail: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "detector": self.detector,
            "kind": self.kind,
            "series_key": self.series_key,
            "epoch": self.epoch,
            "ts": self.ts,
            "magnitude": round(self.magnitude, 4),
            "detail": dict(self.detail),
        }

    @property
    def dedup_key(self) -> tuple:
        """Identity for per-epoch dedup: the same detector re-raising the
        same (kind, series) within one epoch is one alert, not two."""
        return (self.epoch, self.detector, self.kind, self.series_key)

    @property
    def sort_key(self) -> tuple:
        """Deterministic ordering independent of subscription drain order:
        epoch first, then loudest, with lexical tiebreaks."""
        return (self.epoch, -self.magnitude, self.detector, self.kind,
                self.series_key)


class RTTChangeDetector:
    """Streaming CUSUM over each latency series' per-epoch median RTT.

    Also alarms when a series that had connectivity goes fully dark
    (``rtt_loss``) — a cut that severs every policy path never shows up as
    an RTT shift, only as loss.
    """

    name = "rtt-cusum"

    def __init__(self, warmup: int = 4, threshold: float = 4.0, drift: float = 0.5):
        self._warmup = warmup
        self._threshold = threshold
        self._drift = drift
        self._per_series: dict[str, StreamingCUSUM] = {}
        self._had_signal: set[str] = set()
        self.samples = 0

    def _detector_for(self, key: str) -> StreamingCUSUM:
        if key not in self._per_series:
            self._per_series[key] = StreamingCUSUM(
                warmup=self._warmup, threshold=self._threshold, drift=self._drift
            )
        return self._per_series[key]

    def observe(self, message: dict) -> list[Alert]:
        """Consume one traceroute epoch message; returns alerts raised."""
        alerts: list[Alert] = []
        epoch = message["epoch"]
        ts = message["window_end"]
        for key, summary in message.get("series", {}).items():
            detector = self._detector_for(key)
            baseline = detector.baseline_mean
            self.samples += 1
            if detector.update(summary["median_rtt_ms"]):
                alerts.append(Alert(
                    detector=self.name,
                    kind="rtt_shift",
                    series_key=key,
                    epoch=epoch,
                    ts=ts,
                    magnitude=summary["median_rtt_ms"] - baseline,
                    detail={
                        "median_rtt_ms": summary["median_rtt_ms"],
                        "baseline_ms": round(baseline, 3),
                    },
                ))
            self._had_signal.add(key)
        for key in message.get("lost_series", []):
            if key in self._had_signal:
                # Alarm on the transition only; re-arm once signal returns.
                self._had_signal.discard(key)
                alerts.append(Alert(
                    detector=self.name,
                    kind="rtt_loss",
                    series_key=key,
                    epoch=epoch,
                    ts=ts,
                    magnitude=1.0,
                    detail={"reason": "all samples lost"},
                ))
        return alerts


class BGPBurstDetector:
    """Alarms when an epoch's update count bursts above the churn baseline.

    The baseline is the running mean of non-burst epochs; a burst is
    ``burst_factor`` times that (with an absolute floor, so the quiet first
    epochs of a replay cannot make 3 updates look like a storm).
    """

    name = "bgp-burst"

    def __init__(self, warmup: int = 3, burst_factor: float = 4.0,
                 min_updates: int = 50):
        if warmup < 1:
            raise ValueError("warmup must be >= 1")
        self._warmup = warmup
        self._burst_factor = burst_factor
        self._min_updates = min_updates
        self._quiet_epochs = 0
        self._quiet_total = 0.0

    def observe(self, message: dict) -> list[Alert]:
        count = message["update_count"]
        epoch = message["epoch"]
        if self._quiet_epochs < self._warmup:
            self._quiet_epochs += 1
            self._quiet_total += count
            return []
        baseline = self._quiet_total / self._quiet_epochs
        threshold = max(self._min_updates, self._burst_factor * max(baseline, 1.0))
        if count >= threshold:
            return [Alert(
                detector=self.name,
                kind="bgp_burst",
                series_key=message.get("collector", "rrc-sim"),
                epoch=epoch,
                ts=message["window_end"],
                magnitude=count / max(baseline, 1.0),
                detail={
                    "update_count": count,
                    "withdrawals": message.get("withdrawals", 0),
                    "baseline": round(baseline, 2),
                },
            )]
        self._quiet_epochs += 1
        self._quiet_total += count
        return []


class DetectorBank:
    """Subscribes detectors to the bus and republishes their alerts."""

    def __init__(
        self,
        bus: EventBus,
        rtt: RTTChangeDetector | None = None,
        bgp: BGPBurstDetector | None = None,
        queue_maxlen: int = 256,
        tracer=None,
        metrics: MetricsRegistry | None = None,
    ):
        self.bus = bus
        self.rtt = rtt or RTTChangeDetector()
        self.bgp = bgp or BGPBurstDetector()
        self.tracer = resolve_tracer(tracer)
        self._metrics = metrics
        self._rtt_sub: Subscription = bus.subscribe(
            TRACEROUTE_TOPIC, name="detector-rtt", maxlen=queue_maxlen
        )
        self._bgp_sub: Subscription = bus.subscribe(
            BGP_TOPIC, name="detector-bgp", maxlen=queue_maxlen
        )
        self.alerts: list[Alert] = []
        self._seen: set[tuple] = set()
        self.duplicates_dropped = 0

    def process_pending(self) -> list[Alert]:
        """Drain both subscriptions, run the detectors, publish alerts.

        The output is *canonical*: duplicate alerts (same detector, kind,
        series and epoch) are dropped, and the batch is sorted by
        :attr:`Alert.sort_key` — so downstream consumers (forensic
        triggers, report scoring) see the same alert sequence regardless
        of which subscription happened to drain first.
        """
        raw: list[Alert] = []
        for message in self._rtt_sub.drain():
            raw.extend(self.rtt.observe(message))
        for message in self._bgp_sub.drain():
            raw.extend(self.bgp.observe(message))
        fresh: list[Alert] = []
        for alert in sorted(raw, key=lambda a: a.sort_key):
            if alert.dedup_key in self._seen:
                self.duplicates_dropped += 1
                continue
            self._seen.add(alert.dedup_key)
            fresh.append(alert)
        if fresh:
            # Dedup keys embed the epoch, so entries from well-past epochs
            # can never match again — prune them or a long-running bank
            # grows without bound.  One epoch of slack absorbs feeds whose
            # drains straddle an epoch boundary.
            newest = max(a.epoch for a in fresh)
            self._seen = {k for k in self._seen if k[0] >= newest - 1}
        for alert in fresh:
            if self._metrics is not None:
                self._metrics.counter(
                    "detector_alerts_total", {"kind": alert.kind}).inc()
            row = alert.to_dict()
            if self.tracer.enabled:
                # Each alert mints a trace of its own; the context travels
                # in the published dict so a forensic case opened for this
                # alert can parent its span tree under it.
                ctx = self.tracer.add_span(
                    "alert." + alert.kind, cat="alert", end_ts=None,
                    detector=alert.detector, series=alert.series_key,
                    epoch=alert.epoch, magnitude=alert.magnitude,
                )
                row["trace"] = ctx.to_dict()
            self.bus.publish(ALERTS_TOPIC, row)
        self.alerts.extend(fresh)
        return fresh

    def first_alert(self, kind: str | None = None) -> Alert | None:
        """The earliest alert (optionally of one kind); epoch ties break
        deterministically by magnitude then lexical identity, never by
        drain order."""
        relevant = [a for a in self.alerts if kind is None or a.kind == kind]
        return min(relevant, key=lambda a: a.sort_key, default=None)

    def first_alert_epoch(self, kind: str | None = None) -> int | None:
        first = self.first_alert(kind)
        return first.epoch if first is not None else None
