"""Epoch-stepped world evolution: the simulation clock and world timeline.

The rest of the repository treats a :class:`SyntheticWorld` as frozen; the
live subsystem makes *time* a first-class input instead.  A
:class:`WorldTimeline` steps the world through discrete epochs, firing
:class:`DisasterEvent`s from the scenario catalog at their scheduled epoch
and healing them again after their outage duration.  The world object is
never mutated — each epoch materializes as an :class:`EpochState` carrying
the set of failed IP links (cable cuts degrade the links riding the cable,
which is what makes BGP reroute and RTTs inflate downstream) plus a
deterministic fingerprint over that configuration.  Two epochs in which the
world looks identical share a fingerprint, which is exactly what lets
standing queries serve unchanged epochs from cache.
"""

from __future__ import annotations

import dataclasses
import hashlib
import time as _time
from dataclasses import dataclass

from repro.obs import resolve_tracer
from repro.synth.scenarios import DisasterEvent, default_disaster_catalog
from repro.synth.world import SyntheticWorld
from repro.xaminer.events import event_footprint
from repro.xaminer.failures import simulate_failures


def compose_fingerprint(world_fingerprint: str, failed_links) -> str:
    """Deterministic configuration fingerprint over a failed-link set.

    Shared by :class:`WorldTimeline` (full epoch configurations) and the
    forensic trigger plane (per-episode deltas), so an episode that *is*
    the whole configuration — the first disaster of a quiet timeline —
    hashes to the same fingerprint as the epoch itself and its broker
    shard is shared rather than duplicated.
    """
    material = f"{world_fingerprint}|{','.join(sorted(failed_links))}"
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]


class SimulationClock:
    """Maps epoch indexes to simulated time, optionally pacing real time.

    ``pace_s`` is the wall-clock duration of one epoch during replay;
    0 (the default) replays as fast as the hardware allows.
    """

    def __init__(self, epoch_seconds: float = 3600.0, pace_s: float = 0.0,
                 sleep=_time.sleep):
        if epoch_seconds <= 0:
            raise ValueError("epoch_seconds must be positive")
        if pace_s < 0:
            raise ValueError("pace_s must be non-negative")
        self.epoch_seconds = epoch_seconds
        self.pace_s = pace_s
        self._sleep = sleep
        self.epoch = -1  # no epoch ticked yet

    @property
    def now_ts(self) -> float:
        """Simulated time at the end of the current epoch."""
        return (self.epoch + 1) * self.epoch_seconds

    def tick(self) -> tuple[int, float, float]:
        """Advance one epoch; returns (index, window_start, window_end)."""
        if self.pace_s:
            self._sleep(self.pace_s)
        self.epoch += 1
        start = self.epoch * self.epoch_seconds
        return self.epoch, start, start + self.epoch_seconds


@dataclass(frozen=True)
class TimelineEvent:
    """One scheduled disaster: fires at ``start_epoch``, heals after
    ``duration_epochs`` (``None`` = never repaired within the replay)."""

    event: DisasterEvent
    start_epoch: int
    duration_epochs: int | None = None

    def __post_init__(self) -> None:
        if self.start_epoch < 0:
            raise ValueError("start_epoch must be >= 0")
        if self.duration_epochs is not None and self.duration_epochs < 1:
            raise ValueError("duration_epochs must be >= 1 (or None)")

    def active_at(self, epoch: int) -> bool:
        if epoch < self.start_epoch:
            return False
        if self.duration_epochs is None:
            return True
        return epoch < self.start_epoch + self.duration_epochs


@dataclass(frozen=True)
class EpochState:
    """Everything downstream consumers need to know about one epoch."""

    index: int
    window_start: float
    window_end: float
    fingerprint: str
    failed_link_ids: frozenset[str]
    failed_cable_ids: tuple[str, ...]
    active_event_ids: tuple[str, ...]
    fired_event_ids: tuple[str, ...] = ()
    healed_event_ids: tuple[str, ...] = ()
    changed: bool = False

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "window_start": self.window_start,
            "window_end": self.window_end,
            "fingerprint": self.fingerprint,
            "failed_link_ids": sorted(self.failed_link_ids),
            "failed_cable_ids": list(self.failed_cable_ids),
            "active_event_ids": list(self.active_event_ids),
            "fired_event_ids": list(self.fired_event_ids),
            "healed_event_ids": list(self.healed_event_ids),
            "changed": self.changed,
        }


class WorldTimeline:
    """Evolves a world through epochs by firing and healing timeline events.

    The per-event failure draw (which exposed cables actually break) is
    computed once, up front, through the same footprint + Bernoulli
    machinery the Monte Carlo sweeps use — so a timeline is deterministic in
    (world, events, failure_probability, seed) and replaying it yields the
    identical epoch fingerprint sequence every run.
    """

    def __init__(
        self,
        world: SyntheticWorld,
        events: list[TimelineEvent],
        clock: SimulationClock | None = None,
        failure_probability: float = 1.0,
        seed: int = 0,
        tracer=None,
    ):
        self.world = world
        self.events = sorted(events, key=lambda e: (e.start_epoch, e.event.id))
        self.clock = clock or SimulationClock()
        self.tracer = resolve_tracer(tracer)
        self._world_fp = world.fingerprint()
        self._event_links: dict[str, frozenset[str]] = {}
        self._event_cables: dict[str, tuple[str, ...]] = {}
        for item in self.events:
            footprint = event_footprint(world, item.event)
            sample = simulate_failures(
                world, footprint, failure_probability=failure_probability, seed=seed
            )
            self._event_links[item.event.id] = frozenset(sample.failed_link_ids)
            self._event_cables[item.event.id] = tuple(sample.failed_cable_ids)
        self._previous: EpochState | None = None

    # -- epoch math ---------------------------------------------------------

    def state_at(self, epoch: int, window_start: float, window_end: float) -> EpochState:
        """The world configuration during one epoch (pure, no stepping)."""
        active = [e for e in self.events if e.active_at(epoch)]
        failed_links: set[str] = set()
        failed_cables: set[str] = set()
        for item in active:
            failed_links |= self._event_links[item.event.id]
            failed_cables.update(self._event_cables[item.event.id])
        fired = tuple(e.event.id for e in self.events if e.start_epoch == epoch)
        healed = tuple(
            e.event.id
            for e in self.events
            if e.duration_epochs is not None
            and e.start_epoch + e.duration_epochs == epoch
        )
        return EpochState(
            index=epoch,
            window_start=window_start,
            window_end=window_end,
            fingerprint=self._fingerprint(failed_links),
            failed_link_ids=frozenset(failed_links),
            failed_cable_ids=tuple(sorted(failed_cables)),
            active_event_ids=tuple(e.event.id for e in active),
            fired_event_ids=fired,
            healed_event_ids=healed,
        )

    def step(self) -> EpochState:
        """Advance the clock one epoch and return the new state.

        ``changed`` flags epochs whose failed-infrastructure set differs
        from the previous epoch — the signal telemetry feeds and standing
        queries key off.
        """
        with self.tracer.span("epoch.tick", cat="live") as span:
            epoch, start, end = self.clock.tick()
            state = self.state_at(epoch, start, end)
            previous = self._previous
            changed = previous is None or previous.failed_link_ids != state.failed_link_ids
            state = dataclasses.replace(state, changed=changed)
            self._previous = state
            span.annotate(epoch=epoch, fingerprint=state.fingerprint,
                          changed=changed, fired=len(state.fired_event_ids),
                          healed=len(state.healed_event_ids))
        return state

    def run(self, epochs: int) -> list[EpochState]:
        """Step ``epochs`` times; mostly a convenience for tests."""
        return [self.step() for _ in range(epochs)]

    @property
    def previous(self) -> EpochState | None:
        return self._previous

    def incident_epochs(self) -> dict[str, int]:
        """Ground truth: event id → the epoch it fires (for scoring alerts)."""
        return {e.event.id: e.start_epoch for e in self.events}

    # -- per-event ground truth ---------------------------------------------

    def event_links(self, event_id: str) -> frozenset[str]:
        """The IP links this event's failure draw severed."""
        return self._event_links[event_id]

    def event_cables(self, event_id: str) -> tuple[str, ...]:
        """The cable ids this event's failure draw broke."""
        return self._event_cables[event_id]

    def event_fingerprint(self, event_id: str) -> str:
        """The configuration fingerprint of *this event alone* — what the
        world would look like if only this disaster were active.  Epoch
        fingerprints compose the union of active events; per-event
        fingerprints let triggered forensics key a shard (and a cache
        entry) to one incident even while others overlap it."""
        return compose_fingerprint(self._world_fp, self._event_links[event_id])

    def ground_truth(self) -> dict[str, dict]:
        """Everything a forensic verdict needs, per event: fire epoch, the
        cables the event broke, and its solo-configuration fingerprint."""
        return {
            e.event.id: {
                "epoch": e.start_epoch,
                "cables": self._event_cables[e.event.id],
                "links": self._event_links[e.event.id],
                "fingerprint": self.event_fingerprint(e.event.id),
            }
            for e in self.events
        }

    def _fingerprint(self, failed_links: set[str]) -> str:
        return compose_fingerprint(self._world_fp, failed_links)


def timeline_from_catalog(
    world: SyntheticWorld,
    epoch_seconds: float = 3600.0,
    duration_epochs: int | None = 6,
    catalog: list[DisasterEvent] | None = None,
) -> list[TimelineEvent]:
    """Schedule the scenario catalog onto an epoch grid.

    Each catalog event fires at the epoch containing its ``timestamp`` and
    heals ``duration_epochs`` later — turning the static disaster catalog
    into a replayable world history.
    """
    events = catalog if catalog is not None else default_disaster_catalog()
    return [
        TimelineEvent(
            event=event,
            start_epoch=int(event.timestamp // epoch_seconds),
            duration_epochs=duration_epochs,
        )
        for event in events
    ]


def overlapping_catalog_timeline(
    world: SyntheticWorld,
    count: int = 3,
    first_epoch: int = 4,
    stagger_epochs: int = 2,
    duration_epochs: int = 8,
    catalog: list[DisasterEvent] | None = None,
    failure_probability: float = 1.0,
    seed: int = 0,
) -> list[TimelineEvent]:
    """Schedule ``count`` concurrent catalog disasters with overlapping
    fire/heal windows.

    Events are chosen greedily from the catalog: only severe events whose
    failure draw actually breaks cables qualify, and each new pick must
    break cables *disjoint* from every earlier pick — so the composed
    epoch configurations genuinely superimpose distinct incidents and a
    triggered forensic query has something to disambiguate.  The i-th
    event fires at ``first_epoch + i * stagger_epochs``; with
    ``duration_epochs > stagger_epochs * (count - 1)`` every event is
    simultaneously active for at least one epoch.

    The failure draw here uses the same (footprint, probability, seed)
    machinery as :class:`WorldTimeline`, so what qualifies an event is
    exactly what the timeline will fire.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    if stagger_epochs < 1:
        raise ValueError(
            "stagger_epochs must be >= 1: simultaneous fires collapse two "
            "incidents into one alert episode"
        )
    if duration_epochs <= stagger_epochs * (count - 1):
        raise ValueError(
            f"duration_epochs={duration_epochs} too short: the windows of "
            f"{count} events staggered by {stagger_epochs} would never all overlap"
        )
    events = catalog if catalog is not None else default_disaster_catalog()
    chosen: list[DisasterEvent] = []
    claimed_cables: set[str] = set()
    for event in events:
        if not event.is_severe:
            continue
        footprint = event_footprint(world, event)
        sample = simulate_failures(
            world, footprint, failure_probability=failure_probability, seed=seed
        )
        cables = set(sample.failed_cable_ids)
        if not cables or cables & claimed_cables:
            continue
        chosen.append(event)
        claimed_cables |= cables
        if len(chosen) == count:
            break
    if len(chosen) < count:
        raise ValueError(
            f"catalog yields only {len(chosen)} severe cable-breaking events "
            f"with disjoint footprints; asked for {count}"
        )
    return [
        TimelineEvent(
            event=event,
            start_epoch=first_epoch + i * stagger_epochs,
            duration_epochs=duration_epochs,
        )
        for i, event in enumerate(chosen)
    ]
