"""In-process event bus with bounded per-subscriber queues.

Telemetry producers publish to named topics; each subscriber owns an
independent bounded deque, so one slow consumer can never block a producer
or another consumer — it just starts shedding its *own* oldest messages,
and the shed count is visible in :meth:`EventBus.stats`.  This is the
smallest honest model of the backpressure story a real streaming deployment
(Kafka consumer groups, NATS) has to tell.
"""

from __future__ import annotations

import itertools
import logging
import threading
from collections import deque

from repro.obs import MetricsRegistry

logger = logging.getLogger(__name__)


class Subscription:
    """One subscriber's bounded view of a topic."""

    def __init__(self, topic: str, name: str, maxlen: int,
                 metrics: MetricsRegistry | None = None):
        if maxlen < 1:
            raise ValueError("maxlen must be >= 1")
        self.topic = topic
        self.name = name
        self.maxlen = maxlen
        self._queue: deque = deque()
        self._lock = threading.Lock()
        self.received = 0
        self.dropped = 0
        self.closed = False
        self._drop_counter = (
            metrics.counter("bus_dropped_total",
                            {"topic": topic, "subscriber": name})
            if metrics is not None else None
        )
        self._warned = False

    def _offer(self, item) -> None:
        warn = False
        with self._lock:
            if self.closed:
                return
            if len(self._queue) >= self.maxlen:
                self._queue.popleft()
                self.dropped += 1
                if self._drop_counter is not None:
                    self._drop_counter.inc()
                # Warn once per subscriber: silent shedding hid real alert
                # loss; per-message logging would melt a hot topic instead.
                warn = not self._warned
                self._warned = True
            self._queue.append(item)
            self.received += 1
        if warn:
            logger.warning(
                "bus subscriber %r on topic %r is full (maxlen=%d) and began "
                "dropping oldest messages; further drops are counted, not "
                "logged", self.name, self.topic, self.maxlen,
            )

    def pop(self):
        """Oldest pending message, or ``None`` when empty."""
        with self._lock:
            return self._queue.popleft() if self._queue else None

    def drain(self) -> list:
        """All pending messages, oldest first."""
        with self._lock:
            items = list(self._queue)
            self._queue.clear()
        return items

    def __len__(self) -> int:
        with self._lock:
            return len(self._queue)

    def stats(self) -> dict:
        with self._lock:
            return {
                "topic": self.topic,
                "name": self.name,
                "pending": len(self._queue),
                "maxlen": self.maxlen,
                "received": self.received,
                "dropped": self.dropped,
                "closed": self.closed,
            }


class EventBus:
    """Topic-based fan-out to bounded subscriber queues (thread-safe)."""

    def __init__(self, metrics: MetricsRegistry | None = None):
        self._subs: dict[str, list[Subscription]] = {}
        self._lock = threading.Lock()
        self._published: dict[str, int] = {}
        self._names = itertools.count(1)
        self._metrics = metrics

    def subscribe(self, topic: str, name: str | None = None, maxlen: int = 256) -> Subscription:
        if not topic:
            raise ValueError("topic must be non-empty")
        sub = Subscription(topic, name or f"sub-{next(self._names)}", maxlen,
                           metrics=self._metrics)
        with self._lock:
            self._subs.setdefault(topic, []).append(sub)
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        with self._lock:
            subs = self._subs.get(sub.topic, [])
            if sub in subs:
                subs.remove(sub)
        sub.closed = True

    def publish(self, topic: str, item) -> int:
        """Deliver to every subscriber of ``topic``; returns delivery count."""
        with self._lock:
            subs = list(self._subs.get(topic, []))
            self._published[topic] = self._published.get(topic, 0) + 1
        if self._metrics is not None:
            self._metrics.counter("bus_published_total", {"topic": topic}).inc()
        for sub in subs:
            sub._offer(item)
        return len(subs)

    def topics(self) -> list[str]:
        with self._lock:
            return sorted(set(self._subs) | set(self._published))

    def stats(self) -> dict:
        with self._lock:
            subs = [s for group in self._subs.values() for s in group]
            published = dict(self._published)
        return {
            "published": published,
            "subscribers": [s.stats() for s in subs],
            "dropped_total": sum(s.dropped for s in subs),
        }
