"""Standing queries: continuous measurement questions over an evolving world.

A standing query is registered once and re-evaluated on epoch boundaries.
Its semantics are deliberately *configuration-bound*: the answer is a pure
function of (query text, params, the epoch's world configuration), where
the configuration is summarized by the epoch fingerprint from
:class:`~repro.live.clock.WorldTimeline`.  That purity is what makes the
economics work — the manager keys finished answers in the broker's
:class:`~repro.serve.cache.ArtifactCache` under the ``standing`` stage, so
an epoch in which the world did not change (same fingerprint) is served
from cache without touching the scheduler, and a replay of a whole timeline
against a warm (or spilled-and-reloaded) cache resubmits nothing at all.
Only epochs where the world actually changed reach the worker pool.

Deregistration cancels any still-queued tickets through
:meth:`QueryBroker.cancel` rather than letting orphaned jobs burn workers.

Epoch shards are *retained*, not hoarded: each distinct changed-world
configuration materializes one broker world shard, and a long timeline
over a rich disaster catalog would otherwise grow that population without
bound.  The :class:`EpochShardPool` keeps an LRU of at most
``max_epoch_shards`` evolved shards, evicting the least recently used idle
shard (and its backend templates/affinity bindings, via
:meth:`QueryBroker.remove_world`) when a new configuration appears; a
re-encountered fingerprint simply rebuilds.  The pool is shared
infrastructure: the standing-query manager and the forensic trigger plane
(see :mod:`repro.live.forensics`) materialize shards through the same
pool, so their combined population stays bounded and a shard whose
fingerprint both planes need is built once.
"""

from __future__ import annotations

from collections import Counter, OrderedDict
from dataclasses import dataclass
from typing import Iterable

from repro.live.clock import EpochState
from repro.serve.broker import DEFAULT_WORLD_KEY, JobState, QueryBroker
from repro.synth.scenarios import make_latency_incident

#: ArtifactCache stage name for standing-query results; its hit/miss
#: counters surface in ``broker.stats()["cache"]["per_stage"]["standing"]``.
STANDING_STAGE = "standing"


class EpochShardPool:
    """LRU retention of evolved-world broker shards, shared across planes.

    A shard materializes one failed-cable configuration: the base world
    plus one ambient :class:`LatencyIncident` per failed cable, so a
    pipeline served against it genuinely *observes* the evolved world —
    a forensic query recovers the cut cable from its telemetry signature,
    and the same query over a healed configuration finds nothing.  Keys
    are ``{base}@{fingerprint}``; an empty cable set is the base shard
    itself (never tracked, never evicted).

    Shards with pinned (in-flight) jobs are skipped during eviction;
    callers :meth:`pin` a key per outstanding submission and
    :meth:`unpin` it when the result is collected.
    """

    def __init__(self, broker: QueryBroker, max_epoch_shards: int = 8):
        if max_epoch_shards < 1:
            raise ValueError("max_epoch_shards must be >= 1")
        self.broker = broker
        self.max_epoch_shards = max_epoch_shards
        self._lru: OrderedDict[str, None] = OrderedDict()
        self._pins: Counter[str] = Counter()
        self.shards_evicted = 0

    def __len__(self) -> int:
        return len(self._lru)

    def materialize(self, base_key: str, fingerprint: str,
                    cable_ids: Iterable[str]) -> str:
        """The shard key for one configuration, building it on first sight
        (LRU-evicting an idle shard when the pool is full)."""
        cable_ids = tuple(cable_ids)
        if not cable_ids:
            return base_key  # unchanged world: the base shard already is it
        key = f"{base_key}@{fingerprint}"
        if key not in self.broker.world_keys():
            self._evict(keep=key)
            base = self.broker.shard(base_key).world
            incidents = [
                make_latency_incident(base, base.cables[cable_id].name)
                for cable_id in cable_ids
                if cable_id in base.cables
            ]
            self.broker.add_world(key, base, incidents=incidents)
        self._lru[key] = None
        self._lru.move_to_end(key)
        return key

    def pin(self, key: str) -> None:
        """Mark one in-flight job against ``key`` (no-op for base shards)."""
        if key in self._lru:
            self._pins[key] += 1

    def unpin(self, key: str) -> None:
        if self._pins.get(key):
            self._pins[key] -= 1
            if not self._pins[key]:
                del self._pins[key]

    def _evict(self, keep: str) -> None:
        """Make room for one more epoch shard, LRU-first.

        Pinned shards are skipped (removing them would fail those jobs
        mid-flight); they age out on a later pass once unpinned.
        """
        while len(self._lru) >= self.max_epoch_shards:
            victim = next(
                (k for k in self._lru if k != keep and not self._pins.get(k)),
                None,
            )
            if victim is None:
                return  # everything old is busy; retention overshoots briefly
            del self._lru[victim]
            try:
                self.broker.remove_world(victim)
            except Exception:
                # A job raced in between the pin check and removal; keep
                # the shard registered and try again on the next epoch.
                self._lru[victim] = None
                self._lru.move_to_end(victim, last=False)
                return
            self.shards_evicted += 1

    def stats(self) -> dict:
        return {
            "epoch_shards": len(self._lru),
            "max_epoch_shards": self.max_epoch_shards,
            "shards_evicted": self.shards_evicted,
            "pinned": sum(1 for c in self._pins.values() if c),
        }


@dataclass(frozen=True)
class StandingQuery:
    """One registered continuous query."""

    name: str
    query: str
    params: tuple[tuple[str, object], ...] = ()
    priority: int = 0
    world_key: str = DEFAULT_WORLD_KEY
    #: Evaluate every Nth epoch (1 = every epoch).
    every_n_epochs: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("standing query needs a name")
        if not self.query or not self.query.strip():
            raise ValueError("standing query needs a query")
        if self.every_n_epochs < 1:
            raise ValueError("every_n_epochs must be >= 1")

    def params_dict(self) -> dict:
        return dict(self.params)

    def due(self, epoch_index: int) -> bool:
        return epoch_index % self.every_n_epochs == 0


@dataclass
class StandingResult:
    """The outcome of one standing query at one epoch."""

    name: str
    epoch: int
    fingerprint: str
    from_cache: bool
    state: str
    final: dict | None = None
    error: str = ""
    ticket: str | None = None

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "epoch": self.epoch,
            "fingerprint": self.fingerprint,
            "from_cache": self.from_cache,
            "state": self.state,
            "final": self.final,
            "error": self.error,
            "ticket": self.ticket,
        }


@dataclass
class _Pending:
    sq: StandingQuery
    epoch: EpochState
    material: dict
    ticket: str
    world_key: str


class StandingQueryManager:
    """Re-evaluates registered queries on epoch boundaries via the broker."""

    def __init__(self, broker: QueryBroker, max_epoch_shards: int | None = None,
                 pool: EpochShardPool | None = None):
        self.broker = broker
        if pool is not None and max_epoch_shards is not None:
            raise ValueError(
                "pass max_epoch_shards or a shared pool, not both — a shared "
                "pool already carries its own retention bound"
            )
        #: Evolved-world shard retention, possibly shared with other planes
        #: (the forensic trigger); built here when not handed in.  Explicit
        #: None check: an empty pool is falsy (it has __len__).
        self.pool = pool if pool is not None else EpochShardPool(
            broker, 8 if max_epoch_shards is None else max_epoch_shards
        )
        self._queries: dict[str, StandingQuery] = {}
        self._pending: list[_Pending] = []
        self._delta_stream = None
        self.evaluations = 0
        self.cache_hits = 0
        self.submitted = 0
        self.cancelled = 0

    # -- route-delta consumption -------------------------------------------

    def attach_delta_stream(self, stream) -> None:
        """Ride the live plane's cross-epoch route-delta cursor.

        Standing answers are keyed by epoch fingerprint, so the manager
        never diffs route tables itself; attaching the
        :class:`~repro.bgp.collector.RouteDeltaStream` the BGP feed
        advances lets :meth:`stats` report how much routing state actually
        moved per epoch (changed rows, bytes) instead of the full-table
        sizes a naive consumer would compare.
        """
        self._delta_stream = stream

    # -- registration -------------------------------------------------------

    def _journal(self, kind: str, record: dict) -> None:
        """Mirror a registration change into the broker's WAL (when one is
        configured) so a restarted broker can list the standing queries
        that were live when it died."""
        journal = getattr(self.broker, "journal", None)
        if journal is None:
            return
        journal.append(kind, record, sync=False)

    def register(self, sq: StandingQuery) -> StandingQuery:
        if sq.name in self._queries:
            raise ValueError(f"standing query {sq.name!r} already registered")
        self._queries[sq.name] = sq
        self._journal("standing_register", {
            "name": sq.name,
            "query": sq.query,
            "params": sq.params_dict(),
            "priority": sq.priority,
            "world_key": sq.world_key,
            "every_n_epochs": sq.every_n_epochs,
        })
        return sq

    def deregister(self, name: str) -> int:
        """Remove a query; cancels its still-queued tickets.  Returns how
        many in-flight submissions were cancelled."""
        if name in self._queries:
            self._journal("standing_deregister", {"name": name})
        self._queries.pop(name, None)
        cancelled = 0
        kept: list[_Pending] = []
        for pending in self._pending:
            if pending.sq.name != name:
                kept.append(pending)
                continue
            if self.broker.cancel(pending.ticket):
                cancelled += 1
            # Running/finished tickets are left to settle; nobody collects
            # them for a deregistered query, and the broker prunes them.
            self.pool.unpin(pending.world_key)
        self._pending = kept
        self.cancelled += cancelled
        return cancelled

    def restore_registrations(self) -> list[StandingQuery]:
        """Re-register every standing query the broker's journal recorded
        as live (registered, never deregistered) before a crash.  Already-
        registered names are left alone; nothing is re-journaled — the
        registrations being restored are the journal's own.  Returns the
        queries restored."""
        journal = getattr(self.broker, "journal", None)
        if journal is None:
            return []
        restored: list[StandingQuery] = []
        for name, rec in sorted(journal.state.standing.items()):
            if name in self._queries:
                continue
            sq = StandingQuery(
                name=rec["name"],
                query=rec["query"],
                params=tuple((rec.get("params") or {}).items()),
                priority=int(rec.get("priority", 0)),
                world_key=rec.get("world_key", DEFAULT_WORLD_KEY),
                every_n_epochs=int(rec.get("every_n_epochs", 1)),
            )
            self._queries[sq.name] = sq
            restored.append(sq)
        return restored

    def names(self) -> list[str]:
        return sorted(self._queries)

    # -- epoch stepping -----------------------------------------------------

    def _material(self, sq: StandingQuery, epoch: EpochState) -> dict:
        return {
            "query": sq.query,
            "params": sq.params_dict(),
            "world_key": sq.world_key,
            "epoch_fingerprint": epoch.fingerprint,
        }

    def on_epoch(self, epoch: EpochState) -> list[StandingResult]:
        """Evaluate every due query against this epoch's configuration.

        Cache hits resolve immediately; misses are submitted to the broker
        and returned by the matching :meth:`collect` call.
        """
        cache = self.broker.cache
        served: list[StandingResult] = []
        for sq in sorted(self._queries.values(), key=lambda q: q.name):
            if not sq.due(epoch.index):
                continue
            self.evaluations += 1
            material = self._material(sq, epoch)
            if cache is not None:
                payload = cache.fetch(STANDING_STAGE, material)
                if payload is not None:
                    self.cache_hits += 1
                    served.append(StandingResult(
                        name=sq.name,
                        epoch=epoch.index,
                        fingerprint=epoch.fingerprint,
                        from_cache=True,
                        state=payload["state"],
                        final=payload.get("final"),
                    ))
                    continue
            world_key = self.pool.materialize(
                sq.world_key, epoch.fingerprint, epoch.failed_cable_ids
            )
            ticket = self.broker.submit(
                sq.query,
                params=sq.params_dict() or None,
                priority=sq.priority,
                world_key=world_key,
            )
            self.pool.pin(world_key)
            self.submitted += 1
            self._pending.append(_Pending(sq, epoch, material, ticket, world_key))
        return served

    def collect(self, timeout: float | None = None) -> list[StandingResult]:
        """Wait for every outstanding submission and cache finished answers.

        Only successful results are cached — a transient failure should be
        recomputed next epoch, not replayed from cache forever.
        """
        results: list[StandingResult] = []
        pending, self._pending = self._pending, []
        for item in pending:
            job = self.broker.wait(item.ticket, timeout)
            self.pool.unpin(item.world_key)
            final = None
            if job.state is JobState.DONE:
                outputs = job.result.execution.outputs
                final = outputs.get("final") if isinstance(outputs, dict) else None
                if self.broker.cache is not None:
                    self.broker.cache.store(
                        STANDING_STAGE,
                        item.material,
                        {"state": job.state.value, "final": final},
                    )
            results.append(StandingResult(
                name=item.sq.name,
                epoch=item.epoch.index,
                fingerprint=item.epoch.fingerprint,
                from_cache=False,
                state=job.state.value,
                final=final,
                error=job.error,
                ticket=item.ticket,
            ))
        return results

    def stats(self) -> dict:
        out = {
            "registered": len(self._queries),
            "evaluations": self.evaluations,
            "cache_hits": self.cache_hits,
            "submitted": self.submitted,
            "cancelled": self.cancelled,
            "epoch_shards": len(self.pool),
            "max_epoch_shards": self.pool.max_epoch_shards,
            "shards_evicted": self.pool.shards_evicted,
            "outstanding": len(self._pending),
            "hit_rate": self.cache_hits / self.evaluations if self.evaluations else 0.0,
        }
        if self._delta_stream is not None:
            out["route_delta"] = self._delta_stream.stats()
        return out
