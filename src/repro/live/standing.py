"""Standing queries: continuous measurement questions over an evolving world.

A standing query is registered once and re-evaluated on epoch boundaries.
Its semantics are deliberately *configuration-bound*: the answer is a pure
function of (query text, params, the epoch's world configuration), where
the configuration is summarized by the epoch fingerprint from
:class:`~repro.live.clock.WorldTimeline`.  That purity is what makes the
economics work — the manager keys finished answers in the broker's
:class:`~repro.serve.cache.ArtifactCache` under the ``standing`` stage, so
an epoch in which the world did not change (same fingerprint) is served
from cache without touching the scheduler, and a replay of a whole timeline
against a warm (or spilled-and-reloaded) cache resubmits nothing at all.
Only epochs where the world actually changed reach the worker pool.

Deregistration cancels any still-queued tickets through
:meth:`QueryBroker.cancel` rather than letting orphaned jobs burn workers.

Epoch shards are *retained*, not hoarded: each distinct changed-world
configuration materializes one broker world shard, and a long timeline
over a rich disaster catalog would otherwise grow that population without
bound.  The manager keeps an LRU of at most ``max_epoch_shards`` epoch
shards, evicting the least recently used idle shard (and its backend
templates/affinity bindings, via :meth:`QueryBroker.remove_world`) when a
new configuration appears; a re-encountered fingerprint simply rebuilds.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.live.clock import EpochState
from repro.serve.broker import DEFAULT_WORLD_KEY, JobState, QueryBroker
from repro.synth.scenarios import make_latency_incident

#: ArtifactCache stage name for standing-query results; its hit/miss
#: counters surface in ``broker.stats()["cache"]["per_stage"]["standing"]``.
STANDING_STAGE = "standing"


@dataclass(frozen=True)
class StandingQuery:
    """One registered continuous query."""

    name: str
    query: str
    params: tuple[tuple[str, object], ...] = ()
    priority: int = 0
    world_key: str = DEFAULT_WORLD_KEY
    #: Evaluate every Nth epoch (1 = every epoch).
    every_n_epochs: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("standing query needs a name")
        if not self.query or not self.query.strip():
            raise ValueError("standing query needs a query")
        if self.every_n_epochs < 1:
            raise ValueError("every_n_epochs must be >= 1")

    def params_dict(self) -> dict:
        return dict(self.params)

    def due(self, epoch_index: int) -> bool:
        return epoch_index % self.every_n_epochs == 0


@dataclass
class StandingResult:
    """The outcome of one standing query at one epoch."""

    name: str
    epoch: int
    fingerprint: str
    from_cache: bool
    state: str
    final: dict | None = None
    error: str = ""
    ticket: str | None = None

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "epoch": self.epoch,
            "fingerprint": self.fingerprint,
            "from_cache": self.from_cache,
            "state": self.state,
            "final": self.final,
            "error": self.error,
            "ticket": self.ticket,
        }


@dataclass
class _Pending:
    sq: StandingQuery
    epoch: EpochState
    material: dict
    ticket: str
    world_key: str


class StandingQueryManager:
    """Re-evaluates registered queries on epoch boundaries via the broker."""

    def __init__(self, broker: QueryBroker, max_epoch_shards: int = 8):
        if max_epoch_shards < 1:
            raise ValueError("max_epoch_shards must be >= 1")
        self.broker = broker
        self.max_epoch_shards = max_epoch_shards
        self._queries: dict[str, StandingQuery] = {}
        self._pending: list[_Pending] = []
        #: LRU of evolved-world shards this manager registered (key → None);
        #: the base shard is never tracked and never evicted.
        self._epoch_shards: OrderedDict[str, None] = OrderedDict()
        self.evaluations = 0
        self.cache_hits = 0
        self.submitted = 0
        self.cancelled = 0
        self.shards_evicted = 0

    # -- registration -------------------------------------------------------

    def register(self, sq: StandingQuery) -> StandingQuery:
        if sq.name in self._queries:
            raise ValueError(f"standing query {sq.name!r} already registered")
        self._queries[sq.name] = sq
        return sq

    def deregister(self, name: str) -> int:
        """Remove a query; cancels its still-queued tickets.  Returns how
        many in-flight submissions were cancelled."""
        self._queries.pop(name, None)
        cancelled = 0
        kept: list[_Pending] = []
        for pending in self._pending:
            if pending.sq.name != name:
                kept.append(pending)
                continue
            if self.broker.cancel(pending.ticket):
                cancelled += 1
            # Running/finished tickets are left to settle; nobody collects
            # them for a deregistered query, and the broker prunes them.
        self._pending = kept
        self.cancelled += cancelled
        return cancelled

    def names(self) -> list[str]:
        return sorted(self._queries)

    # -- epoch stepping -----------------------------------------------------

    def _material(self, sq: StandingQuery, epoch: EpochState) -> dict:
        return {
            "query": sq.query,
            "params": sq.params_dict(),
            "world_key": sq.world_key,
            "epoch_fingerprint": epoch.fingerprint,
        }

    def _epoch_shard_key(self, sq: StandingQuery, epoch: EpochState) -> str:
        """A world shard materializing this epoch's configuration.

        Built lazily per distinct fingerprint: the base world plus one
        ambient :class:`LatencyIncident` per failed cable, so the executed
        pipeline genuinely *observes* the evolved world — a forensic
        standing query recovers the cut cable from its telemetry signature,
        and the same query over a healed epoch finds nothing.  A cut/heal
        timeline only ever has a handful of distinct configurations, so the
        shard population stays small and each is reused across epochs.
        """
        if not epoch.failed_cable_ids:
            return sq.world_key  # unchanged world: the base shard already is it
        key = f"{sq.world_key}@{epoch.fingerprint}"
        if key not in self.broker.world_keys():
            self._evict_epoch_shards(keep=key)
            base = self.broker.shard(sq.world_key).world
            incidents = [
                make_latency_incident(base, base.cables[cable_id].name)
                for cable_id in epoch.failed_cable_ids
                if cable_id in base.cables
            ]
            self.broker.add_world(key, base, incidents=incidents)
        self._epoch_shards[key] = None
        self._epoch_shards.move_to_end(key)
        return key

    def _evict_epoch_shards(self, keep: str) -> None:
        """Make room for one more epoch shard, LRU-first.

        Shards with still-outstanding tickets are skipped (removing them
        would fail those jobs mid-flight); they age out on a later pass
        once collected.
        """
        busy = {p.world_key for p in self._pending}
        while len(self._epoch_shards) >= self.max_epoch_shards:
            victim = next(
                (k for k in self._epoch_shards if k != keep and k not in busy),
                None,
            )
            if victim is None:
                return  # everything old is busy; retention overshoots briefly
            del self._epoch_shards[victim]
            try:
                self.broker.remove_world(victim)
            except Exception:
                # A job raced in between the busy check and removal; keep
                # the shard registered and try again on the next epoch.
                self._epoch_shards[victim] = None
                self._epoch_shards.move_to_end(victim, last=False)
                return
            self.shards_evicted += 1

    def on_epoch(self, epoch: EpochState) -> list[StandingResult]:
        """Evaluate every due query against this epoch's configuration.

        Cache hits resolve immediately; misses are submitted to the broker
        and returned by the matching :meth:`collect` call.
        """
        cache = self.broker.cache
        served: list[StandingResult] = []
        for sq in sorted(self._queries.values(), key=lambda q: q.name):
            if not sq.due(epoch.index):
                continue
            self.evaluations += 1
            material = self._material(sq, epoch)
            if cache is not None:
                payload = cache.fetch(STANDING_STAGE, material)
                if payload is not None:
                    self.cache_hits += 1
                    served.append(StandingResult(
                        name=sq.name,
                        epoch=epoch.index,
                        fingerprint=epoch.fingerprint,
                        from_cache=True,
                        state=payload["state"],
                        final=payload.get("final"),
                    ))
                    continue
            world_key = self._epoch_shard_key(sq, epoch)
            ticket = self.broker.submit(
                sq.query,
                params=sq.params_dict() or None,
                priority=sq.priority,
                world_key=world_key,
            )
            self.submitted += 1
            self._pending.append(_Pending(sq, epoch, material, ticket, world_key))
        return served

    def collect(self, timeout: float | None = None) -> list[StandingResult]:
        """Wait for every outstanding submission and cache finished answers.

        Only successful results are cached — a transient failure should be
        recomputed next epoch, not replayed from cache forever.
        """
        results: list[StandingResult] = []
        pending, self._pending = self._pending, []
        for item in pending:
            job = self.broker.wait(item.ticket, timeout)
            final = None
            if job.state is JobState.DONE:
                outputs = job.result.execution.outputs
                final = outputs.get("final") if isinstance(outputs, dict) else None
                if self.broker.cache is not None:
                    self.broker.cache.store(
                        STANDING_STAGE,
                        item.material,
                        {"state": job.state.value, "final": final},
                    )
            results.append(StandingResult(
                name=item.sq.name,
                epoch=item.epoch.index,
                fingerprint=item.epoch.fingerprint,
                from_cache=False,
                state=job.state.value,
                final=final,
                error=job.error,
                ticket=item.ticket,
            ))
        return results

    def stats(self) -> dict:
        return {
            "registered": len(self._queries),
            "evaluations": self.evaluations,
            "cache_hits": self.cache_hits,
            "submitted": self.submitted,
            "cancelled": self.cancelled,
            "epoch_shards": len(self._epoch_shards),
            "max_epoch_shards": self.max_epoch_shards,
            "shards_evicted": self.shards_evicted,
            "outstanding": len(self._pending),
            "hit_rate": self.cache_hits / self.evaluations if self.evaluations else 0.0,
        }
