"""Alert-triggered forensics: closing the loop from detection to diagnosis.

Everywhere else in the repository the forensic question is asked *by a
person* (the CLI, a standing query registered up front).  This module makes
the live subsystem ask it itself: a :class:`ForensicTrigger` subscribes to
the ``alerts`` topic, maps each detector alert through a
:class:`TriggerPolicy` (per-kind query templates, severity thresholds,
dedup window, rate and budget limits) to a high-priority forensic query
submitted through the :class:`~repro.serve.broker.QueryBroker`, and joins
the finished answer back into a :class:`ForensicCase` record — alert →
query ticket → artifact digest → verdict against the timeline's ground
truth.

Concurrent incidents are disambiguated by *episode*: every growth of the
failed-infrastructure set opens one episode carrying the newly failed
cables and their solo-configuration fingerprint (see
:func:`~repro.live.clock.compose_fingerprint`).  Alerts case the oldest
uncased episode first; later alerts from the same incident — more series
shifting, the BGP burst trailing the RTT step — merge into the open case
instead of spawning duplicate queries.  The triggered query runs against a
broker shard materializing *that episode's* cables (through the shared
:class:`~repro.live.standing.EpochShardPool`, so the population stays
LRU-bounded and shards are reused with the standing-query plane), which is
what lets the pipeline identify the cable of one disaster while another
is still burning.

Finished verdicts are cached under the ``forensic`` stage keyed by
(query, episode fingerprint): a replay over a warm cache re-opens every
case but submits nothing, and the alert→verdict latency collapses to the
cache lookup.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.live.bus import EventBus, Subscription
from repro.live.clock import EpochState, WorldTimeline, compose_fingerprint
from repro.live.standing import EpochShardPool
from repro.live.telemetry import ALERTS_TOPIC
from repro.obs import MetricsRegistry, TraceContext, resolve_tracer
from repro.serve.broker import (
    DEFAULT_WORLD_KEY,
    JobState,
    QueryBroker,
    QueueSaturated,
)
from repro.synth.geography import COUNTRIES

#: ArtifactCache stage name for triggered-forensic verdicts; hit/miss
#: counters surface in ``broker.stats()["cache"]["per_stage"]["forensic"]``.
FORENSIC_STAGE = "forensic"

#: Priority for triggered forensic queries — far above campaign (0) and
#: standing-query traffic, so a diagnosis jumps every queue.
FORENSIC_PRIORITY = 100

#: Per-alert-kind query templates.  The phrasing matters: it must route
#: QueryMind's intent recognition to the latency-forensics workflow
#: ("increase in latency", "caused this", "identify the specific") and
#: carry the probe corridor (``{where}``) QueryMind grounds the campaign
#: against.
DEFAULT_TRIGGER_TEMPLATES: dict[str, str] = {
    "rtt_shift": (
        "A sudden increase in latency was observed from {where} on the "
        "{series} path around epoch {epoch}. Determine if a submarine "
        "cable failure caused this, and if so, identify the specific cable."
    ),
    "rtt_loss": (
        "An increase in latency followed by total loss of connectivity was "
        "observed from {where} on the {series} path around epoch {epoch}. "
        "Determine if a submarine cable failure caused this, and if so, "
        "identify the specific cable."
    ),
    "bgp_burst": (
        "A burst of BGP updates at collector {series} coincided with an "
        "increase in latency from {where} around epoch {epoch}. Determine "
        "if a submarine cable failure caused this, and if so, identify the "
        "specific cable."
    ),
}

#: Region → the phrase QueryMind's entity extraction recognizes for it.
REGION_PHRASES: dict[str, str] = {
    "europe": "European",
    "asia": "Asian",
    "middle_east": "Middle East",
    "africa": "African",
    "north_america": "North America",
    "south_america": "South America",
    "oceania": "Oceania",
}

_COUNTRY_REGION: dict[str, str] = {c.code: c.region.value for c in COUNTRIES}


def corridor_from_series(series_key: str) -> tuple[str, str] | None:
    """The (src_region, dst_region) a traceroute series key spans, when its
    ``CC->CC`` country codes are known; ``None`` for non-geographic series
    (e.g. a BGP collector name)."""
    if "->" not in series_key:
        return None
    src, _, dst = series_key.partition("->")
    src_region = _COUNTRY_REGION.get(src.strip())
    dst_region = _COUNTRY_REGION.get(dst.strip())
    if src_region is None or dst_region is None:
        return None
    return (src_region, dst_region)


def corridor_phrase(corridor: tuple[str, str]) -> str:
    """``{where}`` text for one corridor, e.g. "European probes to Asian
    destinations"."""
    src, dst = corridor
    return f"{REGION_PHRASES[src]} probes to {REGION_PHRASES[dst]} destinations"


@dataclass(frozen=True)
class TriggerPolicy:
    """How alerts become forensic queries.

    ``templates`` maps alert kinds to query templates (``{series}``,
    ``{epoch}`` and ``{where}`` are interpolated); kinds without a template
    never trigger.  ``min_magnitude`` sets per-kind severity floors below
    which alerts are suppressed.  ``dedup_window_epochs`` bounds both
    episode attribution (an episode older than the window when its first
    alert lands is stale) and merging (trailing alerts within the window
    of an open case join it).  ``max_cases_per_epoch`` rate-limits case
    opening; ``max_total_cases`` is the replay-wide budget (``None`` =
    unbounded).

    ``escalation_corridors`` is the probe-corridor playbook: the first
    query runs over the alert's own corridor (its series' country pair),
    and while the verdict stays undetermined the case re-queries over the
    next untried corridor, up to ``max_queries_per_case`` queries — the
    analyst's "widen the search" loop, made explicit and budgeted.

    ``submit_retry_limit`` / ``submit_backoff_s`` govern what happens when
    the broker's admission queue is saturated: the trigger backs off and
    resubmits up to the limit before giving the case up (counted in
    ``forensic_submit_rejected_total``) — never a silent drop.
    """

    templates: tuple[tuple[str, str], ...] = tuple(
        sorted(DEFAULT_TRIGGER_TEMPLATES.items())
    )
    dedup_window_epochs: int = 4
    min_magnitude: tuple[tuple[str, float], ...] = ()
    default_min_magnitude: float = 0.0
    max_cases_per_epoch: int = 2
    max_total_cases: int | None = None
    max_queries_per_case: int = 3
    escalation_corridors: tuple[tuple[str, str], ...] = (
        ("europe", "asia"),
        ("europe", "north_america"),
        ("asia", "middle_east"),
        ("north_america", "asia"),
    )
    priority: int = FORENSIC_PRIORITY
    submit_retry_limit: int = 4
    submit_backoff_s: float = 0.02

    def __post_init__(self) -> None:
        if self.dedup_window_epochs < 1:
            raise ValueError("dedup_window_epochs must be >= 1")
        if self.submit_retry_limit < 0:
            raise ValueError("submit_retry_limit must be >= 0")
        if self.submit_backoff_s < 0:
            raise ValueError("submit_backoff_s must be >= 0")
        if self.max_cases_per_epoch < 1:
            raise ValueError("max_cases_per_epoch must be >= 1")
        if self.max_total_cases is not None and self.max_total_cases < 0:
            raise ValueError("max_total_cases must be >= 0 (or None)")
        if self.max_queries_per_case < 1:
            raise ValueError("max_queries_per_case must be >= 1")
        if not self.templates:
            raise ValueError("a trigger policy needs at least one template")
        for corridor in self.escalation_corridors:
            src, dst = corridor
            if src not in REGION_PHRASES or dst not in REGION_PHRASES:
                raise ValueError(f"unknown region in corridor {corridor!r}")

    def template_for(self, kind: str) -> str | None:
        return dict(self.templates).get(kind)

    def threshold_for(self, kind: str) -> float:
        return dict(self.min_magnitude).get(kind, self.default_min_magnitude)

    def eligible(self, alert: dict) -> bool:
        template = self.template_for(alert["kind"])
        if template is None:
            return False
        return alert["magnitude"] >= self.threshold_for(alert["kind"])

    def query_for(self, alert: dict, corridor: tuple[str, str]) -> str:
        template = self.template_for(alert["kind"])
        if template is None:
            raise ValueError(f"no trigger template for alert kind {alert['kind']!r}")
        return template.format(
            series=alert["series_key"],
            epoch=alert["epoch"],
            where=corridor_phrase(corridor),
        )

    def corridor_plan(self, alert: dict) -> list[tuple[str, str]]:
        """The corridors one case may query, in order: the alert's own
        corridor first (when geographic), then the escalation playbook,
        deduplicated, capped at ``max_queries_per_case``."""
        plan: list[tuple[str, str]] = []
        own = corridor_from_series(alert["series_key"])
        if own is not None:
            plan.append(own)
        for corridor in self.escalation_corridors:
            if corridor not in plan:
                plan.append(corridor)
        return plan[: self.max_queries_per_case]


@dataclass
class _Episode:
    """One growth of the failed-infrastructure set: the unit of forensic
    attribution.  ``event_id`` is the timeline's ground truth when known."""

    epoch: int
    cables: tuple[str, ...]
    fingerprint: str
    event_id: str | None = None
    cased: bool = False


@dataclass
class ForensicCase:
    """The full closed loop for one incident: alert → ticket(s) → verdict."""

    case_id: str
    alert_kind: str
    series_key: str
    alert_epoch: int
    alert_magnitude: float
    episode_epoch: int
    event_id: str | None
    expected_cables: tuple[str, ...]
    fingerprint: str
    query: str
    world_key: str
    #: Untried corridors remaining from the policy's plan (consumed front-first).
    corridor_plan: list = field(default_factory=list, repr=False)
    corridors_tried: list = field(default_factory=list)
    queries_run: int = 0
    ticket: str | None = None
    from_cache: bool = False
    state: str = "pending"
    artifact_digest: str | None = None
    identified_cable: str | None = None
    verdict: str = "pending"  # confirmed | mismatch | undetermined | unscored | failed
    error: str = ""
    alerts_merged: int = 0
    #: Detection lag: epochs between the incident firing and the alert.
    alert_latency_epochs: int = 0
    #: Wall-clock seconds from the alert arriving to the verdict landing.
    verdict_latency_s: float | None = None
    #: Trace id of the case's span tree ("" when tracing was off).  When the
    #: triggering alert carried a context this is the *alert's* trace id —
    #: the case span nests under it, so one trace covers alert → verdict.
    trace_id: str = ""
    #: Flight-recorder postmortem covering this case's verdict job, when its
    #: worker crashed and a recorder was running ("" otherwise).
    flight_dump: str = ""
    opened_at: float = field(default=0.0, repr=False)
    span: object = field(default=None, repr=False, compare=False)

    def to_dict(self) -> dict:
        return {
            "case_id": self.case_id,
            "alert_kind": self.alert_kind,
            "series_key": self.series_key,
            "alert_epoch": self.alert_epoch,
            "alert_magnitude": round(self.alert_magnitude, 4),
            "episode_epoch": self.episode_epoch,
            "event_id": self.event_id,
            "expected_cables": list(self.expected_cables),
            "fingerprint": self.fingerprint,
            "query": self.query,
            "world_key": self.world_key,
            "corridors_tried": list(self.corridors_tried),
            "queries_run": self.queries_run,
            "ticket": self.ticket,
            "from_cache": self.from_cache,
            "state": self.state,
            "artifact_digest": self.artifact_digest,
            "identified_cable": self.identified_cable,
            "verdict": self.verdict,
            "error": self.error,
            "alerts_merged": self.alerts_merged,
            "alert_latency_epochs": self.alert_latency_epochs,
            "verdict_latency_s": (
                round(self.verdict_latency_s, 6)
                if self.verdict_latency_s is not None else None
            ),
            "trace_id": self.trace_id,
            "flight_dump": self.flight_dump,
        }


class ForensicTrigger:
    """Subscribes to the alerts topic and closes the loop per policy.

    Drive it like the other live planes: :meth:`on_epoch` once per epoch
    after the detectors ran (it drains the alert subscription, opens
    episodes from the epoch's failure-set delta, and turns eligible alerts
    into cases), then :meth:`collect` to join finished tickets back into
    verdicts.  Pass the replay's :class:`WorldTimeline` for per-event
    ground truth; without one, episodes fall back to raw failure-set
    deltas and verdicts score against those.
    """

    def __init__(
        self,
        bus: EventBus,
        broker: QueryBroker,
        pool: EpochShardPool | None = None,
        policy: TriggerPolicy | None = None,
        timeline: WorldTimeline | None = None,
        base_world_key: str = DEFAULT_WORLD_KEY,
        queue_maxlen: int = 1024,
        clock=time.perf_counter,
        tracer=None,
        metrics: MetricsRegistry | None = None,
    ):
        self.bus = bus
        self.broker = broker
        # Default to the broker's obs plane so case spans, job spans and
        # forensic counters land in one tracer/registry without extra wiring.
        self.tracer = resolve_tracer(
            tracer if tracer is not None else getattr(broker, "tracer", None)
        )
        self._metrics = (
            metrics if metrics is not None
            else getattr(broker, "metrics", None)
        )
        # Explicit None check: an empty pool is falsy (it has __len__).
        self.pool = pool if pool is not None else EpochShardPool(broker)
        self.policy = policy or TriggerPolicy()
        self.timeline = timeline
        self.base_world_key = base_world_key
        self._clock = clock
        self._sub: Subscription = bus.subscribe(
            ALERTS_TOPIC, name="forensic-trigger", maxlen=queue_maxlen
        )
        self._base_world_fp = broker.shard(base_world_key).world.fingerprint()
        self._episodes: list[_Episode] = []
        self._previous: EpochState | None = None
        self._open_cases: list[ForensicCase] = []  # submitted, not yet joined
        self.cases: list[ForensicCase] = []
        self._case_counter = 0
        self._counts = {
            "alerts_seen": 0,
            "alerts_merged": 0,
            "suppressed_threshold": 0,
            "suppressed_rate": 0,
            "suppressed_budget": 0,
            "unattributed": 0,
            "episodes_opened": 0,
            "cases_opened": 0,
            "cases_from_cache": 0,
            "queries_submitted": 0,
            "query_cache_hits": 0,
            "escalations": 0,
            "submit_retries": 0,
            "submit_rejected": 0,
        }

    def _journal_case(self, record: dict) -> None:
        """Append a forensic-case transition to the broker's WAL (when one
        is configured): a restarted broker lists interrupted cases in its
        recovery report instead of forgetting the incident existed."""
        journal = getattr(self.broker, "journal", None)
        if journal is None:
            return
        journal.append("case", dict(record, ts=time.time()), sync=False)

    # -- episode bookkeeping ------------------------------------------------

    def _open_episodes(self, state: EpochState) -> None:
        previous = self._previous
        prev_links = previous.failed_link_ids if previous else frozenset()
        new_links = state.failed_link_ids - prev_links
        if not new_links:
            return
        if self.timeline is not None and state.fired_event_ids:
            for event_id in state.fired_event_ids:
                cables = self.timeline.event_cables(event_id)
                if not cables:
                    continue  # a disaster that broke nothing alerts nothing
                self._episodes.append(_Episode(
                    epoch=state.index,
                    cables=tuple(sorted(cables)),
                    fingerprint=self.timeline.event_fingerprint(event_id),
                    event_id=event_id,
                ))
                self._counts["episodes_opened"] += 1
            return
        prev_cables = set(previous.failed_cable_ids) if previous else set()
        delta_cables = tuple(sorted(set(state.failed_cable_ids) - prev_cables))
        self._episodes.append(_Episode(
            epoch=state.index,
            cables=delta_cables,
            fingerprint=compose_fingerprint(self._base_world_fp, new_links),
        ))
        self._counts["episodes_opened"] += 1

    def _next_uncased_episode(self, alert_epoch: int) -> _Episode | None:
        """Oldest episode still needing a case that this alert could plausibly
        be evidence of: fired at or before the alert, within the window."""
        window = self.policy.dedup_window_epochs
        for episode in self._episodes:
            if episode.cased:
                continue
            if episode.epoch <= alert_epoch <= episode.epoch + window:
                return episode
        return None

    def _mergeable_case(self, alert_epoch: int) -> ForensicCase | None:
        """The most recent case this trailing alert folds into."""
        window = self.policy.dedup_window_epochs
        for case in reversed(self.cases):
            if 0 <= alert_epoch - case.alert_epoch <= window:
                return case
        return None

    # -- the trigger itself --------------------------------------------------

    def on_epoch(self, state: EpochState) -> list[ForensicCase]:
        """Drain alerts, open cases per policy; returns the cases opened.

        Cache hits resolve to a verdict immediately; misses are submitted
        at :attr:`TriggerPolicy.priority` and joined by :meth:`collect`.
        """
        self._open_episodes(state)
        self._previous = state
        opened: list[ForensicCase] = []
        # Geographic alerts make the best case openers — their series names
        # the corridor to probe first — so they outrank louder but
        # placeless ones (a BGP burst) within each epoch's batch.
        batch = sorted(self._sub.drain(), key=lambda a: (
            a["epoch"],
            0 if corridor_from_series(a["series_key"]) else 1,
            -a["magnitude"],
            a["kind"],
            a["series_key"],
        ))
        for alert in batch:
            self._counts["alerts_seen"] += 1
            if not self.policy.eligible(alert):
                self._counts["suppressed_threshold"] += 1
                continue
            episode = self._next_uncased_episode(alert["epoch"])
            if episode is None:
                case = self._mergeable_case(alert["epoch"])
                if case is not None:
                    case.alerts_merged += 1
                    self._counts["alerts_merged"] += 1
                else:
                    self._counts["unattributed"] += 1
                continue
            budget = self.policy.max_total_cases
            if budget is not None and self._case_counter >= budget:
                self._counts["suppressed_budget"] += 1
                continue
            if len(opened) >= self.policy.max_cases_per_epoch:
                self._counts["suppressed_rate"] += 1
                continue
            opened.append(self._open_case(alert, episode))
        return opened

    def _open_case(self, alert: dict, episode: _Episode) -> ForensicCase:
        episode.cased = True
        self._case_counter += 1
        alert_ctx = (
            TraceContext.from_dict(alert["trace"])
            if isinstance(alert.get("trace"), dict) else None
        )
        case = ForensicCase(
            case_id=f"case-{self._case_counter:03d}",
            alert_kind=alert["kind"],
            series_key=alert["series_key"],
            alert_epoch=alert["epoch"],
            alert_magnitude=alert["magnitude"],
            episode_epoch=episode.epoch,
            event_id=episode.event_id,
            expected_cables=episode.cables,
            fingerprint=episode.fingerprint,
            query="",
            world_key=self.base_world_key,
            corridor_plan=self.policy.corridor_plan(alert),
            alert_latency_epochs=alert["epoch"] - episode.epoch,
            opened_at=self._clock(),
        )
        if self.tracer.enabled:
            # Parent under the triggering alert's span when it carried one
            # (one trace then spans alert → case → verdict queries); a bare
            # alert dict starts a fresh case trace.
            case.span = self.tracer.start_span(
                "forensic.case", parent=alert_ctx, cat="forensic",
                case_id=case.case_id, alert_kind=case.alert_kind,
                series=case.series_key, episode_epoch=case.episode_epoch,
            )
            case.trace_id = case.span.context.trace_id
        self._counts["cases_opened"] += 1
        self.cases.append(case)
        self._journal_case({
            "case_id": case.case_id,
            "state": "open",
            "alert_kind": case.alert_kind,
            "series_key": case.series_key,
            "alert_epoch": case.alert_epoch,
            "episode_epoch": case.episode_epoch,
            "event_id": case.event_id,
            "expected_cables": list(case.expected_cables),
            "fingerprint": case.fingerprint,
        })
        if not self._start_attempt(case):
            self._open_cases.append(case)
        return case

    def _alert_of(self, case: ForensicCase) -> dict:
        return {
            "kind": case.alert_kind,
            "series_key": case.series_key,
            "epoch": case.alert_epoch,
            "magnitude": case.alert_magnitude,
        }

    def _material(self, case: ForensicCase) -> dict:
        return {
            "query": case.query,
            "world_key": self.base_world_key,
            "fingerprint": case.fingerprint,
        }

    def _start_attempt(self, case: ForensicCase) -> bool:
        """Begin the next corridor query from the case's plan.

        Cached outcomes resolve without touching the scheduler — including
        chains of cached "nothing on this corridor" verdicts, so a warm
        replay walks the whole escalation without one submission.  Returns
        ``True`` when the case settled synchronously; ``False`` when a
        query was submitted and :meth:`collect` must join it.
        """
        cache = self.broker.cache
        while case.corridor_plan:
            corridor = case.corridor_plan.pop(0)
            case.corridors_tried.append(f"{corridor[0]}->{corridor[1]}")
            case.queries_run += 1
            case.query = self.policy.query_for(self._alert_of(case), corridor)
            if cache is not None:
                payload = cache.fetch(FORENSIC_STAGE, self._material(case))
                if payload is not None:
                    self._counts["query_cache_hits"] += 1
                    case.state = payload["state"]
                    case.artifact_digest = payload.get("artifact_digest")
                    final = payload.get("final")
                    identified = (
                        final.get("identified_cable_id")
                        if isinstance(final, dict) else None
                    )
                    if (payload["state"] == "done" and identified is None
                            and case.corridor_plan):
                        self._counts["escalations"] += 1
                        continue  # cached "nothing here": widen the search
                    self._finish(case, final)
                    return True
            case.world_key = self.pool.materialize(
                self.base_world_key, case.fingerprint, case.expected_cables
            )
            ticket = self._submit_with_backoff(case)
            if ticket is None:
                case.state = "failed"
                case.error = "broker queue saturated"
                self._finish(case, None)
                return True
            case.ticket = ticket
            self.pool.pin(case.world_key)
            self._counts["queries_submitted"] += 1
            return False
        # Plan exhausted without a fresh submission (every corridor cached
        # and undetermined): the last cached outcome stands.
        self._finish(case, None)
        return True

    def _submit_with_backoff(self, case: ForensicCase) -> str | None:
        """Submit the case's query, absorbing a saturated admission queue
        with a bounded exponential back-off instead of a silent drop.
        Returns the ticket, or ``None`` once the retry budget is spent
        (counted in ``forensic_submit_rejected_total``)."""
        delay = self.policy.submit_backoff_s
        for attempt in range(self.policy.submit_retry_limit + 1):
            try:
                return self.broker.submit(
                    case.query, priority=self.policy.priority,
                    world_key=case.world_key, trace_parent=case.span,
                )
            except QueueSaturated:
                if attempt >= self.policy.submit_retry_limit:
                    break
                self._counts["submit_retries"] += 1
                if self._metrics is not None:
                    self._metrics.counter("forensic_submit_retries_total").inc()
                if delay > 0:
                    time.sleep(delay)
                delay = min(delay * 2, 1.0)
        self._counts["submit_rejected"] += 1
        if self._metrics is not None:
            self._metrics.counter("forensic_submit_rejected_total").inc()
        return None

    def collect(self, timeout: float | None = None) -> list[ForensicCase]:
        """Join every outstanding ticket back into its case's verdict,
        escalating (and waiting again) while corridors come back empty."""
        joined: list[ForensicCase] = []
        pending, self._open_cases = self._open_cases, []
        for case in pending:
            while True:
                job = self.broker.wait(case.ticket, timeout)
                self.pool.unpin(case.world_key)
                case.state = job.state.value
                try:
                    # A crash-retried verdict job carries its postmortem path.
                    case.flight_dump = self.broker.ledger.get(case.ticket).flight_dump
                except KeyError:
                    pass
                final = None
                if job.state is JobState.DONE:
                    outputs = job.result.execution.outputs
                    final = outputs.get("final") if isinstance(outputs, dict) else None
                    case.artifact_digest = job.result.artifact_digest()
                    if self.broker.cache is not None:
                        self.broker.cache.store(
                            FORENSIC_STAGE,
                            self._material(case),
                            {
                                "state": case.state,
                                "final": final,
                                "artifact_digest": case.artifact_digest,
                            },
                        )
                    identified = (
                        final.get("identified_cable_id")
                        if isinstance(final, dict) else None
                    )
                    if identified is None and case.corridor_plan:
                        self._counts["escalations"] += 1
                        if self._start_attempt(case):
                            break  # settled from cache mid-escalation
                        continue  # a fresh query is in flight; wait for it
                else:
                    case.error = job.error
                self._finish(case, final)
                break
            joined.append(case)
        return joined

    def _finish(self, case: ForensicCase, final: dict | None) -> None:
        case.verdict_latency_s = max(0.0, self._clock() - case.opened_at)
        if case.ticket is None:
            # Resolved without ever touching the scheduler.
            case.from_cache = True
            self._counts["cases_from_cache"] += 1
        if case.state != "done":
            case.verdict = "failed"
        else:
            identified = (
                final.get("identified_cable_id") if isinstance(final, dict)
                else None
            )
            case.identified_cable = identified
            if not case.expected_cables:
                case.verdict = "unscored"
            elif identified is None:
                case.verdict = "undetermined"
            elif identified in case.expected_cables:
                case.verdict = "confirmed"
            else:
                case.verdict = "mismatch"
        if case.span is not None:
            case.span.annotate(
                verdict=case.verdict,
                identified_cable=case.identified_cable,
                queries_run=case.queries_run,
                from_cache=case.from_cache,
            ).end()
        if self._metrics is not None:
            self._metrics.counter(
                "forensic_cases_total", {"verdict": case.verdict}).inc()
            self._metrics.histogram(
                "forensic_verdict_latency_seconds"
            ).observe(case.verdict_latency_s)
        self._journal_case({
            "case_id": case.case_id,
            "state": "closed",
            "verdict": case.verdict,
            "identified_cable": case.identified_cable,
            "artifact_digest": case.artifact_digest,
            "queries_run": case.queries_run,
            "from_cache": case.from_cache,
            "error": case.error,
        })

    # -- introspection -------------------------------------------------------

    def stats(self) -> dict:
        verdicts: dict[str, int] = {}
        for case in self.cases:
            verdicts[case.verdict] = verdicts.get(case.verdict, 0) + 1
        settled = [c for c in self.cases if c.verdict_latency_s is not None]
        alert_lags = [c.alert_latency_epochs for c in self.cases]
        return {
            **self._counts,
            "cases_total": len(self.cases),
            "cases_outstanding": len(self._open_cases),
            "verdicts": verdicts,
            "mean_queries_per_case": (
                sum(c.queries_run for c in self.cases) / len(self.cases)
                if self.cases else None
            ),
            "mean_alert_latency_epochs": (
                sum(alert_lags) / len(alert_lags) if alert_lags else None
            ),
            "mean_verdict_latency_s": (
                sum(c.verdict_latency_s for c in settled) / len(settled)
                if settled else None
            ),
            "pool": self.pool.stats(),
        }
