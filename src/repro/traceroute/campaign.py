"""Measurement campaigns: periodic traceroutes from probes to targets.

A campaign runs probes in one region against targets in another at a fixed
interval over a time window.  Active incidents gate which links exist at
each measurement's timestamp, so the produced series carries the incident's
latency signature with the correct onset.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.traceroute.probes import Probe, build_probe_fleet, probes_in_region, targets_in_region
from repro.traceroute.rtt import PathResolver
from repro.synth.geography import Region
from repro.synth.scenarios import LatencyIncident
from repro.synth.world import SyntheticWorld


@dataclass(frozen=True)
class CampaignSpec:
    """What to measure, from where, how often."""

    src_region: Region
    dst_region: Region
    window_start: float
    window_end: float
    interval_s: float = 3600.0
    probe_density: float = 1.0
    targets_per_country: int = 1

    def __post_init__(self) -> None:
        if self.window_end <= self.window_start:
            raise ValueError("window_end must be after window_start")
        if self.interval_s <= 0:
            raise ValueError("interval_s must be positive")


@dataclass(frozen=True)
class TracerouteMeasurement:
    """One traceroute result (RTT ``None`` means the target was unreachable)."""

    ts: float
    probe_id: str
    src_country: str
    src_asn: int
    dst_asn: int
    dst_country: str
    rtt_ms: float | None
    hop_count: int
    link_ids: tuple[str, ...] = field(default=())

    def to_dict(self) -> dict:
        return {
            "ts": self.ts,
            "probe_id": self.probe_id,
            "src_country": self.src_country,
            "src_asn": self.src_asn,
            "dst_asn": self.dst_asn,
            "dst_country": self.dst_country,
            "rtt_ms": round(self.rtt_ms, 3) if self.rtt_ms is not None else None,
            "hop_count": self.hop_count,
            "link_ids": list(self.link_ids),
        }


def _failed_links_at(
    world: SyntheticWorld, incidents: list[LatencyIncident], ts: float
) -> frozenset[str]:
    """Links dead at time ``ts`` given the active incidents."""
    dead: set[str] = set()
    for incident in incidents:
        if ts >= incident.onset:
            cable = world.cable_named(incident.cable_name)
            dead.update(link.id for link in world.links_on_cable(cable.id))
    return frozenset(dead)


def run_campaign_spec(
    world: SyntheticWorld,
    spec: CampaignSpec,
    incidents: list[LatencyIncident] | None = None,
    resolver: PathResolver | None = None,
) -> list[TracerouteMeasurement]:
    """Execute a campaign and return every measurement, time-ordered."""
    incidents = list(incidents or [])
    resolver = resolver or PathResolver(world)
    probes = probes_in_region(world, build_probe_fleet(world, spec.probe_density), spec.src_region)
    targets = targets_in_region(world, spec.dst_region, spec.targets_per_country)

    measurements: list[TracerouteMeasurement] = []
    ts = spec.window_start
    while ts < spec.window_end:
        failed = _failed_links_at(world, incidents, ts)
        for probe in probes:
            for dst_asn in targets:
                if dst_asn == probe.asn:
                    continue
                rtt, path = resolver.measured_rtt_ms(probe.asn, dst_asn, ts, failed)
                measurements.append(
                    TracerouteMeasurement(
                        ts=ts,
                        probe_id=probe.id,
                        src_country=probe.country_code,
                        src_asn=probe.asn,
                        dst_asn=dst_asn,
                        dst_country=world.ases[dst_asn].country_code,
                        rtt_ms=rtt,
                        hop_count=path.hop_count if path else 0,
                        link_ids=path.link_ids if path else (),
                    )
                )
        ts += spec.interval_s
    return measurements
