"""Latency anomaly detection: change points with significance testing.

CUSUM locates the onset of a level shift in a latency series; a
Mann-Whitney U test between the before/after segments supplies the
significance the paper's forensic case study insists on ("proper
significance assessment to ensure robust anomaly identification").
"""

from __future__ import annotations

from dataclasses import dataclass

from scipy import stats

from repro.traceroute.series import LatencyBin


@dataclass(frozen=True)
class LatencyAnomaly:
    """A detected level shift in one latency series."""

    series_key: str
    onset_ts: float
    baseline_ms: float
    elevated_ms: float
    increase_pct: float
    p_value: float
    significant: bool

    def to_dict(self) -> dict:
        return {
            "series_key": self.series_key,
            "onset_ts": self.onset_ts,
            "baseline_ms": round(self.baseline_ms, 3),
            "elevated_ms": round(self.elevated_ms, 3),
            "increase_pct": round(self.increase_pct, 2),
            "p_value": self.p_value,
            "significant": self.significant,
        }


def cusum_change_point(values: list[float]) -> int | None:
    """Index of the most likely level-shift point (None when too short).

    Standard offline CUSUM: the change point maximises the deviation of the
    cumulative mean-adjusted sum.
    """
    n = len(values)
    if n < 8:
        return None
    mean = sum(values) / n
    cumulative = 0.0
    best_idx = None
    best_mag = 0.0
    for i, v in enumerate(values):
        cumulative += v - mean
        if abs(cumulative) > best_mag:
            best_mag = abs(cumulative)
            best_idx = i + 1
    if best_idx is None or best_idx <= 2 or best_idx >= n - 2:
        return None
    return best_idx


def detect_series_anomalies(
    series: dict[str, list[LatencyBin]],
    min_increase_pct: float = 10.0,
    alpha: float = 0.01,
) -> list[LatencyAnomaly]:
    """Find significant latency level shifts across series.

    For each series: locate the CUSUM change point, compare before/after
    medians, and accept when the increase exceeds ``min_increase_pct`` with a
    Mann-Whitney p-value below ``alpha``.  Sorted by increase, largest first.
    """
    anomalies: list[LatencyAnomaly] = []
    for key, bins in series.items():
        usable = [(b.bin_start, b.median_rtt_ms) for b in bins if b.median_rtt_ms is not None]
        if len(usable) < 8:
            continue
        values = [v for _, v in usable]
        idx = cusum_change_point(values)
        if idx is None:
            continue
        before = values[:idx]
        after = values[idx:]
        baseline = sorted(before)[len(before) // 2]
        elevated = sorted(after)[len(after) // 2]
        if baseline <= 0:
            continue
        increase_pct = (elevated - baseline) / baseline * 100.0
        if increase_pct < min_increase_pct:
            continue
        result = stats.mannwhitneyu(after, before, alternative="greater")
        p_value = float(result.pvalue)
        anomalies.append(
            LatencyAnomaly(
                series_key=key,
                onset_ts=usable[idx][0],
                baseline_ms=baseline,
                elevated_ms=elevated,
                increase_pct=increase_pct,
                p_value=p_value,
                significant=p_value < alpha,
            )
        )
    anomalies.sort(key=lambda a: a.increase_pct, reverse=True)
    return anomalies
