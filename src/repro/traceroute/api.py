"""Registry-facing traceroute functions.

``run_campaign`` accepts region names as strings (agents speak JSON) and the
ambient ``incidents`` the measurement context injects; rows come back as
plain dicts for downstream adaptation.
"""

from __future__ import annotations

from repro.traceroute.anomaly import detect_series_anomalies
from repro.traceroute.campaign import CampaignSpec, run_campaign_spec
from repro.traceroute.probes import build_probe_fleet, probes_in_region, targets_in_region
from repro.traceroute.series import LatencyBin, latency_series_from_rows
from repro.synth.geography import Region
from repro.synth.world import SyntheticWorld


def run_campaign(
    world: SyntheticWorld,
    src_region: str,
    dst_region: str,
    window_start: float,
    window_end: float,
    interval_s: float = 3600.0,
    incidents: list | None = None,
) -> list[dict]:
    """Periodic traceroutes from one region to another, as dict rows."""
    spec = CampaignSpec(
        src_region=Region(src_region),
        dst_region=Region(dst_region),
        window_start=window_start,
        window_end=window_end,
        interval_s=interval_s,
    )
    measurements = run_campaign_spec(world, spec, incidents or [])
    return [m.to_dict() for m in measurements]


def latency_series(
    measurement_rows: list[dict],
    group_by: str = "pair",
    bin_seconds: float = 3600.0,
) -> dict[str, list[dict]]:
    """Binned latency series from measurement rows."""
    series = latency_series_from_rows(measurement_rows, group_by, bin_seconds)
    return {key: [b.to_dict() for b in bins] for key, bins in series.items()}


def detect_latency_anomalies(
    series_rows: dict[str, list[dict]],
    min_increase_pct: float = 10.0,
    alpha: float = 0.01,
) -> list[dict]:
    """Significant latency level shifts from serialised series rows."""
    series = {
        key: [
            LatencyBin(
                bin_start=row["bin_start"],
                median_rtt_ms=row["median_rtt_ms"],
                sample_count=row["sample_count"],
                loss_count=row["loss_count"],
            )
            for row in rows
        ]
        for key, rows in series_rows.items()
    }
    anomalies = detect_series_anomalies(series, min_increase_pct, alpha)
    return [a.to_dict() for a in anomalies]


def probe_pairs(world: SyntheticWorld, count: int = 8) -> list[dict]:
    """Deterministic cross-region (probe, target) pairs for continuous probing.

    Rotates through every ordered region pair that has both probes and
    targets, taking a fresh probe/target combination on each revisit, so a
    small ``count`` still spans several distinct inter-region corridors.
    Rows carry everything a measurement row needs: probe id, src/dst ASN and
    country.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    probes = build_probe_fleet(world)
    by_region = {r: probes_in_region(world, probes, r) for r in Region}
    targets = {r: targets_in_region(world, r, per_country=1) for r in Region}
    corridors = [
        (src, dst)
        for src in Region
        for dst in Region
        if src is not dst and by_region[src] and targets[dst]
    ]
    pairs: list[dict] = []
    revisit = 0
    while corridors and len(pairs) < count:
        for src, dst in corridors:
            if len(pairs) >= count:
                break
            probe = by_region[src][revisit % len(by_region[src])]
            dst_asn = targets[dst][revisit % len(targets[dst])]
            pairs.append({
                "probe_id": probe.id,
                "src_asn": probe.asn,
                "src_country": probe.country_code,
                "dst_asn": dst_asn,
                "dst_country": world.ases[dst_asn].country_code,
                "corridor": f"{src.value}->{dst.value}",
            })
        revisit += 1
    return pairs


def paths_crossing_links(measurement_rows: list[dict], link_ids: list[str]) -> list[dict]:
    """Measurements whose forwarding path crossed any of the given links.

    The forensic workflow uses this to tie anomalous (src, dst) pairs back to
    candidate physical infrastructure.
    """
    wanted = set(link_ids)
    out = []
    for row in measurement_rows:
        if wanted.intersection(row.get("link_ids", ())):
            out.append(row)
    return out
