"""Latency time series: binned aggregation of raw measurements."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LatencyBin:
    """Aggregate latency for one time bin of one series."""

    bin_start: float
    median_rtt_ms: float | None
    sample_count: int
    loss_count: int

    @property
    def loss_rate(self) -> float:
        total = self.sample_count + self.loss_count
        return self.loss_count / total if total else 0.0

    def to_dict(self) -> dict:
        return {
            "bin_start": self.bin_start,
            "median_rtt_ms": round(self.median_rtt_ms, 3) if self.median_rtt_ms is not None else None,
            "sample_count": self.sample_count,
            "loss_count": self.loss_count,
            "loss_rate": round(self.loss_rate, 4),
        }


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2 == 1:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _series_key(row: dict, group_by: str) -> str:
    if group_by == "pair":
        return f"{row['src_country']}->{row['dst_country']}"
    if group_by == "src_country":
        return str(row["src_country"])
    if group_by == "dst_country":
        return str(row["dst_country"])
    if group_by == "aggregate":
        return "all"
    raise ValueError(f"unknown group_by {group_by!r}")


def latency_series_from_rows(
    rows: list[dict],
    group_by: str = "pair",
    bin_seconds: float = 3600.0,
) -> dict[str, list[LatencyBin]]:
    """Group measurement rows into binned latency series.

    ``group_by`` is one of ``pair`` (src→dst country), ``src_country``,
    ``dst_country`` or ``aggregate``.
    """
    if bin_seconds <= 0:
        raise ValueError("bin_seconds must be positive")
    grouped: dict[str, dict[float, tuple[list[float], int]]] = {}
    for row in rows:
        key = _series_key(row, group_by)
        bin_start = (row["ts"] // bin_seconds) * bin_seconds
        values, losses = grouped.setdefault(key, {}).get(bin_start, ([], 0))
        if row["rtt_ms"] is None:
            losses += 1
        else:
            values = values + [row["rtt_ms"]]
        grouped[key][bin_start] = (values, losses)

    out: dict[str, list[LatencyBin]] = {}
    for key, bins in grouped.items():
        series = []
        for bin_start in sorted(bins):
            values, losses = bins[bin_start]
            series.append(
                LatencyBin(
                    bin_start=bin_start,
                    median_rtt_ms=_median(values) if values else None,
                    sample_count=len(values),
                    loss_count=losses,
                )
            )
        out[key] = series
    return out
