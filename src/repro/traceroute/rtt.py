"""Path resolution and the end-to-end RTT model.

The resolver walks the valley-free AS path and picks one alive IP link per
adjacency.  End-to-end RTT is the sum of per-link RTTs (propagation over the
link's physical path, as :func:`repro.nautilus.mapping.observed_link_rtt_ms`
reports it) plus per-hop processing and a last-mile constant.  When a cable
dies its links leave the pool: adjacencies with surviving parallel links
keep working, others force the AS path itself to change — either way the
geometry gets longer and the RTT steps up.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.nautilus.mapping import observed_link_rtt_ms
from repro.topology.relations import AdjacencyIndex, ASGraph
from repro.topology.routing import ValleyFreeRouter
from repro.synth.iplinks import IPLink
from repro.synth.world import SyntheticWorld

_PER_HOP_MS = 0.5
_LAST_MILE_MS = 4.0


@dataclass(frozen=True)
class ResolvedPath:
    """The concrete forwarding path between two ASes."""

    src_asn: int
    dst_asn: int
    as_path: tuple[int, ...]
    link_ids: tuple[str, ...]
    base_rtt_ms: float

    @property
    def hop_count(self) -> int:
        return len(self.as_path)


class PathResolver:
    """Resolves AS-level and link-level paths under a set of failed links."""

    def __init__(self, world: SyntheticWorld):
        self._world = world
        # Shared per world: the resolver rides the same graph (and thus the
        # same interned RoutingIndex) as the BGP collector, so routing state
        # is interned once per world, not once per subsystem.
        self._base_graph = ASGraph.shared(world)
        self._adjacency = AdjacencyIndex.shared(world)
        self._routers: dict[frozenset[str], ValleyFreeRouter] = {}
        self._path_cache: dict[tuple[int, int, frozenset[str]], ResolvedPath | None] = {}
        self._links_by_pair: dict[tuple[int, int], list[IPLink]] = {}
        for link in world.ip_links:
            self._links_by_pair.setdefault(link.as_pair, []).append(link)

    def resolve(
        self, src_asn: int, dst_asn: int, failed_link_ids: frozenset[str] = frozenset()
    ) -> ResolvedPath | None:
        """The forwarding path, or ``None`` when the destination is unreachable."""
        key = (src_asn, dst_asn, failed_link_ids)
        if key in self._path_cache:
            return self._path_cache[key]
        router = self._router_for(failed_link_ids)
        as_path = router.best_path(src_asn, dst_asn)
        resolved: ResolvedPath | None = None
        if as_path is not None:
            link_ids: list[str] = []
            rtt = _LAST_MILE_MS
            ok = True
            for a, b in zip(as_path, as_path[1:]):
                link = self._pick_link(a, b, failed_link_ids)
                if link is None:
                    ok = False
                    break
                link_ids.append(link.id)
                rtt += observed_link_rtt_ms(self._world, link) + _PER_HOP_MS
            if ok:
                resolved = ResolvedPath(
                    src_asn=src_asn,
                    dst_asn=dst_asn,
                    as_path=as_path,
                    link_ids=tuple(link_ids),
                    base_rtt_ms=rtt,
                )
        self._path_cache[key] = resolved
        return resolved

    def measured_rtt_ms(
        self,
        src_asn: int,
        dst_asn: int,
        ts: float,
        failed_link_ids: frozenset[str] = frozenset(),
    ) -> tuple[float | None, ResolvedPath | None]:
        """One measurement: base path RTT plus deterministic sampling noise."""
        path = self.resolve(src_asn, dst_asn, failed_link_ids)
        if path is None:
            return (None, None)
        digest = hashlib.sha256(f"{src_asn}-{dst_asn}-{ts}".encode()).digest()
        noise = (int.from_bytes(digest[:8], "big") / 2**64 - 0.5) * 0.06
        return (path.base_rtt_ms * (1.0 + noise), path)

    # -- internals -----------------------------------------------------------

    def _router_for(self, failed_link_ids: frozenset[str]) -> ValleyFreeRouter:
        if failed_link_ids not in self._routers:
            # dead_pairs flows into the router directly (adjacency rows are
            # filtered at the index level) — no per-failure-set graph copy.
            dead = self._adjacency.dead_pairs(failed_link_ids)
            self._routers[failed_link_ids] = ValleyFreeRouter(
                self._base_graph, dead_pairs=dead or None
            )
        return self._routers[failed_link_ids]

    def _pick_link(
        self, asn_a: int, asn_b: int, failed_link_ids: frozenset[str]
    ) -> IPLink | None:
        pair = (min(asn_a, asn_b), max(asn_a, asn_b))
        alive = [
            link
            for link in self._links_by_pair.get(pair, [])
            if link.id not in failed_link_ids
        ]
        if not alive:
            return None
        return min(alive, key=lambda l: l.id)
