"""Probe fleet generation: Atlas-shaped vantage points in edge networks."""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.synth.ases import ASType
from repro.synth.geography import Region
from repro.synth.world import SyntheticWorld

_PROBE_SEED = 23


@dataclass(frozen=True)
class Probe:
    """One measurement vantage point."""

    id: str
    country_code: str
    asn: int
    lat: float
    lon: float

    @property
    def coord(self) -> tuple[float, float]:
        return (self.lat, self.lon)


def build_probe_fleet(world: SyntheticWorld, density: float = 1.0) -> list[Probe]:
    """Deterministic probe fleet, roughly ``weight * density`` per country.

    Probes attach to access or content ASes (never pure transit), mirroring
    where Atlas probes actually sit.
    """
    rng = random.Random(_PROBE_SEED)
    probes: list[Probe] = []
    for country in sorted(world.countries.values(), key=lambda c: c.code):
        hosts = [
            a
            for a in world.ases_in_country(country.code)
            if a.as_type in (ASType.ACCESS, ASType.CONTENT, ASType.ENTERPRISE)
        ]
        if not hosts:
            hosts = world.ases_in_country(country.code)
        if not hosts:
            continue
        count = max(1, round(country.weight * density))
        for i in range(count):
            host = hosts[i % len(hosts)]
            probes.append(
                Probe(
                    id=f"probe-{country.code.lower()}-{i}",
                    country_code=country.code,
                    asn=host.asn,
                    lat=country.lat + rng.uniform(-1.5, 1.5),
                    lon=country.lon + rng.uniform(-1.5, 1.5),
                )
            )
    return probes


def probes_in_region(world: SyntheticWorld, probes: list[Probe], region: Region) -> list[Probe]:
    """Probes homed in a continental region."""
    return [p for p in probes if world.country(p.country_code).region == region]


def targets_in_region(world: SyntheticWorld, region: Region, per_country: int = 2) -> list[int]:
    """Measurement target ASNs in a region (content networks preferred)."""
    targets: list[int] = []
    for country in sorted(world.countries.values(), key=lambda c: c.code):
        if country.region != region:
            continue
        candidates = sorted(
            world.ases_in_country(country.code),
            key=lambda a: (a.as_type is not ASType.CONTENT, a.asn),
        )
        targets.extend(a.asn for a in candidates[:per_country])
    return targets
