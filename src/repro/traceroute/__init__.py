"""Traceroute substrate: probe fleet, RTT model, campaigns, anomalies.

Replaces RIPE Atlas.  Probes live in edge networks; a measurement resolves
the policy-compliant IP path to its target and accumulates per-link RTTs
derived from physical path lengths.  Active incidents (cable failures)
remove links from the path pool, forcing reroutes whose longer geometry is
what raises end-to-end latency — the observable the forensic case study
starts from.
"""

from repro.traceroute.probes import Probe, build_probe_fleet
from repro.traceroute.rtt import PathResolver
from repro.traceroute.campaign import CampaignSpec, TracerouteMeasurement, run_campaign_spec
from repro.traceroute.series import LatencyBin, latency_series_from_rows
from repro.traceroute.anomaly import LatencyAnomaly, detect_series_anomalies
from repro.traceroute.api import (
    detect_latency_anomalies,
    latency_series,
    run_campaign,
)

__all__ = [
    "Probe",
    "build_probe_fleet",
    "PathResolver",
    "CampaignSpec",
    "TracerouteMeasurement",
    "run_campaign_spec",
    "LatencyBin",
    "latency_series_from_rows",
    "LatencyAnomaly",
    "detect_series_anomalies",
    "detect_latency_anomalies",
    "latency_series",
    "run_campaign",
]
