"""The worker pool: N threads draining the scheduler.

The threads are *claimers*, not necessarily where pipelines run: each one
pops a job and hands it to the broker's :class:`ExecutionBackend` — the
thread backend runs it in place (ideal when hosted-LLM round-trip latency
dominates; threads overlap the waits and artifacts stay in shared memory),
while the process backend blocks the thread on an out-of-process worker so
CPU-bound generated code escapes the GIL.  Shutdown is graceful: in-flight
jobs always run to completion, and ``drain=True`` additionally finishes
everything already queued.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable

from repro.obs import MetricsRegistry
from repro.serve.scheduler import PriorityScheduler

#: ``handler(item, worker_name)`` — must not raise; job-level errors are the
#: handler's to record.
JobHandler = Callable[[Any, str], None]

#: ``batch_handler(items, worker_name)`` — same contract over a claimed batch.
BatchHandler = Callable[[list, str], None]

_POLL_INTERVAL_S = 0.05


class WorkerPool:
    """A ``ThreadPoolExecutor``-backed pool of scheduler consumers.

    With ``claim_batch > 1`` and a ``batch_handler``, a claimer that pops a
    job opportunistically drains up to ``claim_batch - 1`` more without
    blocking and hands the whole batch over in one call — the process
    backend fans a batch across every worker process at once, so one
    claiming thread can keep the entire pool busy and same-worker jobs
    coalesce into single IPC messages.
    """

    def __init__(
        self,
        scheduler: PriorityScheduler,
        handler: JobHandler,
        num_workers: int = 4,
        name: str = "arachnet-serve",
        batch_handler: BatchHandler | None = None,
        claim_batch: int = 1,
        metrics: MetricsRegistry | None = None,
        heartbeat: Callable[[str], None] | None = None,
    ):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if claim_batch < 1:
            raise ValueError("claim_batch must be >= 1")
        metrics = metrics if metrics is not None else MetricsRegistry()
        self._claimed_counter = metrics.counter("workerpool_claimed_total")
        self._batch_counter = metrics.counter("workerpool_claim_batches_total")
        self._scheduler = scheduler
        self._handler = handler
        self._batch_handler = batch_handler
        #: ``heartbeat(worker_name)`` fires each claimer-loop iteration —
        #: the flight recorder's liveness signal for broker-side claimers.
        self._heartbeat = heartbeat
        self.claim_batch = claim_batch
        self.num_workers = num_workers
        self._name = name
        self._stop = threading.Event()
        self._drain = False
        self._executor: ThreadPoolExecutor | None = None
        self._futures = []
        self._active = 0
        self._active_lock = threading.Lock()

    def start(self) -> "WorkerPool":
        if self._executor is not None:
            raise RuntimeError("worker pool already started")
        self._executor = ThreadPoolExecutor(
            max_workers=self.num_workers, thread_name_prefix=self._name
        )
        self._futures = [
            self._executor.submit(self._run_loop, f"{self._name}-{i}")
            for i in range(self.num_workers)
        ]
        return self

    @property
    def started(self) -> bool:
        return self._executor is not None

    @property
    def active_jobs(self) -> int:
        with self._active_lock:
            return self._active

    def join(self) -> None:
        """Block until every worker thread has exited (call after shutdown)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)

    def shutdown(self, wait: bool = True, drain: bool = True) -> None:
        """Stop the pool.

        ``drain=True`` (the default) lets workers finish every queued job
        first; ``drain=False`` abandons the queue after in-flight jobs
        complete.  Safe to call more than once.
        """
        self._drain = drain
        self._stop.set()
        self._scheduler.close()
        if self._executor is not None:
            self._executor.shutdown(wait=wait)

    def _should_exit(self) -> bool:
        if not self._stop.is_set():
            return False
        return not (self._drain and len(self._scheduler) > 0)

    def _run_loop(self, worker_name: str) -> None:
        while True:
            if self._heartbeat is not None:
                self._heartbeat(worker_name)
            if self._stop.is_set() and not self._drain:
                return  # abandon whatever is still queued
            item = self._scheduler.pop(timeout=_POLL_INTERVAL_S)
            if item is None:
                if self._should_exit() or self._scheduler.closed:
                    return
                continue
            items = [item]
            if self._batch_handler is not None and self.claim_batch > 1:
                items.extend(self._scheduler.pop_batch(self.claim_batch - 1))
            self._claimed_counter.inc(len(items))
            self._batch_counter.inc()
            with self._active_lock:
                self._active += len(items)
            try:
                if self._batch_handler is not None:
                    self._batch_handler(items, worker_name)
                else:
                    self._handler(item, worker_name)
            finally:
                with self._active_lock:
                    self._active -= len(items)
