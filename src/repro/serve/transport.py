"""Zero-copy artifact transport between worker processes and the broker.

A finished :class:`~repro.core.artifacts.PipelineResult` can be far larger
than an OS pipe buffer, and ``multiprocessing`` queues move it as an
in-band pickle: chunked pipe writes, reader wakeups and a full copy on
each side.  This module moves large payloads out of band instead:

* the producer pickles with **protocol 5**, capturing any
  :class:`pickle.PickleBuffer` blocks (bytes/bytearray-backed artifact
  data) separately from the object graph;
* when the total size crosses ``shm_min_bytes`` the body and buffers are
  written once into a :class:`multiprocessing.shared_memory.SharedMemory`
  segment and only the segment *name* travels through the queue;
* the consumer maps the segment and unpickles straight out of the mapping
  (``pickle.loads`` over memoryviews — the out-of-band buffers are never
  re-copied through a pipe), then closes and unlinks it.

Ownership is a strict hand-off: the producer unregisters the segment from
its own resource tracker (it will never unlink it), so exactly one side —
the consumer, or :func:`release` during shutdown drains — is responsible
for the unlink.  Tests assert ``/dev/shm`` holds no ``an-*`` segments
after a campaign and after backend shutdown.
"""

from __future__ import annotations

import itertools
import os
import pickle

try:  # pragma: no cover - absent only on exotic builds
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover
    shared_memory = None

#: Prefix for every segment this module creates; tests glob /dev/shm for it.
SEGMENT_PREFIX = "an"

#: Below this many bytes the pickle travels in-band through the queue —
#: a pipe write is cheaper than a segment create/map/unlink round trip.
DEFAULT_SHM_MIN_BYTES = 64 * 1024

_SEQ = itertools.count(1)


def shm_available() -> bool:
    return shared_memory is not None


def _unregister_from_tracker(shm) -> None:
    """The producer never unlinks; stop its resource tracker from warning
    about (or worse, reaping) a segment the consumer still owns."""
    try:  # pragma: no cover - tracker internals vary across minor versions
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


def encode(obj, shm_min_bytes: int = DEFAULT_SHM_MIN_BYTES) -> tuple:
    """Pickle ``obj`` (protocol 5, out-of-band buffers) into a queue-safe
    message: ``("inline", body, buffers)`` or ``("shm", name, body_len,
    buffer_lens)``.  ``shm_min_bytes <= 0`` forces the shared-memory path
    for every payload (used by lifecycle tests)."""
    raw_buffers: list[pickle.PickleBuffer] = []
    body = pickle.dumps(obj, protocol=5, buffer_callback=raw_buffers.append)
    buffers = []
    for buf in raw_buffers:
        try:
            buffers.append(buf.raw())
        except BufferError:  # non-contiguous: fall back to a flat copy
            buffers.append(memoryview(bytes(buf)))
    total = len(body) + sum(len(b) * b.itemsize for b in buffers)
    if shared_memory is None or (shm_min_bytes > 0 and total < shm_min_bytes):
        return ("inline", body, [bytes(b) for b in buffers])
    segment = shared_memory.SharedMemory(
        create=True, size=max(total, 1), name=f"{SEGMENT_PREFIX}-{os.getpid()}-{next(_SEQ)}"
    )
    offset = 0
    view = segment.buf
    view[offset:offset + len(body)] = body
    offset += len(body)
    buffer_lens = []
    for buf in buffers:
        flat = buf.cast("B") if buf.format != "B" else buf
        n = len(flat)
        view[offset:offset + n] = flat
        offset += n
        buffer_lens.append(n)
    del view
    name = segment.name
    _unregister_from_tracker(segment)
    segment.close()
    return ("shm", name, len(body), buffer_lens)


def decode(message: tuple):
    """Rebuild the object from :func:`encode`'s message; shared-memory
    segments are unlinked here — decoding consumes the payload."""
    kind = message[0]
    if kind == "inline":
        _, body, buffers = message
        return pickle.loads(body, buffers=buffers)
    if kind != "shm":
        raise ValueError(f"unknown transport message kind {kind!r}")
    _, name, body_len, buffer_lens = message
    segment = shared_memory.SharedMemory(name=name)
    try:
        view = segment.buf
        offset = body_len
        buffers = []
        for n in buffer_lens:
            buffers.append(view[offset:offset + n])
            offset += n
        obj = pickle.loads(view[:body_len], buffers=buffers)
        # Plain-python artifacts copy out of the buffers during loads;
        # drop every exported view before closing or mmap raises BufferError.
        del buffers, view
        return obj
    finally:
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already reaped
            pass


def release(message: tuple) -> None:
    """Unlink a still-undecoded message's segment (shutdown drains)."""
    if message and message[0] == "shm" and shared_memory is not None:
        try:
            segment = shared_memory.SharedMemory(name=message[1])
        except FileNotFoundError:
            return
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover
            pass
