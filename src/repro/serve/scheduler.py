"""Priority + FIFO scheduling with per-world sharding.

The scheduler orders submitted jobs by ``(priority desc, arrival order)``
— a batch campaign can be drowned out by an interactive researcher asking
one urgent question, but within a priority band service stays first-come
first-served.

Sharding: every job belongs to a *world shard*.  A shard owns one
:class:`~repro.core.catalog.MeasurementContext` and the :class:`ArachNet`
system assembled over it, so all queries against the same
``SyntheticWorld`` share grounding context, registry and LLM backend —
the expensive objects are built once per world, never per query.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from dataclasses import dataclass
from typing import Any

from repro.core.pipeline import ArachNet
from repro.core.registry import Registry, default_registry
from repro.obs import MetricsRegistry
from repro.synth.world import SyntheticWorld


@dataclass
class WorldShard:
    """One measurement world and the serving system assembled over it.

    Carries no lock of its own: the shared ``ArachNet`` serializes registry
    evolution internally, and every other shard member is immutable or
    thread-safe.
    """

    key: str
    system: ArachNet

    @property
    def world(self) -> SyntheticWorld:
        return self.system.context.world

    @classmethod
    def build(
        cls,
        key: str,
        world: SyntheticWorld,
        incidents: list | None = None,
        registry: Registry | None = None,
        llm=None,
        cache=None,
        curate: bool = False,
    ) -> "WorldShard":
        """Assemble a shard; the registry is cloned so curator evolution in
        one shard never rewrites another shard's capability surface."""
        kwargs: dict = {"curate": curate, "cache": cache}
        if llm is not None:
            kwargs["llm"] = llm
        system = ArachNet.for_world(
            world,
            registry=(registry if registry is not None else default_registry()).clone(),
            incidents=incidents,
            **kwargs,
        )
        return cls(key=key, system=system)


class SchedulerClosed(RuntimeError):
    """Raised when pushing to a scheduler that has been closed."""


class SchedulerSaturated(RuntimeError):
    """Raised when pushing to a scheduler already at ``max_depth``."""


class PriorityScheduler:
    """Thread-safe priority queue with FIFO order inside each band.

    ``max_depth`` bounds admission: a push against a full queue raises
    :class:`SchedulerSaturated` instead of growing without limit, so
    producers that can defer (forensic triggers, standing queries) get an
    explicit backpressure signal rather than silently drowning the band.
    """

    def __init__(self, metrics: MetricsRegistry | None = None,
                 max_depth: int | None = None):
        if max_depth is not None and max_depth < 1:
            raise ValueError("max_depth must be >= 1 (or None for unbounded)")
        self.max_depth = max_depth
        self._heap: list[tuple[int, int, str, float, Any]] = []
        self._seq = itertools.count()
        self._cond = threading.Condition()
        self._closed = False
        self._pushed = 0
        self._rejected = 0
        self._popped = 0
        self._per_shard: dict[str, int] = {}
        self._pushed_by_priority: dict[int, int] = {}
        self._queued_by_priority: dict[int, int] = {}
        #: Pops that serviced a band while lower-priority work was queued —
        #: how often the priority path actually jumped a queue.
        self._preemptions = 0
        self._metrics = metrics if metrics is not None else MetricsRegistry()
        self._depth_gauge = self._metrics.gauge("scheduler_queue_depth")
        self._pushed_counter = self._metrics.counter("scheduler_pushed_total")
        # Per-band wait histograms are created lazily on first pop of a band.
        self._wait_hist: dict[int, Any] = {}

    @property
    def metrics(self) -> MetricsRegistry:
        return self._metrics

    def push(self, item: Any, priority: int = 0, shard: str = "default") -> None:
        with self._cond:
            if self._closed:
                raise SchedulerClosed("scheduler is closed to new work")
            if self.max_depth is not None and len(self._heap) >= self.max_depth:
                self._rejected += 1
                raise SchedulerSaturated(
                    f"scheduler queue is at max depth {self.max_depth}"
                )
            heapq.heappush(
                self._heap,
                (-priority, next(self._seq), shard, time.time(), item),
            )
            self._pushed += 1
            self._per_shard[shard] = self._per_shard.get(shard, 0) + 1
            self._pushed_by_priority[priority] = (
                self._pushed_by_priority.get(priority, 0) + 1
            )
            self._queued_by_priority[priority] = (
                self._queued_by_priority.get(priority, 0) + 1
            )
            self._depth_gauge.set(len(self._heap))
            self._cond.notify()
        self._pushed_counter.inc()

    def _account_pop(self, neg_priority: int, shard: str, enqueued: float) -> None:
        self._popped += 1
        self._per_shard[shard] -= 1
        priority = -neg_priority
        self._queued_by_priority[priority] -= 1
        if any(count and band < priority
               for band, count in self._queued_by_priority.items()):
            self._preemptions += 1
        self._depth_gauge.set(len(self._heap))
        hist = self._wait_hist.get(priority)
        if hist is None:
            hist = self._metrics.histogram(
                "scheduler_queue_wait_seconds", {"band": str(priority)}
            )
            self._wait_hist[priority] = hist
        hist.observe(max(0.0, time.time() - enqueued))

    def pop(self, timeout: float | None = None) -> Any | None:
        """Next job by priority then arrival; ``None`` on timeout or when the
        scheduler is closed and drained."""
        with self._cond:
            while not self._heap:
                if self._closed:
                    return None
                if not self._cond.wait(timeout):
                    return None
            neg_priority, _, shard, enqueued, item = heapq.heappop(self._heap)
            self._account_pop(neg_priority, shard, enqueued)
            return item

    def pop_batch(self, limit: int) -> list[Any]:
        """Up to ``limit`` more jobs without blocking, in priority order.

        Claimers use this after a successful :meth:`pop` to coalesce queued
        work into one batched backend dispatch; an empty queue returns an
        empty list immediately.
        """
        items: list[Any] = []
        with self._cond:
            while self._heap and len(items) < limit:
                neg_priority, _, shard, enqueued, item = heapq.heappop(self._heap)
                self._account_pop(neg_priority, shard, enqueued)
                items.append(item)
        return items

    def close(self) -> None:
        """Refuse new work and wake every blocked consumer."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def __len__(self) -> int:
        with self._cond:
            return len(self._heap)

    def stats(self) -> dict:
        with self._cond:
            return {
                "queued": len(self._heap),
                "pushed": self._pushed,
                "popped": self._popped,
                "rejected": self._rejected,
                "max_depth": self.max_depth,
                "closed": self._closed,
                "per_shard_queued": {
                    k: v for k, v in sorted(self._per_shard.items()) if v
                },
                "pushed_by_priority": dict(sorted(self._pushed_by_priority.items())),
                "queued_by_priority": {
                    k: v for k, v in sorted(self._queued_by_priority.items()) if v
                },
                "preemptions": self._preemptions,
            }
