"""Crash recovery: turn a replayed journal into a live broker again.

On broker start with a journal directory, :func:`recover` reduces the
surviving checkpoint + segment tail (torn tails already truncated by
:mod:`repro.serve.journal`) into a :class:`RecoveryReport`, and the broker
uses it to

* reconstruct provenance ledger rows for every journaled completion, so
  ``ledger.summary()`` spans the crash;
* seed its dedup index: resubmitting a journaled-complete job (same
  idempotency key — the affinity blake2b key over world fingerprint,
  query and params) joins the journaled artifact digest byte-identically
  instead of re-running the pipeline, which is what makes a resumed
  campaign exactly-once at the campaign level;
* requeue the journaled submissions that never completed (the crashed
  run's scheduler queue);
* re-arm the dead-letter quarantine and surface still-open forensic
  cases and standing-query registrations to the live plane.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.serve.journal import JournalState, WriteAheadJournal
from repro.serve.provenance import ProvenanceLedger


class ReplayedExecution:
    """The ``execution`` facet of a journal-replayed result."""

    __slots__ = ("succeeded", "outputs", "error")

    def __init__(self, succeeded: bool, outputs: dict, error: str):
        self.succeeded = succeeded
        self.outputs = outputs
        self.error = error


class ReplayedResult:
    """A completed job rematerialized from its journal record.

    Quacks like :class:`~repro.core.artifacts.PipelineResult` where the
    serve plane looks — ``execution.succeeded``, ``execution.outputs``
    (the final ranking travels in the completion record), and
    ``artifact_digest()`` returning the digest journaled at completion
    time — so campaign aggregation and digest-equality checks cannot tell
    a resumed job from a fresh one.
    """

    replayed = True

    def __init__(self, completion: dict):
        self.completion = dict(completion)
        self.query = completion.get("query", "")
        self._digest = completion.get("digest", "")
        final = completion.get("final")
        succeeded = completion.get("status") == "done"
        self.execution = ReplayedExecution(
            succeeded=succeeded,
            outputs={"final": final} if final is not None else {},
            error=completion.get("error", ""),
        )
        self.stage_trace: list = []

    def artifact_digest(self) -> str:
        return self._digest

    def to_dict(self) -> dict:
        return {
            "query": self.query,
            "replayed": True,
            "artifact_digest": self._digest,
            "status": self.completion.get("status"),
            "final": self.completion.get("final"),
        }


@dataclass
class RecoveryReport:
    """Everything a restarted broker learned from its journal."""

    directory: str
    replayed_records: int = 0
    truncated_bytes: int = 0
    segments: int = 0
    checkpoint: str = ""
    completions: int = 0
    #: Journaled submissions with no completion, in original ticket order —
    #: the crashed run's outstanding queue.
    pending: list[dict] = field(default_factory=list)
    deadletter: int = 0
    standing: list[dict] = field(default_factory=list)
    open_cases: list[dict] = field(default_factory=list)
    max_ticket: int = 0
    ledger_restored: int = 0
    #: Filled by the broker once it requeues the pending submissions.
    resubmitted: int = 0

    def to_dict(self) -> dict:
        return {
            "directory": self.directory,
            "replayed_records": self.replayed_records,
            "truncated_bytes": self.truncated_bytes,
            "segments": self.segments,
            "checkpoint": self.checkpoint,
            "completions": self.completions,
            "pending": len(self.pending),
            "deadletter": self.deadletter,
            "standing": [dict(r) for r in self.standing],
            "open_cases": [dict(r) for r in self.open_cases],
            "max_ticket": self.max_ticket,
            "ledger_restored": self.ledger_restored,
            "resubmitted": self.resubmitted,
        }


def restore_ledger(ledger: ProvenanceLedger, state: JournalState) -> int:
    """Recreate provenance rows for every journaled completion.

    Rows carry the journaled timestamps, worker attribution, retry counts
    and terminal status; per-stage records did not survive the crash (they
    lived broker-side in memory) and stay empty.
    """
    restored = 0
    for key, completion in state.completions.items():
        ticket = completion.get("ticket", "")
        if not ticket:
            continue
        submit = state.submits.get(key, {})
        entry = ledger.open(
            ticket,
            completion.get("query", submit.get("query", "")),
            completion.get("world_key", submit.get("world_key", "default")),
        )
        entry.submitted_at = submit.get("ts", completion.get("ts", 0.0))
        claim = state.claims.get(ticket)
        if claim is not None:
            entry.worker = claim.get("worker", "")
            entry.started_at = claim.get("ts", 0.0)
        entry.retries = state.retries.get(ticket, 0)
        entry.finished_at = completion.get("ts", 0.0)
        entry.status = completion.get("status", "done")
        entry.error = completion.get("error", "")
        restored += 1
    return restored


def recover(journal: WriteAheadJournal,
            ledger: ProvenanceLedger | None = None) -> RecoveryReport:
    """Summarize a freshly opened journal into a :class:`RecoveryReport`,
    optionally restoring completed jobs' provenance ledger rows."""
    state = journal.state
    replay = journal.replay_stats
    report = RecoveryReport(
        directory=journal.directory,
        replayed_records=replay.replayed_records,
        truncated_bytes=replay.truncated_bytes,
        segments=replay.segments,
        checkpoint=replay.checkpoint,
        completions=len(state.completions),
        pending=state.pending(),
        deadletter=len(state.deadletter),
        standing=list(state.standing.values()),
        open_cases=state.open_cases(),
        max_ticket=state.max_ticket,
    )
    if ledger is not None:
        report.ledger_restored = restore_ledger(ledger, state)
    return report
