"""Content-addressed artifact cache for deterministic pipeline stages.

Repeated or similar queries share work: two researchers asking about the
same cable produce byte-identical ``ProblemAnalysis`` → ``WorkflowDesign``
→ ``GeneratedSolution`` chains, so only the first submission pays for the
agent calls.  Keys are content hashes over everything a stage's output is
a function of — the stage name, its input artifacts, the world's data
context and the registry fingerprint — which makes invalidation automatic:
evolve the registry (or point at a different world) and the key changes.

The cache stores artifacts as canonical JSON text, not live objects, so a
hit reconstructs a fresh artifact and mutation by one job can never leak
into another.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict


#: File name used inside a ``--cache-dir`` directory by every serve/live mode.
CACHE_FILE_NAME = "artifact_cache.json"


def cache_file_path(cache_dir: str) -> str:
    """The spill file for a cache directory (created on demand)."""
    os.makedirs(cache_dir, exist_ok=True)
    return os.path.join(cache_dir, CACHE_FILE_NAME)


def content_key(stage: str, material: dict) -> str:
    """Hash (stage, canonical-JSON material) to a stable hex key."""
    canonical = json.dumps(material, sort_keys=True, separators=(",", ":"), default=str)
    digest = hashlib.sha256(f"{stage}\x00{canonical}".encode("utf-8")).hexdigest()
    return f"{stage}:{digest[:32]}"


class ArtifactCache:
    """Thread-safe LRU store of serialized stage artifacts.

    Implements the two-method protocol :class:`repro.core.pipeline.ArachNet`
    expects of its ``cache`` field: ``fetch`` returns the deserialized
    payload dict (or ``None``) and ``store`` records one.
    """

    def __init__(self, max_entries: int = 4096):
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._entries: OrderedDict[str, str] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._per_stage: dict[str, dict[str, int]] = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def fetch(self, stage: str, material: dict) -> dict | None:
        key = content_key(stage, material)
        with self._lock:
            text = self._entries.get(key)
            counters = self._per_stage.setdefault(stage, {"hits": 0, "misses": 0})
            if text is None:
                self._misses += 1
                counters["misses"] += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            counters["hits"] += 1
        return json.loads(text)

    def store(self, stage: str, material: dict, payload: dict) -> str:
        key = content_key(stage, material)
        text = json.dumps(payload, sort_keys=True)
        with self._lock:
            self._entries[key] = text
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1
        return key

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    # -- persistence -------------------------------------------------------

    def spill(self, path: str) -> int:
        """Write the store to ``path`` as canonical JSON; returns entry count.

        The file preserves LRU order (least recently used first) so a later
        :meth:`load` reconstructs the same eviction order.  The write is
        crash-atomic: the document is fsync'd to a sidecar before the
        ``os.replace``, so even a power cut mid-spill leaves either the old
        complete file or the new complete file — never a half-written cache
        for the next broker to trip over.
        """
        with self._lock:
            snapshot = {key: json.loads(text) for key, text in self._entries.items()}
        document = {"version": 1, "entries": snapshot}
        tmp_path = f"{path}.tmp.{os.getpid()}"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, sort_keys=False, separators=(",", ":"))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
        try:
            dir_fd = os.open(os.path.dirname(path) or ".", os.O_RDONLY)
        except OSError:
            return len(snapshot)
        try:
            os.fsync(dir_fd)
        except OSError:
            pass
        finally:
            os.close(dir_fd)
        return len(snapshot)

    def load(self, path: str) -> int:
        """Merge entries from a spilled file; returns how many were loaded.

        Loaded entries slot in as *older* than anything already cached (they
        re-enter in file order, then existing entries keep their recency), and
        the LRU bound still applies — loading a file bigger than
        ``max_entries`` keeps only the most recently used tail.
        """
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        version = document.get("version")
        if version != 1:
            raise ValueError(f"unsupported cache file version {version!r}")
        entries = document["entries"]
        with self._lock:
            live = self._entries
            self._entries = OrderedDict()
            for key, payload in entries.items():
                self._entries[key] = json.dumps(payload, sort_keys=True)
            for key, text in live.items():
                self._entries[key] = text
                self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1
        return len(entries)

    @property
    def hit_rate(self) -> float:
        with self._lock:
            total = self._hits + self._misses
            return self._hits / total if total else 0.0

    def stats(self) -> dict:
        with self._lock:
            total = self._hits + self._misses
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "hit_rate": self._hits / total if total else 0.0,
                "per_stage": {k: dict(v) for k, v in self._per_stage.items()},
            }

    def reset_stats(self) -> None:
        """Zero the counters without dropping cached artifacts."""
        with self._lock:
            self._hits = 0
            self._misses = 0
            self._evictions = 0
            self._per_stage.clear()
