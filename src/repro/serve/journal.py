"""Write-ahead journal: the serve plane's crash-durable memory.

Every externally meaningful broker transition — job submissions, claims,
retries, completions (with artifact digests), cancellations, standing-query
registrations, forensic case transitions, dead-letter quarantines — is
appended to an fsync'd segment *before* the in-memory state moves, so a
SIGKILLed broker can be restarted and resume exactly where it died (see
:mod:`repro.serve.recovery`).

Storage layout (one directory)::

    wal-00000001.log        append-only record segments
    wal-00000002.log
    checkpoint-00000002.json  compacted state covering segments < 2

Segments are JSONL with per-record CRC32 + length framing::

    crc32-hex8 SP length-hex8 SP canonical-json LF

A record is valid only when the framing parses, the payload length and
CRC both match, and the trailing newline is present — any byte-level tear
(a broker killed mid-``write``, a filesystem that dropped the tail) makes
the record invalid, and opening the journal truncates the segment at the
last valid record rather than trusting a partial one.  Because canonical
JSON contains no raw newlines, no prefix of a record can parse as a
shorter valid record.

Segments rotate at a byte bound and compact into periodic checkpoints: a
checkpoint atomically persists the reduced :class:`JournalState`, then
every fully-covered segment (and older checkpoint) is deleted — the
journal's disk footprint is bounded by live state plus one segment, not
by campaign length.
"""

from __future__ import annotations

import glob
import json
import os
import threading
import time
import zlib
from dataclasses import dataclass, field

from repro.obs import MetricsRegistry

SEGMENT_PREFIX = "wal-"
SEGMENT_SUFFIX = ".log"
CHECKPOINT_PREFIX = "checkpoint-"
CHECKPOINT_SUFFIX = ".json"

#: fsync latency buckets in *milliseconds* (journal_fsync_ms).
FSYNC_MS_BUCKETS = (0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0,
                    50.0, 100.0, 250.0)

#: Record kinds the reducer understands; unknown kinds replay as no-ops so
#: a newer journal degrades gracefully under an older reader.
RECORD_KINDS = (
    "submit", "claim", "retry", "complete", "cancel",
    "standing_register", "standing_deregister", "case",
    "deadletter", "deadletter_drain",
)


class JournalError(RuntimeError):
    """Unwritable directories or checkpoints no reader version understands."""


# -- record framing -----------------------------------------------------------


def encode_record(record: dict) -> bytes:
    """Frame one record: ``crc32-hex8 SP length-hex8 SP payload LF``."""
    payload = json.dumps(record, sort_keys=True, separators=(",", ":"),
                         default=str).encode("utf-8")
    return b"%08x %08x " % (zlib.crc32(payload), len(payload)) + payload + b"\n"


def iter_valid_records(raw: bytes):
    """Yield ``(end_offset, record)`` per valid record, stopping at the
    first framing violation — the caller truncates there."""
    pos = 0
    size = len(raw)
    while pos < size:
        newline = raw.find(b"\n", pos)
        if newline == -1:
            return  # torn tail: record never got its newline
        line = raw[pos:newline]
        if len(line) < 18 or line[8:9] != b" " or line[17:18] != b" ":
            return
        try:
            crc = int(line[0:8], 16)
            length = int(line[9:17], 16)
        except ValueError:
            return
        payload = line[18:]
        if len(payload) != length or zlib.crc32(payload) != crc:
            return
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            return
        if not isinstance(record, dict):
            return
        pos = newline + 1
        yield pos, record


def read_segment(path: str, truncate: bool = True) -> tuple[list[dict], int]:
    """Every valid record in a segment, truncating any torn tail in place.

    Returns ``(records, truncated_bytes)``.  Truncation is what makes a
    reopened journal append-safe: the next record lands where the torn one
    started, never concatenated onto garbage.
    """
    with open(path, "rb") as handle:
        raw = handle.read()
    records: list[dict] = []
    end = 0
    for end, record in iter_valid_records(raw):
        records.append(record)
    torn = len(raw) - end
    if torn and truncate:
        with open(path, "r+b") as handle:
            handle.truncate(end)
            handle.flush()
            os.fsync(handle.fileno())
    return records, torn


def _fsync_dir(directory: str) -> None:
    """Durably record directory-entry changes (renames, creates, unlinks)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - non-POSIX directory semantics
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover
        pass
    finally:
        os.close(fd)


def _seq_of(path: str, prefix: str, suffix: str) -> int | None:
    name = os.path.basename(path)
    if not (name.startswith(prefix) and name.endswith(suffix)):
        return None
    try:
        return int(name[len(prefix):-len(suffix)])
    except ValueError:
        return None


def segment_paths(directory: str) -> list[tuple[int, str]]:
    out = []
    for path in glob.glob(os.path.join(directory, f"{SEGMENT_PREFIX}*{SEGMENT_SUFFIX}")):
        seq = _seq_of(path, SEGMENT_PREFIX, SEGMENT_SUFFIX)
        if seq is not None:
            out.append((seq, path))
    return sorted(out)


def checkpoint_paths(directory: str) -> list[tuple[int, str]]:
    out = []
    for path in glob.glob(os.path.join(directory,
                                       f"{CHECKPOINT_PREFIX}*{CHECKPOINT_SUFFIX}")):
        seq = _seq_of(path, CHECKPOINT_PREFIX, CHECKPOINT_SUFFIX)
        if seq is not None:
            out.append((seq, path))
    return sorted(out)


# -- the reduced state --------------------------------------------------------


def ticket_number(ticket: str) -> int:
    """The counter inside a ``job-NNNNNN`` ticket (0 when unparsable)."""
    try:
        return int(str(ticket).rsplit("-", 1)[-1])
    except (ValueError, IndexError):
        return 0


@dataclass
class JournalState:
    """What the journal *means*: the reduction every reader agrees on.

    The same ``apply`` runs on the live append path, during checkpoint
    compaction, and during recovery replay — there is exactly one
    interpretation of the record stream.
    """

    #: Latest submission per idempotency key (cancelled ones removed).
    submits: dict[str, dict] = field(default_factory=dict)
    #: ticket -> idempotency key, for every journaled submission.
    tickets: dict[str, str] = field(default_factory=dict)
    #: Terminal outcome per idempotency key (status done|failed, digest...).
    completions: dict[str, dict] = field(default_factory=dict)
    #: ticket -> last claim record (worker name, timestamp).
    claims: dict[str, dict] = field(default_factory=dict)
    #: ticket -> crash-retry count.
    retries: dict[str, int] = field(default_factory=dict)
    cancelled: set[str] = field(default_factory=set)
    #: Standing-query registrations still live (name -> record).
    standing: dict[str, dict] = field(default_factory=dict)
    #: Forensic cases by id; each record is the merge of its transitions.
    cases: dict[str, dict] = field(default_factory=dict)
    #: Quarantined (world_key, query) signatures -> dead-letter record.
    deadletter: dict[str, dict] = field(default_factory=dict)
    max_ticket: int = 0
    applied: int = 0

    @staticmethod
    def signature(world_key: str, query: str) -> str:
        return f"{world_key}\x00{query}"

    def apply(self, record: dict) -> None:
        self.applied += 1
        kind = record.get("kind")
        if kind == "submit":
            key = record["key"]
            ticket = record["ticket"]
            self.submits[key] = record
            self.tickets[ticket] = key
            self.max_ticket = max(self.max_ticket, ticket_number(ticket))
        elif kind == "claim":
            self.claims[record["ticket"]] = record
        elif kind == "retry":
            ticket = record["ticket"]
            self.retries[ticket] = self.retries.get(ticket, 0) + 1
        elif kind == "complete":
            self.completions[record["key"]] = record
        elif kind == "cancel":
            ticket = record["ticket"]
            self.cancelled.add(ticket)
            key = self.tickets.get(ticket)
            live = self.submits.get(key) if key else None
            if live is not None and live.get("ticket") == ticket:
                del self.submits[key]
        elif kind == "standing_register":
            self.standing[record["name"]] = record
        elif kind == "standing_deregister":
            self.standing.pop(record["name"], None)
        elif kind == "case":
            merged = dict(self.cases.get(record["case_id"], {}))
            merged.update(record)
            self.cases[record["case_id"]] = merged
        elif kind == "deadletter":
            sig = self.signature(record["world_key"], record["query"])
            self.deadletter[sig] = record
        elif kind == "deadletter_drain":
            for sig in record.get("sigs", []):
                self.deadletter.pop(sig, None)
        # unknown kinds: forward-compatible no-op

    def pending(self) -> list[dict]:
        """Journaled submissions with no journaled completion — exactly the
        jobs a resumed campaign must run again (cancellations already
        dropped out of ``submits``)."""
        rows = [rec for key, rec in self.submits.items()
                if key not in self.completions]
        rows.sort(key=lambda r: ticket_number(r.get("ticket", "")))
        return rows

    def open_cases(self) -> list[dict]:
        return [rec for rec in self.cases.values()
                if rec.get("state") not in ("completed", "failed", "closed")]

    def to_payload(self) -> dict:
        return {
            "submits": self.submits,
            "tickets": self.tickets,
            "completions": self.completions,
            "claims": self.claims,
            "retries": self.retries,
            "cancelled": sorted(self.cancelled),
            "standing": self.standing,
            "cases": self.cases,
            "deadletter": self.deadletter,
            "max_ticket": self.max_ticket,
            "applied": self.applied,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "JournalState":
        state = cls(
            submits=dict(payload.get("submits", {})),
            tickets=dict(payload.get("tickets", {})),
            completions=dict(payload.get("completions", {})),
            claims=dict(payload.get("claims", {})),
            retries={k: int(v) for k, v in payload.get("retries", {}).items()},
            cancelled=set(payload.get("cancelled", [])),
            standing=dict(payload.get("standing", {})),
            cases=dict(payload.get("cases", {})),
            deadletter=dict(payload.get("deadletter", {})),
            max_ticket=int(payload.get("max_ticket", 0)),
            applied=int(payload.get("applied", 0)),
        )
        return state


@dataclass
class ReplayStats:
    """What opening a journal found on disk."""

    replayed_records: int = 0
    truncated_bytes: int = 0
    segments: int = 0
    checkpoint: str = ""
    checkpoint_records: int = 0

    def to_dict(self) -> dict:
        return {
            "replayed_records": self.replayed_records,
            "truncated_bytes": self.truncated_bytes,
            "segments": self.segments,
            "checkpoint": self.checkpoint,
            "checkpoint_records": self.checkpoint_records,
        }


def replay_directory(directory: str,
                     truncate: bool = True) -> tuple[JournalState, ReplayStats]:
    """Reduce checkpoint + newer segments into a :class:`JournalState`.

    Newest *loadable* checkpoint wins (a checkpoint torn by a crash during
    compaction is skipped and its covered segments replayed instead);
    every segment tail is validated and — with ``truncate`` — repaired in
    place.
    """
    state = JournalState()
    stats = ReplayStats()
    start_segment = 0
    for seq, path in reversed(checkpoint_paths(directory)):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                doc = json.load(handle)
            if doc.get("version") != 1:
                raise JournalError(
                    f"checkpoint {path} has unsupported version "
                    f"{doc.get('version')!r}")
            state = JournalState.from_payload(doc["state"])
        except JournalError:
            raise
        except Exception:
            continue  # torn/partial checkpoint: fall back to the previous one
        start_segment = seq
        stats.checkpoint = path
        stats.checkpoint_records = state.applied
        break
    for seq, path in segment_paths(directory):
        if seq < start_segment:
            continue  # already folded into the checkpoint
        records, torn = read_segment(path, truncate=truncate)
        stats.segments += 1
        stats.truncated_bytes += torn
        for record in records:
            state.apply(record)
            stats.replayed_records += 1
    return state, stats


# -- the writer ---------------------------------------------------------------


class WriteAheadJournal:
    """Append-only journal over one directory; safe for concurrent appends.

    Opening replays whatever the directory holds (surviving checkpoint +
    segment tails, torn tails truncated) into :attr:`state`, then starts a
    fresh segment — an appender never continues a segment it did not
    validate byte-by-byte.
    """

    def __init__(
        self,
        directory: str,
        max_segment_bytes: int = 1_000_000,
        checkpoint_every: int = 1000,
        fsync: bool = True,
        metrics: MetricsRegistry | None = None,
    ):
        if max_segment_bytes < 1024:
            raise ValueError("max_segment_bytes must be >= 1024")
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        self.directory = directory
        self.max_segment_bytes = max_segment_bytes
        self.checkpoint_every = checkpoint_every
        self.fsync_enabled = fsync
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._appends = self.metrics.counter("journal_appends_total")
        self._fsync_ms = self.metrics.histogram("journal_fsync_ms",
                                                buckets=FSYNC_MS_BUCKETS)
        self._checkpoints = self.metrics.counter("journal_checkpoints_total")
        self._lock = threading.Lock()
        os.makedirs(directory, exist_ok=True)
        self.state, self.replay_stats = replay_directory(directory)
        existing = segment_paths(directory)
        last_seq = existing[-1][0] if existing else 0
        for seq, path in checkpoint_paths(directory):
            last_seq = max(last_seq, seq)
        self._segment_seq = last_seq  # _rotate() opens last_seq + 1
        self._handle = None
        self._segment_bytes = 0
        self._since_checkpoint = 0
        self._appended = 0
        self._closed = False
        self._rotate_locked()

    # -- append path -------------------------------------------------------

    def append(self, kind: str, record: dict, sync: bool | None = None) -> dict:
        """Durably append one record (and fold it into :attr:`state`).

        Returns the full record as written, timestamped.  The write is
        flushed and fsync'd before this returns — a caller that acts on
        the appended fact can rely on recovery seeing it.  ``sync=False``
        skips the fsync for records that merely enrich recovery (claims);
        they still flush to the OS, so only a machine-level crash — not a
        process kill — can shed them.
        """
        full = {"kind": kind, "ts": time.time(), **record}
        framed = encode_record(full)
        do_sync = self.fsync_enabled if sync is None else (
            sync and self.fsync_enabled)
        with self._lock:
            if self._closed:
                raise JournalError("journal is closed")
            self._handle.write(framed)
            self._handle.flush()
            if do_sync:
                started = time.perf_counter()
                os.fsync(self._handle.fileno())
                self._fsync_ms.observe(
                    (time.perf_counter() - started) * 1000.0)
            self.state.apply(full)
            self._segment_bytes += len(framed)
            self._since_checkpoint += 1
            self._appended += 1
            if self._since_checkpoint >= self.checkpoint_every:
                self._checkpoint_locked()
            elif self._segment_bytes >= self.max_segment_bytes:
                self._rotate_locked()
        self._appends.inc()
        return full

    def _rotate_locked(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            if self.fsync_enabled:
                os.fsync(self._handle.fileno())
            self._handle.close()
        self._segment_seq += 1
        path = os.path.join(
            self.directory,
            f"{SEGMENT_PREFIX}{self._segment_seq:08d}{SEGMENT_SUFFIX}")
        self._handle = open(path, "ab")
        self._segment_bytes = 0
        _fsync_dir(self.directory)

    def _checkpoint_locked(self) -> None:
        """Compact: persist the reduced state, then delete covered files.

        The new segment opens *before* the checkpoint lands, so a crash at
        any point leaves either (old checkpoint + all segments) or (new
        checkpoint + uncovered segments) — both replay to the same state.
        """
        self._rotate_locked()
        covered_before = self._segment_seq
        doc = {
            "version": 1,
            "next_segment": covered_before,
            "records": self.state.applied,
            "state": self.state.to_payload(),
        }
        path = os.path.join(
            self.directory,
            f"{CHECKPOINT_PREFIX}{covered_before:08d}{CHECKPOINT_SUFFIX}")
        tmp_path = f"{path}.tmp.{os.getpid()}"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(doc, handle, sort_keys=True, separators=(",", ":"))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
        _fsync_dir(self.directory)
        for seq, seg_path in segment_paths(self.directory):
            if seq < covered_before:
                try:
                    os.unlink(seg_path)
                except OSError:  # pragma: no cover - raced an inspector
                    pass
        for seq, ckpt_path in checkpoint_paths(self.directory):
            if seq < covered_before:
                try:
                    os.unlink(ckpt_path)
                except OSError:  # pragma: no cover
                    pass
        _fsync_dir(self.directory)
        self._since_checkpoint = 0
        self._checkpoints.inc()

    def checkpoint(self) -> None:
        """Force a compaction now (tests and orderly shutdown)."""
        with self._lock:
            if self._closed:
                raise JournalError("journal is closed")
            self._checkpoint_locked()

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._handle is not None:
                self._handle.flush()
                if self.fsync_enabled:
                    os.fsync(self._handle.fileno())
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "WriteAheadJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def stats(self) -> dict:
        with self._lock:
            return {
                "directory": self.directory,
                "appended": self._appended,
                "segment_seq": self._segment_seq,
                "segment_bytes": self._segment_bytes,
                "since_checkpoint": self._since_checkpoint,
                "fsync": self.fsync_enabled,
                "replay": self.replay_stats.to_dict(),
                "pending": len(self.state.pending()),
                "completions": len(self.state.completions),
                "deadletter": len(self.state.deadletter),
            }


# -- dead-letter queue --------------------------------------------------------


class DeadLetterQueue:
    """Quarantine for poison jobs: (world, query) signatures whose repeated
    worker deaths tripped the broker's crash-loop circuit breaker.

    Entries are journaled (when a journal is attached) so quarantine
    survives restarts; draining re-opens the circuit and journals the
    drain, returning the entries for CLI-driven resubmission.
    """

    def __init__(self, journal: WriteAheadJournal | None = None,
                 metrics: MetricsRegistry | None = None):
        self.journal = journal
        self._entries: dict[str, dict] = {}
        self._lock = threading.Lock()
        self._quarantined_total = 0
        if metrics is not None:
            metrics.register_collector(self._collect)
        if journal is not None:
            # Re-arm quarantine from the replayed state: a poison job stays
            # poisoned across a broker restart until somebody drains it.
            for sig, record in journal.state.deadletter.items():
                self._entries[sig] = dict(record)

    def _collect(self, metrics: MetricsRegistry) -> None:
        metrics.gauge("deadletter_depth").set(self.depth)

    @property
    def depth(self) -> int:
        with self._lock:
            return len(self._entries)

    def contains(self, world_key: str, query: str) -> bool:
        sig = JournalState.signature(world_key, query)
        with self._lock:
            return sig in self._entries

    def quarantine(self, world_key: str, query: str, *, key: str = "",
                   params: dict | None = None, priority: int = 0,
                   ticket: str = "", crashes: int = 0,
                   worker_slots: list[int] | None = None,
                   error: str = "") -> dict:
        sig = JournalState.signature(world_key, query)
        now = time.time()
        with self._lock:
            entry = self._entries.get(sig)
            if entry is None:
                entry = {
                    "world_key": world_key,
                    "query": query,
                    "key": key,
                    "params": params,
                    "priority": priority,
                    "tickets": [],
                    "crashes": 0,
                    "worker_slots": [],
                    "first_ts": now,
                    "last_ts": now,
                    "error": error,
                }
                self._entries[sig] = entry
                self._quarantined_total += 1
            if ticket and ticket not in entry["tickets"]:
                entry["tickets"].append(ticket)
            entry["crashes"] = max(entry["crashes"], crashes)
            for slot in worker_slots or ():
                if slot not in entry["worker_slots"]:
                    entry["worker_slots"].append(slot)
            entry["last_ts"] = now
            if error:
                entry["error"] = error
            snapshot = dict(entry)
        if self.journal is not None:
            self.journal.append("deadletter", snapshot)
        return snapshot

    def entries(self) -> list[dict]:
        with self._lock:
            return [dict(e) for e in self._entries.values()]

    def drain(self) -> list[dict]:
        """Release every quarantined entry (journaling the drain) so the
        poison signatures may run again; returns what was released."""
        with self._lock:
            drained = [dict(e) for e in self._entries.values()]
            sigs = list(self._entries)
            self._entries.clear()
        if drained and self.journal is not None:
            self.journal.append("deadletter_drain", {"sigs": sigs})
        return drained

    def stats(self) -> dict:
        with self._lock:
            return {
                "depth": len(self._entries),
                "quarantined_total": self._quarantined_total,
                "signatures": sorted(
                    (e["world_key"], e["query"]) for e in self._entries.values()
                ),
            }
