"""ArachNet Serve: the concurrent query-serving layer.

Turns the one-shot ``ArachNet.answer()`` pipeline into a service: a
:class:`QueryBroker` accepts submissions and hands out tickets, a
:class:`PriorityScheduler` orders them (priority + FIFO, sharded per
world), a :class:`WorkerPool` of threads drains the queue into a pluggable
:class:`ExecutionBackend` (in-thread, or a preforked process pool for
CPU-bound pipelines), a shared :class:`ArtifactCache` memoizes the
deterministic agent stages, and a :class:`ProvenanceLedger` records what
every job cost and where each artifact came from.
:mod:`repro.serve.campaign` fans scenario matrices into batch submissions
over the same machinery.
"""

from repro.serve.backends import (
    BACKEND_NAMES,
    BackendError,
    ExecutionBackend,
    JobDeadlineExceeded,
    JobPayload,
    ProcessPoolBackend,
    ThreadPoolBackend,
    WorkerCrashed,
    affinity_key,
    build_backend,
)
from repro.serve.broker import (
    DEFAULT_WORLD_KEY,
    BrokerError,
    Job,
    JobState,
    PoisonJobQuarantined,
    QueryBroker,
    QueueSaturated,
    ServeConfig,
)
from repro.serve.cache import ArtifactCache, content_key
from repro.serve.campaign import (
    CampaignJob,
    CampaignReport,
    CampaignSpec,
    aggregate_rankings,
    run_campaign,
)
from repro.serve.journal import (
    DeadLetterQueue,
    JournalState,
    WriteAheadJournal,
    replay_directory,
)
from repro.serve.provenance import JobProvenance, ProvenanceLedger, StageRecord
from repro.serve.recovery import RecoveryReport, ReplayedResult, recover
from repro.serve.scheduler import (
    PriorityScheduler,
    SchedulerClosed,
    SchedulerSaturated,
    WorldShard,
)
from repro.serve.workers import WorkerPool

__all__ = [
    "ArtifactCache",
    "BACKEND_NAMES",
    "BackendError",
    "BrokerError",
    "DeadLetterQueue",
    "ExecutionBackend",
    "JobDeadlineExceeded",
    "JobPayload",
    "JournalState",
    "ProcessPoolBackend",
    "ThreadPoolBackend",
    "affinity_key",
    "build_backend",
    "CampaignJob",
    "CampaignReport",
    "CampaignSpec",
    "DEFAULT_WORLD_KEY",
    "Job",
    "JobProvenance",
    "JobState",
    "PoisonJobQuarantined",
    "PriorityScheduler",
    "ProvenanceLedger",
    "QueryBroker",
    "QueueSaturated",
    "RecoveryReport",
    "ReplayedResult",
    "SchedulerClosed",
    "SchedulerSaturated",
    "ServeConfig",
    "StageRecord",
    "WorkerCrashed",
    "WorkerPool",
    "WorldShard",
    "WriteAheadJournal",
    "aggregate_rankings",
    "content_key",
    "recover",
    "replay_directory",
    "run_campaign",
]
