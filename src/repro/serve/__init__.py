"""ArachNet Serve: the concurrent query-serving layer.

Turns the one-shot ``ArachNet.answer()`` pipeline into a service: a
:class:`QueryBroker` accepts submissions and hands out tickets, a
:class:`PriorityScheduler` orders them (priority + FIFO, sharded per
world), a :class:`WorkerPool` of threads drains the queue into a pluggable
:class:`ExecutionBackend` (in-thread, or a preforked process pool for
CPU-bound pipelines), a shared :class:`ArtifactCache` memoizes the
deterministic agent stages, and a :class:`ProvenanceLedger` records what
every job cost and where each artifact came from.
:mod:`repro.serve.campaign` fans scenario matrices into batch submissions
over the same machinery.
"""

from repro.serve.backends import (
    BACKEND_NAMES,
    BackendError,
    ExecutionBackend,
    JobPayload,
    ProcessPoolBackend,
    ThreadPoolBackend,
    WorkerCrashed,
    build_backend,
)
from repro.serve.broker import (
    DEFAULT_WORLD_KEY,
    BrokerError,
    Job,
    JobState,
    QueryBroker,
    ServeConfig,
)
from repro.serve.cache import ArtifactCache, content_key
from repro.serve.campaign import (
    CampaignJob,
    CampaignReport,
    CampaignSpec,
    aggregate_rankings,
    run_campaign,
)
from repro.serve.provenance import JobProvenance, ProvenanceLedger, StageRecord
from repro.serve.scheduler import PriorityScheduler, SchedulerClosed, WorldShard
from repro.serve.workers import WorkerPool

__all__ = [
    "ArtifactCache",
    "BACKEND_NAMES",
    "BackendError",
    "BrokerError",
    "ExecutionBackend",
    "JobPayload",
    "ProcessPoolBackend",
    "ThreadPoolBackend",
    "build_backend",
    "CampaignJob",
    "CampaignReport",
    "CampaignSpec",
    "DEFAULT_WORLD_KEY",
    "Job",
    "JobProvenance",
    "JobState",
    "PriorityScheduler",
    "ProvenanceLedger",
    "QueryBroker",
    "SchedulerClosed",
    "ServeConfig",
    "StageRecord",
    "WorkerCrashed",
    "WorkerPool",
    "WorldShard",
    "aggregate_rankings",
    "content_key",
    "run_campaign",
]
