"""Per-job provenance: who produced what, when, and from cache or fresh.

Every served job gets a ledger entry recording its lifecycle timestamps
and one record per pipeline stage — the agent attribution, artifact kind,
wall-clock duration and whether the artifact came from the cache.  This is
the serve-layer analogue of the paper's Figure-1 trace (and of
PROV-AGENT-style agent provenance): the trace says *which agents* ran, the
ledger says *what each cost* and *where its output came from*.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.core.artifacts import StageTrace


@dataclass
class StageRecord:
    """One pipeline stage of one served job."""

    stage: str  # agent name: querymind | workflowscout | ...
    artifact_kind: str
    duration_s: float
    cache_hit: bool = False
    expert_reviewed: bool = False

    @classmethod
    def from_trace(cls, trace: StageTrace) -> "StageRecord":
        return cls(
            stage=trace.agent,
            artifact_kind=trace.artifact_kind,
            duration_s=trace.duration_s,
            cache_hit=trace.cache_hit,
            expert_reviewed=trace.expert_reviewed,
        )

    def to_dict(self) -> dict:
        return {
            "stage": self.stage,
            "artifact_kind": self.artifact_kind,
            "duration_s": self.duration_s,
            "cache_hit": self.cache_hit,
            "expert_reviewed": self.expert_reviewed,
        }


@dataclass
class JobProvenance:
    """The full ledger entry for one served job."""

    job_id: str
    query: str
    world_key: str = "default"
    worker: str = ""
    submitted_at: float = 0.0
    started_at: float = 0.0
    finished_at: float = 0.0
    status: str = "queued"
    error: str = ""
    #: Times the job was resubmitted after its worker process died.
    retries: int = 0
    #: Trace id of the job's span tree when the broker traced it ("" when
    #: tracing was off) — joins this ledger row to its trace export.
    trace_id: str = ""
    #: Path of the flight-recorder postmortem covering this job's crash
    #: retry ("" when the job never crashed or no recorder was running).
    flight_dump: str = ""
    stages: list[StageRecord] = field(default_factory=list)

    @property
    def queue_delay_s(self) -> float:
        if self.started_at and self.submitted_at:
            return max(0.0, self.started_at - self.submitted_at)
        return 0.0

    @property
    def run_duration_s(self) -> float:
        if self.finished_at and self.started_at:
            return max(0.0, self.finished_at - self.started_at)
        return 0.0

    def cache_hits(self) -> int:
        return sum(1 for s in self.stages if s.cache_hit)

    def observer(self):
        """A :data:`~repro.core.pipeline.StageObserver` appending to this entry."""

        def observe(trace: StageTrace) -> None:
            self.stages.append(StageRecord.from_trace(trace))

        return observe

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "query": self.query,
            "world_key": self.world_key,
            "worker": self.worker,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "status": self.status,
            "error": self.error,
            "retries": self.retries,
            "trace_id": self.trace_id,
            "flight_dump": self.flight_dump,
            "queue_delay_s": self.queue_delay_s,
            "run_duration_s": self.run_duration_s,
            "stages": [s.to_dict() for s in self.stages],
        }


class ProvenanceLedger:
    """Thread-safe collection of job provenance entries."""

    def __init__(self, clock=time.time):
        self._clock = clock
        self._entries: dict[str, JobProvenance] = {}
        self._lock = threading.Lock()

    def now(self) -> float:
        return self._clock()

    def open(self, job_id: str, query: str, world_key: str = "default",
             trace_id: str = "") -> JobProvenance:
        entry = JobProvenance(
            job_id=job_id, query=query, world_key=world_key,
            submitted_at=self.now(), trace_id=trace_id,
        )
        with self._lock:
            self._entries[job_id] = entry
        return entry

    def get(self, job_id: str) -> JobProvenance:
        with self._lock:
            return self._entries[job_id]

    def remove(self, job_id: str) -> None:
        with self._lock:
            self._entries.pop(job_id, None)

    def jobs(self) -> list[JobProvenance]:
        with self._lock:
            return list(self._entries.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def mark_started(self, job_id: str, worker: str) -> None:
        entry = self.get(job_id)
        entry.worker = worker
        entry.started_at = self.now()
        entry.status = "running"

    def mark_retried(self, job_id: str) -> None:
        """The job's worker died mid-flight and it was resubmitted."""
        self.get(job_id).retries += 1

    def mark_finished(self, job_id: str, status: str, error: str = "") -> None:
        entry = self.get(job_id)
        entry.finished_at = self.now()
        entry.status = status
        entry.error = error

    def summary(self) -> dict:
        """Aggregate stage timings and cache economics across all jobs."""
        jobs = self.jobs()
        per_stage: dict[str, dict] = {}
        for job in jobs:
            for record in job.stages:
                agg = per_stage.setdefault(
                    record.stage,
                    {"calls": 0, "cache_hits": 0, "total_s": 0.0},
                )
                agg["calls"] += 1
                agg["cache_hits"] += 1 if record.cache_hit else 0
                agg["total_s"] += record.duration_s
        for agg in per_stage.values():
            agg["mean_s"] = agg["total_s"] / agg["calls"] if agg["calls"] else 0.0
        finished = [j for j in jobs if j.finished_at]
        return {
            "jobs": len(jobs),
            "finished": len(finished),
            "failed": sum(1 for j in jobs if j.status == "failed"),
            "retried": sum(j.retries for j in jobs),
            "mean_queue_delay_s": (
                sum(j.queue_delay_s for j in finished) / len(finished) if finished else 0.0
            ),
            "mean_run_duration_s": (
                sum(j.run_duration_s for j in finished) / len(finished) if finished else 0.0
            ),
            "per_stage": per_stage,
        }
