"""Batch campaigns: fan a scenario matrix into many served jobs.

A campaign turns "what if any of these cables failed?" into one submission
per scenario — cables × disaster kinds × region pairs — then waits for the
fleet and aggregates the per-job rankings into a cross-scenario view
(which countries keep appearing at the top regardless of which cable
breaks).  Because jobs flow through the broker, campaigns get the
scheduler, worker pool, artifact cache and provenance ledger for free; a
re-run of the same campaign is almost entirely cache hits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.serve.broker import DEFAULT_WORLD_KEY, JobState, QueryBroker
from repro.synth.world import SyntheticWorld

CABLE_IMPACT_TEMPLATE = (
    "Identify the impact at a country level due to {cable} cable failure"
)
DISASTER_TEMPLATE = (
    "Identify the impact of severe natural disasters ({kind}s) globally "
    "assuming a {probability:.0%} infra failure probability"
)
CASCADE_TEMPLATE = (
    "Analyze the cascading effects of submarine cable failures "
    "between {src} and {dst}"
)


@dataclass(frozen=True)
class CampaignJob:
    """One expanded scenario: the query to serve plus its matrix coordinates."""

    query: str
    tag: str
    params: tuple = ()  # (key, value) pairs; kept hashable for dedup

    def params_dict(self) -> dict:
        return dict(self.params)


@dataclass
class CampaignSpec:
    """The scenario matrix to fan out."""

    cables: tuple[str, ...] = ()
    disaster_kinds: tuple[str, ...] = ()
    region_pairs: tuple[tuple[str, str], ...] = ()
    failure_probability: float = 0.1
    priority: int = 0

    @classmethod
    def for_world(
        cls,
        world: SyntheticWorld,
        limit: int | None = None,
        disasters: bool = True,
        cascades: bool = False,
        priority: int = 0,
    ) -> "CampaignSpec":
        """The default matrix: every cable, optionally disasters and one
        Europe↔Asia cascade pair.  ``limit`` caps the cable list; 0 means
        no cable scenarios at all (disasters may still run)."""
        names = world.cable_names()
        if limit is not None:
            if limit < 0:
                raise ValueError("limit must be >= 0")
            names = names[:limit]
        cables = tuple(names)
        return cls(
            cables=cables,
            disaster_kinds=("earthquake", "hurricane") if disasters else (),
            region_pairs=(("Europe", "Asia"),) if cascades else (),
            priority=priority,
        )

    def expand(self) -> list[CampaignJob]:
        jobs: list[CampaignJob] = []
        for cable in self.cables:
            jobs.append(CampaignJob(
                query=CABLE_IMPACT_TEMPLATE.format(cable=cable),
                tag=f"cable:{cable}",
            ))
        for kind in self.disaster_kinds:
            jobs.append(CampaignJob(
                query=DISASTER_TEMPLATE.format(
                    kind=kind, probability=self.failure_probability
                ),
                tag=f"disaster:{kind}",
            ))
        for src, dst in self.region_pairs:
            jobs.append(CampaignJob(
                query=CASCADE_TEMPLATE.format(src=src, dst=dst),
                tag=f"cascade:{src}-{dst}",
            ))
        return jobs


@dataclass
class CampaignReport:
    """Outcome of one campaign run."""

    total: int
    succeeded: int
    failed: int
    duration_s: float
    jobs_per_sec: float
    outcomes: list[dict] = field(default_factory=list)  # per-job rows
    top_countries: list[dict] = field(default_factory=list)
    cache: dict | None = None
    tickets: list[str] = field(default_factory=list)
    #: Jobs whose results were re-joined from a journaled completion (a
    #: resumed campaign) rather than executed; counts toward ``succeeded``.
    replayed: int = 0

    @property
    def all_succeeded(self) -> bool:
        return self.failed == 0 and self.total > 0

    def to_dict(self) -> dict:
        return {
            "total": self.total,
            "succeeded": self.succeeded,
            "failed": self.failed,
            "duration_s": self.duration_s,
            "jobs_per_sec": self.jobs_per_sec,
            "outcomes": list(self.outcomes),
            "top_countries": list(self.top_countries),
            "cache": dict(self.cache) if self.cache else None,
            "replayed": self.replayed,
        }

    def summary_rows(self) -> list[tuple]:
        rows = [
            ("jobs", f"{self.succeeded}/{self.total} ok"),
            ("duration", f"{self.duration_s:.2f}s"),
            ("throughput", f"{self.jobs_per_sec:.1f} jobs/s"),
        ]
        if self.cache:
            rows.append(("cache hit rate", f"{self.cache['hit_rate']:.0%}"))
        for row in self.top_countries[:5]:
            rows.append((f"top impact {row['country']}",
                         f"score {row['mean_score']:.3f} in {row['appearances']} scenarios"))
        return rows


def _extract_country_rows(result) -> list[dict]:
    """Country-ranking rows from a pipeline result's final output, if any."""
    final = result.execution.outputs.get("final") if result.execution.succeeded else None
    if not isinstance(final, dict):
        return []
    ranking = final.get("ranking") or final.get("country_ranking") or []
    return [
        row for row in ranking
        if isinstance(row, dict) and "country" in row
    ]


def aggregate_rankings(results: list) -> list[dict]:
    """Cross-scenario country exposure: mean score over the scenarios in
    which each country surfaced, weighted by how often it surfaced."""
    totals: dict[str, dict] = {}
    for result in results:
        for row in _extract_country_rows(result):
            slot = totals.setdefault(row["country"], {"appearances": 0, "score": 0.0})
            slot["appearances"] += 1
            slot["score"] += float(row.get("score", 0.0))
    rows = [
        {
            "country": country,
            "appearances": slot["appearances"],
            "mean_score": slot["score"] / slot["appearances"],
        }
        for country, slot in totals.items()
    ]
    rows.sort(key=lambda r: (-r["appearances"], -r["mean_score"], r["country"]))
    return rows


def run_campaign(
    broker: QueryBroker,
    spec: CampaignSpec | list[CampaignJob],
    world_key: str = DEFAULT_WORLD_KEY,
    timeout: float | None = None,
) -> CampaignReport:
    """Submit every scenario, wait for the fleet, aggregate the outcomes.

    ``timeout`` bounds the wait for *each* job, not the whole campaign.
    """
    jobs = spec.expand() if isinstance(spec, CampaignSpec) else list(spec)
    priority = spec.priority if isinstance(spec, CampaignSpec) else 0
    started = broker.ledger.now()
    tickets = [
        broker.submit(job.query, params=job.params_dict() or None,
                      priority=priority, world_key=world_key)
        for job in jobs
    ]
    finished = broker.wait_all(tickets, timeout=timeout)
    duration = max(broker.ledger.now() - started, 1e-9)

    outcomes = []
    results = []
    succeeded = 0
    replayed = 0
    for job_spec, job in zip(jobs, finished):
        ok = job.state is JobState.DONE
        succeeded += 1 if ok else 0
        replayed += 1 if job.replayed else 0
        if job.result is not None:
            results.append(job.result)
        outcomes.append({
            "ticket": job.ticket,
            "tag": job_spec.tag,
            "state": job.state.value,
            "error": job.error,
            "replayed": job.replayed,
        })
    return CampaignReport(
        total=len(jobs),
        succeeded=succeeded,
        failed=len(jobs) - succeeded,
        duration_s=duration,
        jobs_per_sec=len(jobs) / duration,
        outcomes=outcomes,
        top_countries=aggregate_rankings(
            [r for r in results if r.execution.succeeded]
        ),
        cache=broker.cache.stats() if broker.cache else None,
        tickets=tickets,
        replayed=replayed,
    )
