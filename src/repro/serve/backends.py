"""Pluggable execution backends: where a served job's pipeline actually runs.

The broker's worker threads drain the scheduler either way; the backend
decides what happens to a claimed job:

* :class:`ThreadPoolBackend` — run the pipeline in the claiming thread
  against the shard's shared in-process system.  Right when hosted-LLM
  round-trip latency dominates: threads overlap the waits, artifacts stay
  in shared memory, and the broker-wide :class:`ArtifactCache` is shared.
* :class:`ProcessPoolBackend` — an affinity-aware execution plane over
  explicit preforked worker processes.  Right when generated-code
  execution is CPU-bound: each process escapes the GIL and holds a
  process-local world/system/artifact cache, and three mechanisms keep
  the IPC bill from eating the win:

  - **sticky affinity routing** — jobs hash to a (world, query) affinity
    key; the dispatcher remembers which worker served a key and sends
    resubmissions back to its warm caches, with a work-stealing fallback
    (an idle worker takes over a key whose bound worker is backlogged)
    so a hot world cannot starve the pool;
  - **zero-copy transport** — results travel as pickle-protocol-5
    payloads whose large bodies move through
    :mod:`multiprocessing.shared_memory` segments instead of queue pipes
    (see :mod:`repro.serve.transport`), and per-job requests are small
    deltas against a :class:`JobPayload` template shipped once per
    worker per shard;
  - **batched dispatch** — concurrent dispatches to the same worker are
    coalesced into one queue message, and workers prefork with every
    already-registered world preloaded so first jobs land on warm state.

  A worker process that dies mid-job is respawned by a monitor thread;
  its in-flight jobs surface as :class:`WorkerCrashed` so the broker can
  retry them once on a different worker.

Both backends produce byte-identical artifacts for the same job: the
pipeline is deterministic in (query, params, world config, registry), which
the payload carries in full — fingerprints are verified worker-side so a
hand-mutated world or unrebuildable registry fails loudly instead of
silently serving answers about a different Internet.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import multiprocessing
import os
import pickle
import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import Future
from dataclasses import dataclass
from multiprocessing import connection

from repro.core.artifacts import PipelineResult
from repro.core.pipeline import ArachNet
from repro.core.registry import default_registry
from repro.obs import NULL_TRACER, MetricsRegistry, Tracer
from repro.serve import transport
from repro.serve.cache import ArtifactCache
from repro.serve.scheduler import WorldShard
from repro.synth.scenarios import LatencyIncident
from repro.synth.world import WorldConfig, build_world

BACKEND_NAMES = ("thread", "process")

#: Params key intercepted (and stripped) worker-side for fault injection in
#: tests: ``{"_serve_fault": "exit"}`` kills the worker before the pipeline
#: runs, ``{"_serve_fault": {"exit_on_worker": 0}}`` kills it only on slot 0
#: (so a broker retry that excludes slot 0 succeeds elsewhere), and
#: ``{"_serve_fault": {"sleep_s": 0.5}}`` delays execution to build queue
#: depth deterministically.
FAULT_PARAM = "_serve_fault"

#: Sticky bindings kept per backend before the oldest are forgotten.
AFFINITY_MAP_BOUND = 65536


class BackendError(RuntimeError):
    """Unknown backend names, unpicklable payload parts, or non-rebuildable
    shard state the process backend cannot ship across the fork."""


class WorkerCrashed(BackendError):
    """A worker process died with this job in flight.  Carries the affinity
    slot so a retry can exclude it."""

    def __init__(self, worker_index: int, message: str = ""):
        super().__init__(
            message or f"worker process on affinity slot {worker_index} died mid-job"
        )
        self.worker_index = worker_index

    def __reduce__(self):
        return (WorkerCrashed, (self.worker_index, self.args[0]))


class JobDeadlineExceeded(BackendError):
    """The monitor plane killed a worker whose job overran its deadline.

    Deliberately not a :class:`WorkerCrashed`: a deadline miss is the
    job's fault, so the broker fails it instead of retrying it into a
    second deadline miss (sibling jobs on the killed worker *do* surface
    as ``WorkerCrashed`` and retry normally)."""

    def __init__(self, worker_index: int, timeout_s: float):
        super().__init__(
            f"job exceeded its {timeout_s}s deadline on worker slot "
            f"{worker_index}; the monitor killed the worker"
        )
        self.worker_index = worker_index
        self.timeout_s = timeout_s

    def __reduce__(self):  # pragma: no cover - never crosses the pipe today
        return (JobDeadlineExceeded, (self.worker_index, self.timeout_s))


def affinity_key(shard: WorldShard, query: str, params: dict | None) -> str:
    """Stable identity of one job: shard key, world fingerprint, query text
    and canonical params.  Sticky affinity routing hashes it to pick a warm
    worker, and the write-ahead journal reuses it as the exactly-once
    idempotency key — same material, same digest, one notion of "the same
    job"."""
    material = "\x00".join((
        shard.key,
        shard.world.fingerprint(),
        query,
        json.dumps(params, sort_keys=True, default=str) if params else "",
    ))
    return hashlib.blake2b(material.encode("utf-8"), digest_size=16).hexdigest()


@dataclass(frozen=True)
class JobPayload:
    """Everything a worker process needs to run one job, picklable.

    The world travels as its :class:`WorldConfig` (generation is a pure
    function of the config), the registry as the entry-name subset of the
    default registry; both carry fingerprints the worker re-verifies after
    rebuilding.  The backend ships one payload *template* per worker per
    shard; per-job messages carry only ``(query, params)`` deltas.
    """

    query: str
    params: dict | None
    world_config: WorldConfig
    world_fingerprint: str
    registry_names: tuple[str, ...]
    registry_fingerprint: str
    incidents: tuple[LatencyIncident, ...] = ()
    llm_factory: object | None = None
    #: Stable identity of ``llm_factory``, precomputed broker-side so worker
    #: processes key their system cache without re-pickling it per job.
    llm_key: str = ""
    cache_entries: int = 0  # 0 disables the process-local artifact cache
    #: Dispatch-span :class:`~repro.obs.TraceContext` when the broker is
    #: tracing, ``None`` otherwise.  Deliberately outside ``_system_key``:
    #: trace identity must never fragment the worker's system cache.
    trace: object | None = None


# -- worker-process side ------------------------------------------------------

#: Process-local systems keyed by everything a system is a function of.  One
#: entry per (world config, registry, incidents, llm) combination the worker
#: has served — the expensive objects are built once per process, never per
#: job, which is what makes the process backend's steady state fast.
_WORKER_SYSTEMS: dict[tuple, ArachNet] = {}


def _system_key(payload: JobPayload) -> tuple:
    return (
        payload.world_config,
        payload.registry_fingerprint,
        payload.incidents,
        payload.llm_key,
        payload.cache_entries,
    )


def _worker_system(payload: JobPayload) -> ArachNet:
    key = _system_key(payload)
    system = _WORKER_SYSTEMS.get(key)
    if system is None:
        world = build_world(payload.world_config)
        if world.fingerprint() != payload.world_fingerprint:
            raise BackendError(
                f"worker rebuilt world {world.fingerprint()} from config but the "
                f"broker serves {payload.world_fingerprint}; the process backend "
                "requires worlds reproducible from their WorldConfig"
            )
        registry = default_registry().subset(names=list(payload.registry_names))
        if registry.fingerprint() != payload.registry_fingerprint:
            raise BackendError(
                "worker could not rebuild the shard registry from the default "
                "registry by name subset; use the thread backend for custom registries"
            )
        kwargs: dict = {
            "curate": False,
            "cache": (
                ArtifactCache(max_entries=payload.cache_entries)
                if payload.cache_entries
                else None
            ),
        }
        if payload.llm_factory is not None:
            kwargs["llm"] = payload.llm_factory()
        system = ArachNet.for_world(
            world, registry=registry, incidents=list(payload.incidents), **kwargs
        )
        _WORKER_SYSTEMS[key] = system
    return system


#: This process's (tracer, metrics) pair, keyed by pid so a forked child
#: never keeps recording into instruments it inherited from its parent.
_WORKER_OBS: dict[int, tuple] = {}


def _worker_obs() -> tuple:
    pid = os.getpid()
    obs = _WORKER_OBS.get(pid)
    if obs is None:
        _WORKER_OBS.clear()
        obs = (Tracer(label=f"worker-{pid}"), MetricsRegistry())
        _WORKER_OBS[pid] = obs
    return obs


def _process_execute(payload: JobPayload,
                     worker_index: int = 0) -> tuple[PipelineResult, dict]:
    """Runs in the worker process: answer the query, report cache economics.

    With a trace context on the payload the whole run is wrapped in a
    ``worker.execute`` span parented under the broker's dispatch span, and
    the reply meta additionally carries this process's drained span records
    and metric deltas — observability rides the reply pipes, no extra IPC.
    """
    system = _worker_system(payload)
    if payload.trace is not None:
        tracer, registry = _worker_obs()
        registry.counter("worker_jobs_total", {"slot": str(worker_index)}).inc()
        with tracer.span("worker.execute", parent=payload.trace, cat="worker",
                         slot=worker_index) as span:
            result = system.answer(payload.query, params=payload.params,
                                   tracer=tracer, trace_parent=span)
        extra = {"spans": tracer.drain(), "metrics": registry.drain_deltas()}
    else:
        result = system.answer(payload.query, params=payload.params)
        extra = {}
    cache_stats = system.cache.stats() if system.cache is not None else None
    return result, {"pid": os.getpid(), "cache": cache_stats, **extra}


def _apply_fault(fault, index: int) -> None:
    if fault is None:
        return
    if fault == "exit":
        os._exit(3)
    if isinstance(fault, dict):
        if fault.get("exit_on_worker") == index:
            os._exit(3)
        sleep_s = fault.get("sleep_s")
        if sleep_s:
            time.sleep(float(sleep_s))


def _encode_exception(exc: Exception) -> tuple:
    try:
        blob = pickle.dumps(exc)
    except Exception:
        blob = None
    return ("exc", blob, type(exc).__name__, str(exc))


def _decode_exception(message: tuple) -> Exception:
    _, blob, type_name, text = message
    if blob is not None:
        try:
            return pickle.loads(blob)
        except Exception:
            pass
    return BackendError(f"{type_name}: {text}")


def _run_one(index, templates, row, shm_min_bytes) -> tuple:
    job_id, shard_key, query, params = row[:4]
    trace = row[4] if len(row) > 4 else None
    try:
        if params:
            params = dict(params)
            _apply_fault(params.pop(FAULT_PARAM, None), index)
            params = params or None
        template = templates.get(shard_key)
        if template is None:
            raise BackendError(
                f"worker slot {index} never received a payload template for "
                f"shard {shard_key!r}"
            )
        payload = dataclasses.replace(template, query=query, params=params,
                                      trace=trace)
        result, meta = _process_execute(payload, worker_index=index)
        return (job_id, True, transport.encode(result, shm_min_bytes), meta)
    except Exception as exc:  # shipped back and re-raised broker-side
        return (job_id, False, _encode_exception(exc), None)


def _worker_main(index: int, requests, replies, shm_min_bytes: int,
                 close_fds: tuple[int, ...] = ()) -> None:
    """One worker process: drain batches, run pipelines, reply per batch.

    ``replies`` is this worker's *own* pipe connection — workers never
    share a reply channel, so a worker SIGKILLed mid-write cannot poison
    a lock its siblings need (see ``_collector_loop``).  ``close_fds``
    are the other slots' inherited reply write-ends (fork start method
    only): closing them here is what lets the broker-side reader see EOF
    — instead of blocking forever on a half-written message — when any
    single worker dies.
    """
    for fd in close_fds:
        try:
            os.close(fd)
        except OSError:  # pragma: no cover - already closed
            pass
    templates: dict[str, JobPayload] = {}
    while True:
        try:
            message = requests.get()
        except (EOFError, OSError):  # broker side vanished
            return
        kind = message[0]
        if kind == "stop":
            return
        if kind == "preload":
            for shard_key, template in message[1].items():
                templates[shard_key] = template
                try:
                    _worker_system(template)
                except Exception:
                    # A bad template fails loudly at first job, with the
                    # error attached to a ticket someone is waiting on.
                    pass
            replies.send(("preloaded", index, os.getpid()))
            continue
        if kind == "forget":
            template = templates.pop(message[1], None)
            if template is not None:
                _WORKER_SYSTEMS.pop(_system_key(template), None)
            continue
        _, new_templates, rows = message  # ("batch", {shard: template}, rows)
        templates.update(new_templates)
        out = [_run_one(index, templates, row, shm_min_bytes) for row in rows]
        replies.send(("done", index, out))


# -- broker side --------------------------------------------------------------


class ExecutionBackend:
    """The protocol the broker drives.  ``run`` is called concurrently from
    every worker thread; ``prepare`` is called once per registered world so
    misconfiguration fails at ``add_world`` time, not first-job time.

    ``run`` must deliver every produced :class:`StageTrace` to ``observer``
    (when given) — streamed live where the pipeline runs in-process, or
    replayed from the result where it ran elsewhere — so the provenance
    ledger sees partial traces even when a later stage fails in-process.
    """

    name = "base"
    #: Backends that overlap many jobs per claiming thread opt into the
    #: broker's batched claim path (``run_many`` with several items).
    supports_batch = False
    #: The broker rebinds these to its own tracer/registry at construction;
    #: the class defaults keep a standalone backend fully functional.
    tracer = NULL_TRACER
    metrics: MetricsRegistry | None = None
    #: Optional :class:`~repro.obs.FlightRecorder`; the process backend
    #: heartbeats it per worker reply and dumps a postmortem on respawns.
    flight = None

    def start(self) -> "ExecutionBackend":
        return self

    def shutdown(self, wait: bool = True) -> None:
        pass

    def prepare(self, shard: WorldShard) -> None:
        pass

    def forget(self, shard_key: str) -> None:
        """Drop any per-shard state (templates, affinity bindings)."""

    def run(
        self,
        shard: WorldShard,
        query: str,
        params: dict | None,
        observer=None,
        excluded_workers: tuple[int, ...] = (),
        trace=None,
    ) -> PipelineResult:
        raise NotImplementedError

    def run_many(
        self, items: list[tuple], excluded_workers: tuple[int, ...] = ()
    ) -> list:
        """Run ``(shard, query, params, observer[, trace])`` items; one
        outcome per item, a :class:`PipelineResult` or the exception it
        raised.  The optional fifth element is the dispatch-span
        :class:`~repro.obs.TraceContext` to parent execution spans under."""
        outcomes = []
        for item in items:
            shard, query, params, observer = item[:4]
            trace = item[4] if len(item) > 4 else None
            try:
                outcomes.append(
                    self.run(shard, query, params, observer=observer,
                             excluded_workers=excluded_workers, trace=trace)
                )
            except Exception as exc:
                outcomes.append(exc)
        return outcomes

    def stats(self) -> dict:
        return {"backend": self.name}


class ThreadPoolBackend(ExecutionBackend):
    """Run jobs in the claiming worker thread (the original serve behaviour)."""

    name = "thread"

    def run(
        self,
        shard: WorldShard,
        query: str,
        params: dict | None,
        observer=None,
        excluded_workers: tuple[int, ...] = (),
        trace=None,
    ) -> PipelineResult:
        return shard.system.answer(query, params=params, observer=observer,
                                   tracer=self.tracer, trace_parent=trace)


class _WorkerSlot:
    """Broker-side view of one worker process (an affinity slot).

    The slot survives its process: a crashed worker is respawned in place
    with a bumped ``generation``, which lazily invalidates affinity
    bindings and template-shipping state tied to the old process.  Each
    generation gets a fresh request queue and a fresh *private* reply
    pipe (``reply_r`` broker-side, ``reply_w`` shipped to the process).
    """

    __slots__ = ("index", "generation", "process", "request_q",
                 "reply_r", "reply_w", "templates_sent", "pending", "inflight")

    def __init__(self, index: int):
        self.index = index
        self.generation = 0
        self.process = None
        self.request_q = None
        self.reply_r = None
        self.reply_w = None
        self.templates_sent: set[str] = set()
        self.pending: deque = deque()  # (job_id, shard_key, query, params, trace)
        #: job_id -> monotonic dispatch timestamp; the monitor's deadline
        #: sweep reads the timestamps, everything else treats it as a set.
        self.inflight: dict[int, float] = {}

    def depth(self) -> int:
        return len(self.pending) + len(self.inflight)


class ProcessPoolBackend(ExecutionBackend):
    """Affinity-aware zero-copy execution plane over preforked processes.

    Explicit worker processes (not a :class:`multiprocessing.Pool`): each
    affinity slot owns a request queue, so the dispatcher controls *which*
    process a job lands on — the whole point of sticky routing.  A sender
    thread coalesces concurrent dispatches per slot into batched messages,
    a collector thread multiplexes every worker's *private* reply pipe
    (decoding shared-memory payloads, see :mod:`repro.serve.transport`),
    and a monitor thread respawns dead workers and fails their in-flight
    jobs with :class:`WorkerCrashed` so the broker can retry them
    elsewhere.

    Replies deliberately do not share a queue: a shared
    ``multiprocessing`` queue serializes writers through a cross-process
    semaphore, and a worker SIGKILLed inside ``put`` dies holding it —
    deadlocking every surviving worker's replies (found by the chaos
    suite).  One pipe per worker means one writer per lockless channel;
    sibling processes close their inherited copies of each other's write
    ends so a dead writer always surfaces as EOF, never as a forever-
    blocking read.
    """

    name = "process"
    supports_batch = True

    def __init__(
        self,
        num_workers: int = 4,
        llm_factory=None,
        cache_entries: int = 4096,
        start_method: str | None = None,
        affinity: bool = True,
        steal_threshold: int = 2,
        dispatch_batch: int = 8,
        shm_min_bytes: int = transport.DEFAULT_SHM_MIN_BYTES,
        job_timeout_s: float | None = None,
    ):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if dispatch_batch < 1:
            raise ValueError("dispatch_batch must be >= 1")
        if steal_threshold < 0:
            raise ValueError("steal_threshold must be >= 0")
        if job_timeout_s is not None and job_timeout_s <= 0:
            raise ValueError("job_timeout_s must be positive (or None)")
        self.job_timeout_s = job_timeout_s
        self.num_workers = num_workers
        self.affinity_enabled = affinity
        self.steal_threshold = steal_threshold
        self.dispatch_batch = dispatch_batch
        self.shm_min_bytes = shm_min_bytes
        self._llm_factory = llm_factory
        self._cache_entries = cache_entries
        self._start_method = start_method
        self._ctx = None
        self._method = None
        self._slots: list[_WorkerSlot] = []
        self._templates: dict[str, JobPayload] = {}
        self._affinity: OrderedDict[str, tuple[int, int, str]] = OrderedDict()
        self._futures: dict[int, Future] = {}
        self._job_ids = itertools.count(1)
        #: Reply pipes of dead worker generations, drained to EOF by the
        #: collector so raced-in results are released, never leaked.
        self._retired_pipes: list = []
        self._wake_r = None
        self._wake_w = None
        self._threads: list[threading.Thread] = []
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._stop = threading.Event()
        self._started = False
        self._stopped = False
        self._proc_cache_stats: dict[int, dict] = {}
        self._counts = {
            "hits": 0, "misses": 0, "steals": 0, "respawns": 0,
            "batches": 0, "dispatched": 0,
            "shm_results": 0, "shm_bytes": 0, "inline_results": 0,
            "deadline_kills": 0,
        }

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ProcessPoolBackend":
        if self._started:
            return self
        method = self._start_method
        if method is None:
            available = multiprocessing.get_all_start_methods()
            method = "fork" if "fork" in available else "spawn"
        self._ctx = multiprocessing.get_context(method)
        self._method = method
        self._wake_r, self._wake_w = self._ctx.Pipe(duplex=False)
        self._slots = [_WorkerSlot(i) for i in range(self.num_workers)]
        # Pipes first, forks second: each worker learns every sibling's
        # reply write-end so it can close its inherited copy (see
        # _worker_main's close_fds).
        for slot in self._slots:
            self._prepare_slot(slot)
        for slot in self._slots:
            self._launch(slot)
        # Prefork preload: every world registered before start is built in
        # every worker now, so first jobs land on warm state instead of
        # paying the world build inside a measured request.
        if self._templates:
            templates = dict(self._templates)
            for slot in self._slots:
                slot.templates_sent |= set(templates)
                slot.request_q.put(("preload", templates))
        self._threads = [
            threading.Thread(target=loop, name=f"arachnet-plane-{label}", daemon=True)
            for label, loop in (
                ("sender", self._sender_loop),
                ("collector", self._collector_loop),
                ("monitor", self._monitor_loop),
            )
        ]
        for thread in self._threads:
            thread.start()
        self._started = True
        return self

    def _prepare_slot(self, slot: _WorkerSlot) -> None:
        """Reset a slot for a fresh process (callers hold the lock after
        start).  Dispatch keeps working immediately: rows queued against the
        new request queue wait in its pipe until the process comes up.  The
        old generation's reply pipe is retired, not dropped — the collector
        drains it to EOF so results that raced the death are released."""
        slot.request_q = self._ctx.SimpleQueue()
        if slot.reply_r is not None:
            self._retired_pipes.append(slot.reply_r)
        slot.reply_r, slot.reply_w = self._ctx.Pipe(duplex=False)
        slot.templates_sent = set()
        slot.process = None

    def _launch(self, slot: _WorkerSlot) -> None:
        close_fds: tuple[int, ...] = ()
        if self._method == "fork":
            # The child inherits every sibling pipe open in this parent at
            # fork time; hand it the write-end fds to close so a sibling's
            # death reads as EOF broker-side.
            close_fds = tuple(
                s.reply_w.fileno() for s in self._slots
                if s is not slot and s.reply_w is not None
            )
        process = self._ctx.Process(
            target=_worker_main,
            args=(slot.index, slot.request_q, slot.reply_w, self.shm_min_bytes,
                  close_fds),
            name=f"arachnet-worker-{slot.index}",
            daemon=True,
        )
        process.start()
        slot.process = process
        # The worker owns the write end now; holding our copy open would
        # mask its death from the reader.
        slot.reply_w.close()
        slot.reply_w = None

    def shutdown(self, wait: bool = True) -> None:
        with self._lock:
            if self._stopped or not self._started:
                self._stopped = True
                return
            self._stopped = True
            self._stop.set()
            self._work.notify_all()
        sender, collector, monitor = self._threads
        sender.join(timeout=5)
        for slot in self._slots:
            slot.request_q.put(("stop",))
        if not wait:
            # Abandoning shutdown: nothing will run or collect the
            # outstanding work, so fail its futures now rather than leave
            # callers blocked on events that can never fire.
            with self._lock:
                futures, self._futures = self._futures, {}
            for future in futures.values():
                future.set_exception(BackendError("process backend shut down"))
            self._wake_collector()
            return
        for slot in self._slots:
            if slot.process is None:  # pragma: no cover - raced a respawn
                continue
            slot.process.join(timeout=15)
            if slot.process.is_alive():  # pragma: no cover - stuck pipeline
                slot.process.terminate()
                slot.process.join(timeout=5)
        monitor.join(timeout=5)
        self._wake_collector()
        collector.join(timeout=15)
        # Fail anything still outstanding so no claimer thread hangs forever.
        with self._lock:
            futures, self._futures = self._futures, {}
        for future in futures.values():
            future.set_exception(BackendError("process backend shut down"))

    def kill_worker(self, index: int) -> None:
        """Fault injection for tests: hard-kill one worker process."""
        self._slots[index].process.kill()

    # -- shard registration ------------------------------------------------

    def prepare(self, shard: WorldShard) -> None:
        self._templates[shard.key] = self._template_for(shard)

    def forget(self, shard_key: str) -> None:
        with self._lock:
            self._templates.pop(shard_key, None)
            stale = [k for k, (_, _, owner) in self._affinity.items()
                     if owner == shard_key]
            for key in stale:
                del self._affinity[key]
            slots = [
                slot for slot in self._slots
                if slot.request_q is not None and shard_key in slot.templates_sent
            ]
            for slot in slots:
                slot.templates_sent.discard(shard_key)
        for slot in slots:
            slot.request_q.put(("forget", shard_key))

    # -- dispatch ----------------------------------------------------------

    def _affinity_key(self, shard: WorldShard, query: str,
                      params: dict | None) -> str:
        return affinity_key(shard, query, params)

    def _choose_slot(self, key: str | None, shard_key: str,
                     excluded: tuple[int, ...]) -> _WorkerSlot:
        """Sticky slot for ``key``, stolen by an idle slot when the bound
        one is backlogged; least-loaded assignment on first sight."""
        eligible = [s for s in self._slots if s.index not in excluded]
        if not eligible:  # excluding every slot would deadlock the retry
            eligible = self._slots
        if key is not None:
            bound = self._affinity.get(key)
            if bound is not None:
                index, generation, _ = bound
                slot = self._slots[index]
                if slot.generation == generation and index not in excluded:
                    idle = [s for s in eligible
                            if s.index != index and s.depth() == 0]
                    if slot.depth() > self.steal_threshold and idle:
                        thief = idle[0]
                        self._counts["steals"] += 1
                        self._affinity[key] = (thief.index, thief.generation,
                                               shard_key)
                        self._affinity.move_to_end(key)
                        return thief
                    self._counts["hits"] += 1
                    self._affinity.move_to_end(key)
                    return slot
        self._counts["misses"] += 1
        slot = min(eligible, key=lambda s: (s.depth(), s.index))
        if key is not None:
            self._affinity[key] = (slot.index, slot.generation, shard_key)
            self._affinity.move_to_end(key)
            while len(self._affinity) > AFFINITY_MAP_BOUND:
                self._affinity.popitem(last=False)
        return slot

    def _dispatch(self, shard: WorldShard, query: str, params: dict | None,
                  excluded: tuple[int, ...] = (), trace=None) -> Future:
        if not self._started or self._stopped:
            raise BackendError("process backend is not started")
        if shard.key not in self._templates:
            self._templates[shard.key] = self._template_for(shard)
        key = (
            self._affinity_key(shard, query, params)
            if self.affinity_enabled else None
        )
        future = Future()
        with self._lock:
            slot = self._choose_slot(key, shard.key, excluded)
            job_id = next(self._job_ids)
            self._futures[job_id] = future
            slot.pending.append((job_id, shard.key, query, params, trace))
            self._counts["dispatched"] += 1
            self._work.notify_all()
        return future

    def run(
        self,
        shard: WorldShard,
        query: str,
        params: dict | None,
        observer=None,
        excluded_workers: tuple[int, ...] = (),
        trace=None,
    ) -> PipelineResult:
        result = self._dispatch(shard, query, params, excluded_workers,
                                trace=trace).result()
        self._replay(result, observer)
        return result

    def run_many(
        self, items: list[tuple], excluded_workers: tuple[int, ...] = ()
    ) -> list:
        """Dispatch the whole batch before waiting on any of it — one
        claiming thread keeps every worker process busy, and same-slot
        items coalesce into single queue messages."""
        futures = [
            self._dispatch(item[0], item[1], item[2], excluded_workers,
                           trace=(item[4] if len(item) > 4 else None))
            for item in items
        ]
        outcomes = []
        for future, item in zip(futures, items):
            observer = item[3]
            try:
                result = future.result()
                self._replay(result, observer)
                outcomes.append(result)
            except Exception as exc:
                outcomes.append(exc)
        return outcomes

    @staticmethod
    def _replay(result: PipelineResult, observer) -> None:
        if observer is not None:
            # Traces travelled back inside the result; replay them.  (A job
            # that raised worker-side surfaces as an exception — its partial
            # trace does not cross the process boundary.)
            for trace in result.stage_trace:
                observer(trace)

    # -- plane threads -----------------------------------------------------

    def _sender_loop(self) -> None:
        while True:
            sends = []
            with self._work:
                while not self._stop.is_set() and not any(
                    slot.pending for slot in self._slots
                ):
                    self._work.wait(0.1)
                if self._stop.is_set():
                    return
                for slot in self._slots:
                    if not slot.pending:
                        continue
                    rows = [
                        slot.pending.popleft()
                        for _ in range(min(len(slot.pending), self.dispatch_batch))
                    ]
                    needed = {row[1] for row in rows} - slot.templates_sent
                    templates = {k: self._templates[k] for k in needed
                                 if k in self._templates}
                    # Record only what actually ships: a template missing
                    # here (shard forgotten mid-dispatch) must not poison
                    # the slot for a later re-registration of the shard.
                    slot.templates_sent |= set(templates)
                    now = time.monotonic()
                    for row in rows:
                        slot.inflight[row[0]] = now
                    self._counts["batches"] += 1
                    sends.append((slot.request_q, ("batch", templates, rows)))
            for queue, message in sends:
                queue.put(message)

    def _wake_collector(self) -> None:
        try:
            self._wake_w.send_bytes(b"w")
        except (OSError, ValueError):  # pragma: no cover - already closing
            pass

    def _collector_loop(self) -> None:
        """Multiplex every worker's private reply pipe.

        A reader per writer means no cross-process reply lock exists to be
        poisoned by a SIGKILL; a worker that dies mid-write surfaces as
        EOF (its fd has no other holders) and its in-flight jobs are the
        monitor's to fail.  Retired pipes — prior generations of respawned
        slots — are drained to EOF so results that raced the death are
        released rather than leaking their shared-memory segments.
        """
        while True:
            with self._lock:
                # Purge pipes closed by a drain that raced slot retirement;
                # waiting on a closed fd would raise forever.
                self._retired_pipes = [
                    c for c in self._retired_pipes if not c.closed
                ]
                readers = {
                    slot.reply_r: False  # conn -> is_retired
                    for slot in self._slots
                    if slot.reply_r is not None and not slot.reply_r.closed
                }
                for conn in self._retired_pipes:
                    readers[conn] = True
            try:
                ready = connection.wait(
                    list(readers) + [self._wake_r], timeout=0.2
                )
            except (OSError, ValueError):  # a pipe retired mid-wait
                continue
            stop = False
            for conn in ready:
                if conn is self._wake_r:
                    try:
                        self._wake_r.recv_bytes()
                    except (EOFError, OSError):  # pragma: no cover
                        pass
                    stop = self._stop.is_set()
                    continue
                self._drain_pipe(conn, retired=readers[conn])
            if stop:
                # Final sweep: every worker has exited (or been killed);
                # their pipes hold only complete messages then EOF.
                with self._lock:
                    leftovers = ([s.reply_r for s in self._slots
                                  if s.reply_r is not None]
                                 + list(self._retired_pipes))
                for conn in leftovers:
                    self._drain_pipe(conn, retired=True)
                return

    def _drain_pipe(self, conn, retired: bool) -> None:
        """Consume every complete message on one reply pipe, closing it on
        EOF.  A live slot's pipe is detached from its slot when it EOFs —
        drained empty, it can carry nothing more, and leaving it in the
        wait set would spin the collector hot until the monitor respawns
        the slot (which, during shutdown, it never does)."""
        while True:
            try:
                if not conn.poll():
                    return
                message = conn.recv()
            except (EOFError, OSError):
                try:
                    conn.close()
                except OSError:  # pragma: no cover
                    pass
                with self._lock:
                    if retired:
                        if conn in self._retired_pipes:
                            self._retired_pipes.remove(conn)
                    else:
                        for slot in self._slots:
                            if slot.reply_r is conn:
                                # The monitor's _prepare_slot skips the
                                # retire step for a None pipe and builds a
                                # fresh one for the respawn.
                                slot.reply_r = None
                return
            self._handle_reply(message)

    def _handle_reply(self, message: tuple) -> None:
        kind = message[0]
        if kind == "preloaded":
            with self._lock:
                self._proc_cache_stats.setdefault(message[2], None)
            return
        _, index, rows = message  # ("done", slot index, result rows)
        slot = self._slots[index]
        for job_id, ok, blob, meta in rows:
            if meta is not None and self.flight is not None:
                # Reply metadata doubles as the worker's liveness signal.
                self.flight.heartbeat(f"worker-{index}", pid=meta["pid"])
            if meta is not None:
                # Absorb worker-side observability before the future resolves,
                # so a caller that wakes on the result already sees its spans.
                spans = meta.get("spans")
                if spans:
                    self.tracer.ingest(spans)
                deltas = meta.get("metrics")
                if deltas and self.metrics is not None:
                    self.metrics.absorb(deltas)
            with self._lock:
                slot.inflight.pop(job_id, None)
                future = self._futures.pop(job_id, None)
                if meta is not None:
                    self._proc_cache_stats[meta["pid"]] = meta["cache"]
                if ok:
                    if blob[0] == "shm":
                        self._counts["shm_results"] += 1
                        self._counts["shm_bytes"] += (
                            blob[2] + sum(blob[3])
                        )
                    else:
                        self._counts["inline_results"] += 1
            if future is None:
                if ok:  # nobody will decode it; reclaim the segment
                    transport.release(blob)
                continue
            if ok:
                try:
                    future.set_result(transport.decode(blob))
                except Exception as exc:  # pragma: no cover - defensive
                    future.set_exception(BackendError(
                        f"failed to decode worker result: {exc}"
                    ))
            else:
                future.set_exception(_decode_exception(blob))

    def _enforce_deadlines(self) -> None:
        """The monitor plane's per-job deadline sweep.

        A job older than ``job_timeout_s`` on a worker has its future
        failed with :class:`JobDeadlineExceeded` and its worker process
        killed — preforked workers run arbitrary generated code, so the
        only reliable preemption is taking the process down and letting
        the respawn path rebuild the slot.  Sibling in-flight jobs on the
        same worker die as ordinary :class:`WorkerCrashed` retries.
        """
        now = time.monotonic()
        victims: list[tuple[_WorkerSlot, list[int]]] = []
        with self._lock:
            for slot in self._slots:
                if slot.process is None or not slot.inflight:
                    continue
                overdue = [job_id for job_id, sent in slot.inflight.items()
                           if now - sent > self.job_timeout_s]
                if overdue:
                    victims.append((slot, overdue))
        for slot, overdue in victims:
            futures = []
            with self._lock:
                if slot.process is None or not slot.process.is_alive():
                    continue  # already died; the sentinel path owns cleanup
                for job_id in overdue:
                    future = self._futures.pop(job_id, None)
                    slot.inflight.pop(job_id, None)
                    if future is not None:
                        futures.append(future)
                self._counts["deadline_kills"] += 1
                process = slot.process
            for future in futures:
                future.set_exception(
                    JobDeadlineExceeded(slot.index, self.job_timeout_s))
            if self.flight is not None:
                self.flight.record("job_deadline_exceeded", {
                    "slot": slot.index,
                    "jobs": len(futures),
                    "timeout_s": self.job_timeout_s,
                })
            process.kill()  # the sentinel wait below respawns the slot

    def _monitor_loop(self) -> None:
        while not self._stop.is_set():
            if self.job_timeout_s is not None:
                self._enforce_deadlines()
            with self._lock:
                # Every spawned process, alive or not: a worker that died
                # between two wait windows has a ready sentinel and MUST
                # still be handled, or its in-flight jobs hang forever.
                sentinels = {
                    slot.process.sentinel: slot
                    for slot in self._slots
                    if slot.process is not None
                }
            if not sentinels:
                if self._stop.wait(0.1):
                    return
                continue
            ready = connection.wait(list(sentinels), timeout=0.2)
            for sentinel in ready:
                slot = sentinels[sentinel]
                crashed: list[Future] = []
                with self._lock:
                    if (self._stopped or slot.process is None
                            or slot.process.sentinel != sentinel):
                        continue
                    if slot.process.is_alive():  # pragma: no cover - raced
                        continue
                    # In-flight jobs died with the process; pending (unsent)
                    # rows survive in the slot and reach the replacement.
                    for job_id in sorted(slot.inflight):
                        future = self._futures.pop(job_id, None)
                        if future is not None:
                            crashed.append(future)
                    slot.inflight.clear()
                    slot.generation += 1
                    self._counts["respawns"] += 1
                    self._prepare_slot(slot)
                    self._work.notify_all()
                # Fork outside the lock so process creation never stalls
                # dispatch/collection.  Forking here, after threads exist,
                # mirrors multiprocessing.Pool's own worker repopulation:
                # safe because the child only touches the fresh request
                # queue and its own private reply pipe (plus the close_fds
                # hand-off in _launch), never broker-side thread state.
                self._launch(slot)
                if self.flight is not None:
                    # The black box's SIGKILL path: record + dump while the
                    # dead generation's last spans are still in the ring.
                    # No deadlock: the dump's stat sources take self._lock,
                    # which is not held here.
                    detail = {
                        "slot": slot.index,
                        "generation": slot.generation,
                        "inflight_failed": len(crashed),
                    }
                    self.flight.record("worker_respawn", detail)
                    self.flight.dump("worker_respawn", extra=detail)
                for future in crashed:
                    future.set_exception(WorkerCrashed(slot.index))

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict:
        """Affinity economics, dispatch batching, transport mix, and
        aggregated per-process artifact-cache stats (last seen per pid)."""
        with self._lock:
            counts = dict(self._counts)
            snapshots = [s for s in self._proc_cache_stats.values() if s]
            processes = len(self._proc_cache_stats)
            bindings = len(self._affinity)
        merged = None
        if snapshots:
            merged = {
                "entries": sum(s["entries"] for s in snapshots),
                "hits": sum(s["hits"] for s in snapshots),
                "misses": sum(s["misses"] for s in snapshots),
                "evictions": sum(s["evictions"] for s in snapshots),
            }
            total = merged["hits"] + merged["misses"]
            merged["hit_rate"] = merged["hits"] / total if total else 0.0
        routed = counts["hits"] + counts["misses"] + counts["steals"]
        return {
            "backend": self.name,
            "workers": self.num_workers,
            "processes": processes,
            "cache": merged,
            "affinity": {
                "enabled": self.affinity_enabled,
                "hits": counts["hits"],
                "misses": counts["misses"],
                "steals": counts["steals"],
                "hit_rate": counts["hits"] / routed if routed else 0.0,
                "bindings": bindings,
                "respawns": counts["respawns"],
            },
            "dispatch": {
                "jobs": counts["dispatched"],
                "batches": counts["batches"],
                "mean_batch": (
                    counts["dispatched"] / counts["batches"]
                    if counts["batches"] else 0.0
                ),
                "shm_results": counts["shm_results"],
                "shm_bytes": counts["shm_bytes"],
                "inline_results": counts["inline_results"],
            },
            "deadline": {
                "timeout_s": self.job_timeout_s,
                "kills": counts["deadline_kills"],
            },
        }

    def _template_for(self, shard: WorldShard) -> JobPayload:
        """Validate the shard is shippable and build its payload template."""
        system = shard.system
        if system.curate:
            raise BackendError(
                "process backend does not support curation (registry evolution "
                "would be process-local and diverge); use the thread backend"
            )
        registry = system.registry
        names = tuple(registry.names())
        if default_registry().subset(names=list(names)).fingerprint() != registry.fingerprint():
            raise BackendError(
                "process backend requires a registry derivable from the default "
                "registry by name subset; use the thread backend for custom entries"
            )
        try:
            llm_blob = pickle.dumps(self._llm_factory)
        except Exception as exc:
            raise BackendError(
                "llm_factory must be picklable for the process backend — use "
                f"functools.partial over a module-level class, not a lambda ({exc})"
            ) from None
        world = shard.world
        return JobPayload(
            query="",
            params=None,
            world_config=world.config,
            world_fingerprint=world.fingerprint(),
            registry_names=names,
            registry_fingerprint=registry.fingerprint(),
            incidents=tuple(system.context.incidents),
            llm_factory=self._llm_factory,
            llm_key=hashlib.sha256(llm_blob).hexdigest()[:16],
            cache_entries=self._cache_entries,
        )


def build_backend(
    name: str,
    num_workers: int = 4,
    llm_factory=None,
    cache_entries: int = 4096,
    affinity: bool = True,
    steal_threshold: int = 2,
    dispatch_batch: int = 8,
    shm_min_bytes: int = transport.DEFAULT_SHM_MIN_BYTES,
    job_timeout_s: float | None = None,
) -> ExecutionBackend:
    """Backend factory for :class:`ServeConfig.backend` names.

    ``job_timeout_s`` only binds on the process backend — the thread
    backend runs jobs on the claiming thread, which Python cannot preempt.
    """
    if name == "thread":
        return ThreadPoolBackend()
    if name == "process":
        return ProcessPoolBackend(
            num_workers=num_workers,
            llm_factory=llm_factory,
            cache_entries=cache_entries,
            affinity=affinity,
            steal_threshold=steal_threshold,
            dispatch_batch=dispatch_batch,
            shm_min_bytes=shm_min_bytes,
            job_timeout_s=job_timeout_s,
        )
    raise BackendError(f"unknown backend {name!r}; expected one of {BACKEND_NAMES}")
