"""Pluggable execution backends: where a served job's pipeline actually runs.

The broker's worker threads drain the scheduler either way; the backend
decides what happens to a claimed job:

* :class:`ThreadPoolBackend` — run the pipeline in the claiming thread
  against the shard's shared in-process system.  Right when hosted-LLM
  round-trip latency dominates: threads overlap the waits, artifacts stay
  in shared memory, and the broker-wide :class:`ArtifactCache` is shared.
* :class:`ProcessPoolBackend` — ship a picklable :class:`JobPayload`
  (query + :class:`WorldConfig` + registry fingerprint) to a preforked
  worker process.  Right when generated-code execution is CPU-bound: each
  process escapes the GIL, holds a process-local world/system cache keyed
  by configuration (worlds are pure functions of their config, so they are
  rebuilt once per process, never per job) and a process-local artifact
  cache, and returns the finished :class:`PipelineResult` plus its cache
  economics for the broker to aggregate.

Both backends produce byte-identical artifacts for the same job: the
pipeline is deterministic in (query, params, world config, registry), which
the payload carries in full — fingerprints are verified worker-side so a
hand-mutated world or unrebuildable registry fails loudly instead of
silently serving answers about a different Internet.
"""

from __future__ import annotations

import dataclasses
import hashlib
import multiprocessing
import os
import pickle
import threading
from dataclasses import dataclass

from repro.core.artifacts import PipelineResult
from repro.core.pipeline import ArachNet
from repro.core.registry import default_registry
from repro.serve.cache import ArtifactCache
from repro.serve.scheduler import WorldShard
from repro.synth.scenarios import LatencyIncident
from repro.synth.world import WorldConfig, build_world

BACKEND_NAMES = ("thread", "process")


class BackendError(RuntimeError):
    """Unknown backend names, unpicklable payload parts, or non-rebuildable
    shard state the process backend cannot ship across the fork."""


@dataclass(frozen=True)
class JobPayload:
    """Everything a worker process needs to run one job, picklable.

    The world travels as its :class:`WorldConfig` (generation is a pure
    function of the config), the registry as the entry-name subset of the
    default registry; both carry fingerprints the worker re-verifies after
    rebuilding.
    """

    query: str
    params: dict | None
    world_config: WorldConfig
    world_fingerprint: str
    registry_names: tuple[str, ...]
    registry_fingerprint: str
    incidents: tuple[LatencyIncident, ...] = ()
    llm_factory: object | None = None
    #: Stable identity of ``llm_factory``, precomputed broker-side so worker
    #: processes key their system cache without re-pickling it per job.
    llm_key: str = ""
    cache_entries: int = 0  # 0 disables the process-local artifact cache


# -- worker-process side ------------------------------------------------------

#: Process-local systems keyed by everything a system is a function of.  One
#: entry per (world config, registry, incidents, llm) combination the worker
#: has served — the expensive objects are built once per process, never per
#: job, which is what makes the process backend's steady state fast.
_WORKER_SYSTEMS: dict[tuple, ArachNet] = {}


def _worker_system(payload: JobPayload) -> ArachNet:
    key = (
        payload.world_config,
        payload.registry_fingerprint,
        payload.incidents,
        payload.llm_key,
        payload.cache_entries,
    )
    system = _WORKER_SYSTEMS.get(key)
    if system is None:
        world = build_world(payload.world_config)
        if world.fingerprint() != payload.world_fingerprint:
            raise BackendError(
                f"worker rebuilt world {world.fingerprint()} from config but the "
                f"broker serves {payload.world_fingerprint}; the process backend "
                "requires worlds reproducible from their WorldConfig"
            )
        registry = default_registry().subset(names=list(payload.registry_names))
        if registry.fingerprint() != payload.registry_fingerprint:
            raise BackendError(
                "worker could not rebuild the shard registry from the default "
                "registry by name subset; use the thread backend for custom registries"
            )
        kwargs: dict = {
            "curate": False,
            "cache": (
                ArtifactCache(max_entries=payload.cache_entries)
                if payload.cache_entries
                else None
            ),
        }
        if payload.llm_factory is not None:
            kwargs["llm"] = payload.llm_factory()
        system = ArachNet.for_world(
            world, registry=registry, incidents=list(payload.incidents), **kwargs
        )
        _WORKER_SYSTEMS[key] = system
    return system


def _process_execute(payload: JobPayload) -> tuple[PipelineResult, dict]:
    """Runs in the worker process: answer the query, report cache economics."""
    system = _worker_system(payload)
    result = system.answer(payload.query, params=payload.params)
    cache_stats = system.cache.stats() if system.cache is not None else None
    return result, {"pid": os.getpid(), "cache": cache_stats}


# -- broker side --------------------------------------------------------------


class ExecutionBackend:
    """The protocol the broker drives.  ``run`` is called concurrently from
    every worker thread; ``prepare`` is called once per registered world so
    misconfiguration fails at ``add_world`` time, not first-job time.

    ``run`` must deliver every produced :class:`StageTrace` to ``observer``
    (when given) — streamed live where the pipeline runs in-process, or
    replayed from the result where it ran elsewhere — so the provenance
    ledger sees partial traces even when a later stage fails in-process.
    """

    name = "base"

    def start(self) -> "ExecutionBackend":
        return self

    def shutdown(self, wait: bool = True) -> None:
        pass

    def prepare(self, shard: WorldShard) -> None:
        pass

    def run(
        self, shard: WorldShard, query: str, params: dict | None, observer=None
    ) -> PipelineResult:
        raise NotImplementedError

    def stats(self) -> dict:
        return {"backend": self.name}


class ThreadPoolBackend(ExecutionBackend):
    """Run jobs in the claiming worker thread (the original serve behaviour)."""

    name = "thread"

    def run(
        self, shard: WorldShard, query: str, params: dict | None, observer=None
    ) -> PipelineResult:
        return shard.system.answer(query, params=params, observer=observer)


class ProcessPoolBackend(ExecutionBackend):
    """Ship jobs to a preforked pool of worker processes.

    The pool is created in :meth:`start` — which the broker calls *before*
    its worker threads exist, so forking is safe — and each broker thread
    then blocks on ``apply`` while its job runs out-of-process, keeping the
    scheduler/ledger/retention logic identical across backends.
    """

    name = "process"

    def __init__(
        self,
        num_workers: int = 4,
        llm_factory=None,
        cache_entries: int = 4096,
        start_method: str | None = None,
    ):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = num_workers
        self._llm_factory = llm_factory
        self._cache_entries = cache_entries
        self._start_method = start_method
        self._pool = None
        self._payloads: dict[str, JobPayload] = {}
        self._proc_cache_stats: dict[int, dict] = {}
        self._lock = threading.Lock()

    def start(self) -> "ProcessPoolBackend":
        if self._pool is None:
            method = self._start_method
            if method is None:
                available = multiprocessing.get_all_start_methods()
                method = "fork" if "fork" in available else "spawn"
            ctx = multiprocessing.get_context(method)
            self._pool = ctx.Pool(processes=self.num_workers)
        return self

    def shutdown(self, wait: bool = True) -> None:
        pool, self._pool = self._pool, None
        if pool is None:
            return
        # Always close, never terminate: broker threads may still be blocked
        # in apply(), and in-flight jobs are guaranteed to run to completion.
        # ``wait=False`` skips the join — the pool drains those applies and
        # its processes exit on their own.
        pool.close()
        if wait:
            pool.join()

    def prepare(self, shard: WorldShard) -> None:
        self._payloads[shard.key] = self._template_for(shard)

    def run(
        self, shard: WorldShard, query: str, params: dict | None, observer=None
    ) -> PipelineResult:
        if self._pool is None:
            raise BackendError("process backend is not started")
        template = self._payloads.get(shard.key)
        if template is None:
            template = self._template_for(shard)
            self._payloads[shard.key] = template
        payload = dataclasses.replace(template, query=query, params=params)
        result, meta = self._pool.apply(_process_execute, (payload,))
        with self._lock:
            self._proc_cache_stats[meta["pid"]] = meta["cache"]
        if observer is not None:
            # Traces travelled back inside the result; replay them.  (A job
            # that raised worker-side surfaces as an exception from apply —
            # its partial trace does not cross the process boundary.)
            for trace in result.stage_trace:
                observer(trace)
        return result

    def stats(self) -> dict:
        """Aggregate per-process artifact-cache economics (last seen per pid)."""
        with self._lock:
            snapshots = [s for s in self._proc_cache_stats.values() if s]
            processes = len(self._proc_cache_stats)
        merged = None
        if snapshots:
            merged = {
                "entries": sum(s["entries"] for s in snapshots),
                "hits": sum(s["hits"] for s in snapshots),
                "misses": sum(s["misses"] for s in snapshots),
                "evictions": sum(s["evictions"] for s in snapshots),
            }
            total = merged["hits"] + merged["misses"]
            merged["hit_rate"] = merged["hits"] / total if total else 0.0
        return {
            "backend": self.name,
            "workers": self.num_workers,
            "processes": processes,
            "cache": merged,
        }

    def _template_for(self, shard: WorldShard) -> JobPayload:
        """Validate the shard is shippable and build its payload template."""
        system = shard.system
        if system.curate:
            raise BackendError(
                "process backend does not support curation (registry evolution "
                "would be process-local and diverge); use the thread backend"
            )
        registry = system.registry
        names = tuple(registry.names())
        if default_registry().subset(names=list(names)).fingerprint() != registry.fingerprint():
            raise BackendError(
                "process backend requires a registry derivable from the default "
                "registry by name subset; use the thread backend for custom entries"
            )
        try:
            llm_blob = pickle.dumps(self._llm_factory)
        except Exception as exc:
            raise BackendError(
                "llm_factory must be picklable for the process backend — use "
                f"functools.partial over a module-level class, not a lambda ({exc})"
            ) from None
        world = shard.world
        return JobPayload(
            query="",
            params=None,
            world_config=world.config,
            world_fingerprint=world.fingerprint(),
            registry_names=names,
            registry_fingerprint=registry.fingerprint(),
            incidents=tuple(system.context.incidents),
            llm_factory=self._llm_factory,
            llm_key=hashlib.sha256(llm_blob).hexdigest()[:16],
            cache_entries=self._cache_entries,
        )


def build_backend(
    name: str,
    num_workers: int = 4,
    llm_factory=None,
    cache_entries: int = 4096,
) -> ExecutionBackend:
    """Backend factory for :class:`ServeConfig.backend` names."""
    if name == "thread":
        return ThreadPoolBackend()
    if name == "process":
        return ProcessPoolBackend(
            num_workers=num_workers,
            llm_factory=llm_factory,
            cache_entries=cache_entries,
        )
    raise BackendError(f"unknown backend {name!r}; expected one of {BACKEND_NAMES}")
