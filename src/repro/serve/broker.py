"""QueryBroker: the serve subsystem's front door.

Submissions become tickets; a ticket's job moves queued → running →
done/failed while the caller polls ``status`` or blocks on ``wait``.  The
broker owns the moving parts — one :class:`PriorityScheduler`, one
:class:`WorkerPool`, one shared :class:`ArtifactCache`, one
:class:`ProvenanceLedger`, and a :class:`WorldShard` per registered world
— so callers only ever talk tickets and results.
"""

from __future__ import annotations

import dataclasses
import threading
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable

from repro.core.artifacts import PipelineResult
from repro.core.registry import Registry
from repro.obs import FlightRecorder, MetricsRegistry, Tracer, resolve_tracer
from repro.serve.backends import WorkerCrashed, build_backend
from repro.serve.cache import ArtifactCache
from repro.serve.provenance import ProvenanceLedger
from repro.serve.scheduler import PriorityScheduler, SchedulerClosed, WorldShard
from repro.serve.workers import WorkerPool
from repro.synth.world import SyntheticWorld

DEFAULT_WORLD_KEY = "default"


class JobState(str, Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


@dataclass
class ServeConfig:
    """Tunables for one broker instance."""

    workers: int = 4
    #: Where job pipelines execute: ``"thread"`` runs them in the claiming
    #: worker thread (best when LLM latency dominates — threads overlap it);
    #: ``"process"`` ships picklable payloads to a preforked process pool
    #: (best when generated-code execution is CPU-bound and the GIL is the
    #: bottleneck).  See :mod:`repro.serve.backends`.
    backend: str = "thread"
    cache_enabled: bool = True
    max_cache_entries: int = 4096
    #: Sticky affinity routing for the process backend: resubmissions of a
    #: (world, query) pair land on the worker process whose caches already
    #: hold it warm.  Disable to spread purely by load.
    affinity: bool = True
    #: Queue depth on a job's bound worker beyond which an idle worker
    #: steals the job (and its affinity binding) instead of waiting.
    steal_threshold: int = 2
    #: Jobs a claimer thread batches into one backend dispatch (process
    #: backend only; the thread backend runs one job per claimer).
    dispatch_batch: int = 8
    #: Results at or above this many pickled bytes move through
    #: multiprocessing.shared_memory instead of the reply pipe.
    shm_min_bytes: int = 64 * 1024
    curate: bool = False  # registry evolution is opt-in while serving
    #: Finished jobs (and their ledger entries) beyond this bound are pruned
    #: oldest-first so a long-running broker cannot grow without limit.
    #: Size it above the largest campaign whose tickets are awaited at once.
    max_retained_jobs: int = 10_000
    #: Builds one LLM backend per shard; ``None`` keeps each system's default
    #: (the deterministic :class:`SimulatedLLM`).  With ``backend="process"``
    #: it must be picklable (e.g. ``functools.partial`` over a module-level
    #: class), since worker processes build their own instance.
    llm_factory: Callable[[], object] | None = None
    #: Record spans for every job (submit → queue wait → dispatch → worker
    #: stages).  Off by default: the disabled path is a shared
    #: :class:`~repro.obs.NullTracer` and costs nothing measurable.
    tracing: bool = False
    #: Run a :class:`~repro.obs.FlightRecorder` black box: crashes, retries
    #: and SIGKILL respawns dump an atomic JSON postmortem with the recent
    #: span/event ring, a registry snapshot, and this config.
    flight: bool = False
    #: Where flight dumps land; defaults to the current directory.  The live
    #: driver points it at ``--cache-dir`` so postmortems sit next to the
    #: artifact cache.
    flight_dir: str | None = None


@dataclass
class Job:
    """One submitted query and everything known about its progress."""

    ticket: str
    query: str
    params: dict | None
    priority: int
    world_key: str
    state: JobState = JobState.QUEUED
    result: PipelineResult | None = None
    error: str = ""
    done: threading.Event = field(default_factory=threading.Event, repr=False)
    trace_id: str = ""
    #: The job's root span and its queue-wait child, open from submit until
    #: settle.  ``None`` whenever tracing is off.
    root_span: object = field(default=None, repr=False, compare=False)
    queue_span: object = field(default=None, repr=False, compare=False)

    def to_dict(self) -> dict:
        return {
            "ticket": self.ticket,
            "query": self.query,
            "priority": self.priority,
            "world_key": self.world_key,
            "state": self.state.value,
            "error": self.error,
            "trace_id": self.trace_id,
        }


class BrokerError(RuntimeError):
    """Unknown tickets, bad world keys, or use after shutdown."""


class QueryBroker:
    """Accepts measurement queries and serves them concurrently.

    Usable as a context manager::

        with QueryBroker(world) as broker:
            ticket = broker.submit("Identify the impact ... SeaMeWe-5 ...")
            result = broker.result(broker.wait(ticket).ticket)
    """

    def __init__(
        self,
        world: SyntheticWorld | None = None,
        registry: Registry | None = None,
        incidents: list | None = None,
        config: ServeConfig | None = None,
        tracer=None,
        metrics: MetricsRegistry | None = None,
        flight: FlightRecorder | None = None,
    ):
        self.config = config or ServeConfig()
        if tracer is not None:
            self.tracer = tracer
        elif self.config.tracing:
            self.tracer = Tracer(label="broker")
        else:
            self.tracer = resolve_tracer(None)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        if flight is not None:
            self.flight = flight
        elif self.config.flight:
            self.flight = FlightRecorder(
                dump_dir=self.config.flight_dir or ".",
                registry=self.metrics,
                config={f.name: getattr(self.config, f.name)
                        for f in dataclasses.fields(self.config)},
            )
        else:
            self.flight = None
        self.cache = (
            ArtifactCache(max_entries=self.config.max_cache_entries)
            if self.config.cache_enabled
            else None
        )
        self.ledger = ProvenanceLedger()
        self.backend = build_backend(
            self.config.backend,
            num_workers=self.config.workers,
            llm_factory=self.config.llm_factory,
            cache_entries=(
                self.config.max_cache_entries if self.config.cache_enabled else 0
            ),
            affinity=self.config.affinity,
            steal_threshold=self.config.steal_threshold,
            dispatch_batch=self.config.dispatch_batch,
            shm_min_bytes=self.config.shm_min_bytes,
        )
        # The backend contributes to the same obs plane: it ingests
        # worker-side spans/metric deltas as replies arrive.
        self.backend.tracer = self.tracer
        self.backend.metrics = self.metrics
        self.backend.flight = self.flight
        if self.flight is not None:
            self.flight.add_source("broker", self.stats)
            if self.tracer.enabled:
                self.tracer.add_listener(self.flight.ingest_spans)
        self._scheduler = PriorityScheduler(metrics=self.metrics)
        self._pool = WorkerPool(
            self._scheduler,
            self._run_job,
            num_workers=self.config.workers,
            metrics=self.metrics,
            batch_handler=self._run_jobs,
            # Batched claiming only pays when the backend overlaps the batch
            # across its own workers; a thread claimer runs jobs serially.
            claim_batch=(
                self.config.dispatch_batch if self.backend.supports_batch else 1
            ),
            heartbeat=self.flight.heartbeat if self.flight is not None else None,
        )
        self._shards: dict[str, WorldShard] = {}
        self._jobs: dict[str, Job] = {}  # insertion-ordered: oldest first
        self._lock = threading.Lock()
        self._ticket_counter = 0
        self._pruned = 0
        self._finished_total = {"done": 0, "failed": 0, "cancelled": 0}
        self._submitted_by_priority: dict[int, int] = {}
        self._default_registry = registry
        self.metrics.register_collector(self._refresh_gauges)
        self.metrics.register_collector(self._refresh_routing)
        if world is not None:
            self.add_world(DEFAULT_WORLD_KEY, world, incidents=incidents,
                           registry=registry)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "QueryBroker":
        if not self._pool.started:
            # Backend first: a process pool must fork before worker threads
            # exist, or the children could inherit mid-held locks.
            self.backend.start()
            self._pool.start()
        return self

    def shutdown(self, wait: bool = True, drain: bool = True) -> None:
        started = self._pool.started
        if started:
            self._pool.shutdown(wait=wait, drain=drain)
        else:
            self._scheduler.close()
        if wait or not started:
            self.backend.shutdown(wait=wait)
        else:
            # Claimer threads are still draining; close the backend only
            # once they exit, so in-flight and queued jobs run to completion.
            threading.Thread(
                target=self._shutdown_backend_after_drain, daemon=True
            ).start()

    def _shutdown_backend_after_drain(self) -> None:
        self._pool.join()
        self.backend.shutdown(wait=True)

    def __enter__(self) -> "QueryBroker":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- worlds ------------------------------------------------------------

    def add_world(
        self,
        key: str,
        world: SyntheticWorld,
        incidents: list | None = None,
        registry: Registry | None = None,
    ) -> WorldShard:
        """Register a world shard; jobs name it via ``world_key``."""
        with self._lock:
            if key in self._shards:
                raise BrokerError(f"world key {key!r} already registered")
            shard = WorldShard.build(
                key,
                world,
                incidents=incidents,
                registry=registry if registry is not None else self._default_registry,
                llm=self.config.llm_factory() if self.config.llm_factory else None,
                cache=self.cache,
                curate=self.config.curate,
            )
            # Fail at registration, not first job: the process backend checks
            # the shard is shippable (rebuildable registry, picklable LLM).
            self.backend.prepare(shard)
            self._shards[key] = shard
            return shard

    def remove_world(self, key: str) -> None:
        """Deregister a world shard and drop the backend's per-shard state.

        Only idle worlds can be removed: a shard with queued or running
        jobs raises, because those tickets would otherwise fail with an
        unknown world key mid-flight.  Long-lived epoch-shard populations
        (see :class:`~repro.live.standing.StandingQueryManager`) use this
        to bound their footprint.
        """
        with self._lock:
            if key not in self._shards:
                raise BrokerError(f"unknown world key {key!r}")
            busy = [
                job.ticket for job in self._jobs.values()
                if job.world_key == key
                and job.state in (JobState.QUEUED, JobState.RUNNING)
            ]
            if busy:
                raise BrokerError(
                    f"world {key!r} still has {len(busy)} active job(s); "
                    "wait for them before removing it"
                )
            del self._shards[key]
        self.backend.forget(key)

    def shard(self, key: str = DEFAULT_WORLD_KEY) -> WorldShard:
        with self._lock:
            try:
                return self._shards[key]
            except KeyError:
                known = sorted(self._shards)
                raise BrokerError(
                    f"unknown world key {key!r}; registered: {known}"
                ) from None

    def world_keys(self) -> list[str]:
        with self._lock:
            return sorted(self._shards)

    # -- submission & results ---------------------------------------------

    def submit(
        self,
        query: str,
        params: dict | None = None,
        priority: int = 0,
        world_key: str = DEFAULT_WORLD_KEY,
        trace_parent=None,
    ) -> str:
        """Queue one query; returns its ticket immediately.

        ``trace_parent`` (a span or :class:`~repro.obs.TraceContext`) links
        the job's trace under an existing one — forensic cases use it to
        join their verdict queries to the alert that triggered them.
        """
        if not query or not query.strip():
            raise BrokerError("query must be non-empty")
        if self._scheduler.closed:
            raise BrokerError("broker is shut down; no new submissions")
        self.shard(world_key)  # validate the world key eagerly
        with self._lock:
            self._ticket_counter += 1
            ticket = f"job-{self._ticket_counter:06d}"
            job = Job(ticket=ticket, query=query, params=params,
                      priority=priority, world_key=world_key)
            self._jobs[ticket] = job
            self._submitted_by_priority[priority] = (
                self._submitted_by_priority.get(priority, 0) + 1
            )
        if self.tracer.enabled:
            # The job's whole life is one trace: a root span open until
            # settle, with queue wait as its first child.  Both spans close
            # defensively from every settle path (Span.end is idempotent).
            job.root_span = self.tracer.start_span(
                "job", parent=trace_parent, cat="serve", ticket=ticket,
                world_key=world_key, priority=priority,
            )
            job.queue_span = self.tracer.start_span(
                "queue.wait", parent=job.root_span, cat="serve",
            )
            job.trace_id = job.root_span.context.trace_id
        self.metrics.counter("broker_jobs_submitted_total").inc()
        self.ledger.open(ticket, query, world_key, trace_id=job.trace_id)
        try:
            self._scheduler.push(job, priority=priority, shard=world_key)
        except SchedulerClosed:
            # Shutdown raced the submission — undo the registration rather
            # than leave a permanently-queued orphan.
            with self._lock:
                self._jobs.pop(ticket, None)
            self.ledger.remove(ticket)
            self._close_spans(job, "rejected")
            raise BrokerError("broker is shut down; no new submissions") from None
        return ticket

    def cancel(self, ticket: str) -> bool:
        """Cancel a still-queued job; ``True`` when this call cancelled it.

        Only ``QUEUED`` jobs can be cancelled — a worker that already claimed
        the job runs it to completion, and finished jobs keep their result —
        so ``False`` is the explicit "too late, nothing changed" answer, not
        an error.  A cancelled ticket stays known: ``status`` reports
        ``CANCELLED``, ``wait`` returns immediately, ``result`` raises.
        """
        job = self.job(ticket)
        with self._lock:
            if job.state is not JobState.QUEUED:
                return False
            job.state = JobState.CANCELLED
            job.error = "cancelled before execution"
            self._finished_total["cancelled"] += 1
        self.ledger.mark_finished(ticket, "cancelled", job.error)
        self._close_spans(job, "cancelled")
        job.done.set()
        self._prune_finished()
        return True

    def job(self, ticket: str) -> Job:
        with self._lock:
            try:
                return self._jobs[ticket]
            except KeyError:
                raise BrokerError(f"unknown ticket {ticket!r}") from None

    def status(self, ticket: str) -> JobState:
        return self.job(ticket).state

    def wait(self, ticket: str, timeout: float | None = None) -> Job:
        """Block until the job finishes (or raise on timeout)."""
        job = self.job(ticket)
        if not job.done.wait(timeout):
            raise TimeoutError(f"{ticket} still {job.state.value} after {timeout}s")
        return job

    def result(self, ticket: str, timeout: float | None = None) -> PipelineResult:
        """The finished job's :class:`PipelineResult` (waits if needed)."""
        job = self.wait(ticket, timeout)
        if job.state is not JobState.DONE:
            raise BrokerError(f"{ticket} {job.state.value}: {job.error}")
        assert job.result is not None
        return job.result

    def wait_all(self, tickets: list[str], timeout: float | None = None) -> list[Job]:
        return [self.wait(t, timeout) for t in tickets]

    # -- introspection -----------------------------------------------------

    def _refresh_gauges(self, metrics: MetricsRegistry) -> None:
        """Scrape-time collector: project the hot paths' existing stats dicts
        into registry gauges, so queue depth, affinity economics, transport
        volume and cache hit rates all answer from one place without the hot
        paths paying for a second accounting system."""
        backend = self.backend.stats()
        affinity = backend.get("affinity") or {}
        metrics.gauge("backend_affinity_hit_rate").set(
            affinity.get("hit_rate", 0.0))
        metrics.gauge("backend_affinity_hits").set(affinity.get("hits", 0))
        metrics.gauge("backend_affinity_steals").set(affinity.get("steals", 0))
        metrics.gauge("backend_respawns").set(affinity.get("respawns", 0))
        dispatch = backend.get("dispatch") or {}
        metrics.gauge("backend_shm_bytes").set(dispatch.get("shm_bytes", 0))
        metrics.gauge("backend_shm_results").set(dispatch.get("shm_results", 0))
        worker_cache = backend.get("cache") or {}
        metrics.gauge("cache_hit_rate", {"scope": "workers"}).set(
            worker_cache.get("hit_rate", 0.0) if worker_cache else 0.0)
        if self.cache is not None:
            cache = self.cache.stats()
            metrics.gauge("cache_hit_rate", {"scope": "broker"}).set(
                cache["hit_rate"])
            metrics.gauge("cache_entries", {"scope": "broker"}).set(
                cache["entries"])
        metrics.gauge("broker_active_jobs").set(self._pool.active_jobs)

    def _refresh_routing(self, metrics: MetricsRegistry) -> None:
        """Scrape-time collector over the routing core: every shared BGP
        collector living on a shard's world (the serve workers' forensic
        fetches and the live plane's feed both memoize there) syncs its
        route-cache, repair-frontier and delta-stream counters into the
        registry, labelled by world shard.  Epoch shards share the base
        shard's world object (see EpochShardPool), so sims are deduped by
        identity — each reports once, under the first shard that holds it."""
        seen: set[int] = set()
        for key in self.world_keys():
            try:
                world = self.shard(key).world
            except KeyError:
                continue  # shard removed between listing and lookup
            for sim in tuple(getattr(world, "_collector_cache", {}).values()):
                if id(sim) in seen:
                    continue
                seen.add(id(sim))
                sim.sync_metrics(metrics, {"world": key})

    def stats(self) -> dict:
        with self._lock:
            states: dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state.value] = states.get(job.state.value, 0) + 1
            submitted = self._ticket_counter
            pruned = self._pruned
            finished_total = dict(self._finished_total)
            by_priority = dict(sorted(self._submitted_by_priority.items()))
        return {
            "submitted": submitted,
            "states": states,  # retained jobs only; see finished_total
            "finished_total": finished_total,
            "submitted_by_priority": by_priority,
            "pruned": pruned,
            "workers": self.config.workers,
            "active_jobs": self._pool.active_jobs,
            "scheduler": self._scheduler.stats(),
            "backend": self.backend.stats(),
            "cache": self.cache.stats() if self.cache else None,
            "worlds": self.world_keys(),
            "obs": {
                "tracer": self.tracer.stats(),
                "metrics": self.metrics.stats(),
                "flight": self.flight.stats() if self.flight is not None else None,
            },
        }

    # -- the worker-side job runner ---------------------------------------

    def _run_job(self, job: Job, worker_name: str) -> None:
        self._run_jobs([job], worker_name)

    def _run_jobs(self, jobs: list[Job], worker_name: str) -> None:
        """Run a claimed batch through the backend and settle every job.

        The whole batch is dispatched before any result is awaited (see
        ``ExecutionBackend.run_many``), so one claimer thread keeps a
        process pool saturated.  A job whose worker process died in flight
        is resubmitted exactly once, excluding the failed worker's affinity
        slot, before being marked FAILED.
        """
        claimed: list[Job] = []
        items = []
        dspans = []
        for job in jobs:
            with self._lock:
                if job.state is not JobState.QUEUED:
                    continue  # cancelled while queued; the canceller settled it
                job.state = JobState.RUNNING
            if job.queue_span is not None:
                job.queue_span.end()
            dspan = self.tracer.start_span(
                "dispatch", parent=job.root_span, cat="serve",
                backend=self.backend.name, worker=worker_name,
            ) if self.tracer.enabled else None
            try:
                provenance = self.ledger.get(job.ticket)
                self.ledger.mark_started(job.ticket, worker_name)
                items.append((self.shard(job.world_key), job.query, job.params,
                              provenance.observer(),
                              dspan.context if dspan is not None else None))
            except Exception as exc:
                # E.g. the world was removed after submit validated it; the
                # job must still settle or waiters hang and the claimer dies.
                if dspan is not None:
                    dspan.annotate(error=str(exc)).end()
                self._settle(job, exc)
                continue
            claimed.append(job)
            dspans.append(dspan)
        if not claimed:
            return
        outcomes = self.backend.run_many(items)
        crashed = [i for i, out in enumerate(outcomes)
                   if isinstance(out, WorkerCrashed)]
        if crashed:
            # One retry per job, redispatched as a batch so the surviving
            # workers overlap the retries the way they did the originals.
            excluded = tuple({outcomes[i].worker_index for i in crashed})
            for index in crashed:
                self.ledger.mark_retried(claimed[index].ticket)
                self.metrics.counter("broker_job_retries_total").inc()
                if dspans[index] is not None:
                    dspans[index].annotate(retried=True)
            if self.flight is not None:
                # The black box saw the crash: dump before the retry runs,
                # while the dead worker's last spans are still in the ring,
                # and pin the postmortem to every retried ticket's ledger row.
                tickets = [claimed[i].ticket for i in crashed]
                self.flight.record("worker_crashed", {
                    "tickets": tickets,
                    "worker_slots": sorted(excluded),
                    "worker": worker_name,
                })
                dump_path = self.flight.dump("worker_crashed", extra={
                    "tickets": tickets,
                    "worker_slots": sorted(excluded),
                })
                for ticket in tickets:
                    try:
                        self.ledger.get(ticket).flight_dump = dump_path
                    except KeyError:
                        pass
            retried = self.backend.run_many(
                [items[i] for i in crashed], excluded_workers=excluded
            )
            for index, outcome in zip(crashed, retried):
                outcomes[index] = outcome
        for job, outcome, dspan in zip(claimed, outcomes, dspans):
            if dspan is not None:
                dspan.end()
            self._settle(job, outcome)

    def _settle(self, job: Job, outcome) -> None:
        if isinstance(outcome, Exception):
            # A failed job must never take a worker down.
            job.error = f"{type(outcome).__name__}: {outcome}"
            job.state = JobState.FAILED
            self.ledger.mark_finished(job.ticket, "failed", job.error)
        else:
            job.result = outcome
            if outcome.execution.succeeded:
                job.state = JobState.DONE
                self.ledger.mark_finished(job.ticket, "done")
            else:
                job.error = outcome.execution.error
                job.state = JobState.FAILED
                self.ledger.mark_finished(job.ticket, "failed", job.error)
        with self._lock:
            key = "done" if job.state is JobState.DONE else "failed"
            self._finished_total[key] += 1
        self.metrics.counter("broker_jobs_finished_total", {"state": key}).inc()
        self._close_spans(job, job.state.value)
        job.done.set()
        self._prune_finished()

    def _close_spans(self, job: Job, state: str) -> None:
        """Close a job's root/queue spans from any settle path; idempotent."""
        if job.queue_span is not None:
            job.queue_span.end()
        if job.root_span is not None:
            job.root_span.annotate(state=state).end()

    def _prune_finished(self) -> None:
        """Drop the oldest finished jobs beyond the retention bound.

        A pruned ticket becomes unknown to ``status``/``wait``/``result`` —
        callers that outlive ``max_retained_jobs`` submissions must collect
        results promptly (campaigns do).
        """
        victims: list[str] = []
        with self._lock:
            overshoot = len(self._jobs) - self.config.max_retained_jobs
            if overshoot > 0:
                for ticket, job in self._jobs.items():
                    if len(victims) >= overshoot:
                        break
                    if job.state in (JobState.DONE, JobState.FAILED, JobState.CANCELLED):
                        victims.append(ticket)
                for ticket in victims:
                    del self._jobs[ticket]
                    self._pruned += 1
        for ticket in victims:
            self.ledger.remove(ticket)
