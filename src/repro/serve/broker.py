"""QueryBroker: the serve subsystem's front door.

Submissions become tickets; a ticket's job moves queued → running →
done/failed while the caller polls ``status`` or blocks on ``wait``.  The
broker owns the moving parts — one :class:`PriorityScheduler`, one
:class:`WorkerPool`, one shared :class:`ArtifactCache`, one
:class:`ProvenanceLedger`, and a :class:`WorldShard` per registered world
— so callers only ever talk tickets and results.
"""

from __future__ import annotations

import dataclasses
import random
import threading
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable

from repro.core.artifacts import PipelineResult
from repro.core.registry import Registry
from repro.obs import FlightRecorder, MetricsRegistry, Tracer, resolve_tracer
from repro.serve.backends import WorkerCrashed, affinity_key, build_backend
from repro.serve.cache import ArtifactCache
from repro.serve.journal import DeadLetterQueue, JournalState, WriteAheadJournal
from repro.serve.provenance import ProvenanceLedger
from repro.serve.recovery import RecoveryReport, ReplayedResult, recover
from repro.serve.scheduler import (
    PriorityScheduler,
    SchedulerClosed,
    SchedulerSaturated,
    WorldShard,
)
from repro.serve.workers import WorkerPool
from repro.synth.world import SyntheticWorld

DEFAULT_WORLD_KEY = "default"


class JobState(str, Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"
    #: Terminal: the crash-loop circuit breaker sent this job to the
    #: dead-letter queue instead of letting it kill another worker.
    QUARANTINED = "quarantined"


@dataclass
class ServeConfig:
    """Tunables for one broker instance."""

    workers: int = 4
    #: Where job pipelines execute: ``"thread"`` runs them in the claiming
    #: worker thread (best when LLM latency dominates — threads overlap it);
    #: ``"process"`` ships picklable payloads to a preforked process pool
    #: (best when generated-code execution is CPU-bound and the GIL is the
    #: bottleneck).  See :mod:`repro.serve.backends`.
    backend: str = "thread"
    cache_enabled: bool = True
    max_cache_entries: int = 4096
    #: Sticky affinity routing for the process backend: resubmissions of a
    #: (world, query) pair land on the worker process whose caches already
    #: hold it warm.  Disable to spread purely by load.
    affinity: bool = True
    #: Queue depth on a job's bound worker beyond which an idle worker
    #: steals the job (and its affinity binding) instead of waiting.
    steal_threshold: int = 2
    #: Jobs a claimer thread batches into one backend dispatch (process
    #: backend only; the thread backend runs one job per claimer).
    dispatch_batch: int = 8
    #: Results at or above this many pickled bytes move through
    #: multiprocessing.shared_memory instead of the reply pipe.
    shm_min_bytes: int = 64 * 1024
    curate: bool = False  # registry evolution is opt-in while serving
    #: Finished jobs (and their ledger entries) beyond this bound are pruned
    #: oldest-first so a long-running broker cannot grow without limit.
    #: Size it above the largest campaign whose tickets are awaited at once.
    max_retained_jobs: int = 10_000
    #: Builds one LLM backend per shard; ``None`` keeps each system's default
    #: (the deterministic :class:`SimulatedLLM`).  With ``backend="process"``
    #: it must be picklable (e.g. ``functools.partial`` over a module-level
    #: class), since worker processes build their own instance.
    llm_factory: Callable[[], object] | None = None
    #: Record spans for every job (submit → queue wait → dispatch → worker
    #: stages).  Off by default: the disabled path is a shared
    #: :class:`~repro.obs.NullTracer` and costs nothing measurable.
    tracing: bool = False
    #: Run a :class:`~repro.obs.FlightRecorder` black box: crashes, retries
    #: and SIGKILL respawns dump an atomic JSON postmortem with the recent
    #: span/event ring, a registry snapshot, and this config.
    flight: bool = False
    #: Where flight dumps land; defaults to the current directory.  The live
    #: driver points it at ``--cache-dir`` so postmortems sit next to the
    #: artifact cache.
    flight_dir: str | None = None
    #: Directory for the write-ahead journal (see :mod:`repro.serve.journal`).
    #: ``None`` disables durability entirely — no journal, no recovery, no
    #: submit-level dedup.  With a directory set, the broker replays
    #: whatever the directory holds at construction and resumes: journaled
    #: completions re-join byte-identically on resubmission, journaled
    #: submissions without a completion are requeued at :meth:`start`.
    journal_dir: str | None = None
    #: fsync every durable journal append.  Disable only for benchmarks
    #: that want the framing without the disk round-trip.
    journal_fsync: bool = True
    journal_segment_bytes: int = 1_000_000
    #: Appends between checkpoint compactions (each checkpoint persists the
    #: reduced state and deletes the segments it covers).
    journal_checkpoint_every: int = 1000
    #: Per-job wall-clock deadline, enforced by the process backend's
    #: monitor plane (the worker is killed, the job fails with
    #: ``JobDeadlineExceeded``).  The thread backend cannot preempt a
    #: claiming thread and ignores it.  ``None`` disables deadlines.
    job_timeout_s: float | None = None
    #: Crash retries per submission before the job fails (each retry
    #: excludes the worker slots that already died on it).
    max_retries: int = 1
    #: Decorrelated-jitter backoff between crash retries: each delay is
    #: uniform(base, 3 * previous) capped at ``retry_backoff_cap_s``.
    #: Set the base to 0 to retry immediately (the pre-journal behaviour).
    retry_backoff_base_s: float = 0.05
    retry_backoff_cap_s: float = 1.0
    #: Worker deaths a single (world, query) signature may cause before the
    #: crash-loop circuit breaker quarantines it into the dead-letter
    #: queue.  0 disables the breaker.
    crash_loop_threshold: int = 3
    #: Scheduler depth beyond which submissions raise
    #: :class:`QueueSaturated` instead of queueing — explicit backpressure
    #: for producers that can defer (forensic triggers back off and
    #: re-enqueue).  ``None`` keeps the queue unbounded.
    max_queue_depth: int | None = None


@dataclass
class Job:
    """One submitted query and everything known about its progress."""

    ticket: str
    query: str
    params: dict | None
    priority: int
    world_key: str
    state: JobState = JobState.QUEUED
    result: PipelineResult | None = None
    error: str = ""
    done: threading.Event = field(default_factory=threading.Event, repr=False)
    trace_id: str = ""
    #: Idempotency key (the affinity blake2b key) when the broker journals;
    #: "" otherwise.
    key: str = ""
    #: True when the result was rematerialized from a journaled completion
    #: instead of running the pipeline.
    replayed: bool = False
    #: The job's root span and its queue-wait child, open from submit until
    #: settle.  ``None`` whenever tracing is off.
    root_span: object = field(default=None, repr=False, compare=False)
    queue_span: object = field(default=None, repr=False, compare=False)

    def to_dict(self) -> dict:
        return {
            "ticket": self.ticket,
            "query": self.query,
            "priority": self.priority,
            "world_key": self.world_key,
            "state": self.state.value,
            "error": self.error,
            "trace_id": self.trace_id,
            "key": self.key,
            "replayed": self.replayed,
        }


class BrokerError(RuntimeError):
    """Unknown tickets, bad world keys, or use after shutdown."""


class QueueSaturated(BrokerError):
    """Submission rejected: the scheduler is at ``max_queue_depth``.

    Explicit backpressure, not failure — the producer should back off and
    resubmit once the backlog drains (forensic triggers do exactly that).
    """


class PoisonJobQuarantined(BrokerError):
    """Settled-as-outcome when the crash-loop circuit breaker trips: the
    job's (world, query) signature has killed too many workers and now
    lives in the dead-letter queue until drained."""


class QueryBroker:
    """Accepts measurement queries and serves them concurrently.

    Usable as a context manager::

        with QueryBroker(world) as broker:
            ticket = broker.submit("Identify the impact ... SeaMeWe-5 ...")
            result = broker.result(broker.wait(ticket).ticket)
    """

    def __init__(
        self,
        world: SyntheticWorld | None = None,
        registry: Registry | None = None,
        incidents: list | None = None,
        config: ServeConfig | None = None,
        tracer=None,
        metrics: MetricsRegistry | None = None,
        flight: FlightRecorder | None = None,
    ):
        self.config = config or ServeConfig()
        if tracer is not None:
            self.tracer = tracer
        elif self.config.tracing:
            self.tracer = Tracer(label="broker")
        else:
            self.tracer = resolve_tracer(None)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        if flight is not None:
            self.flight = flight
        elif self.config.flight:
            self.flight = FlightRecorder(
                dump_dir=self.config.flight_dir or ".",
                registry=self.metrics,
                config={f.name: getattr(self.config, f.name)
                        for f in dataclasses.fields(self.config)},
            )
        else:
            self.flight = None
        self.cache = (
            ArtifactCache(max_entries=self.config.max_cache_entries)
            if self.config.cache_enabled
            else None
        )
        self.ledger = ProvenanceLedger()
        # Durability plane: open (and replay) the write-ahead journal before
        # anything can submit, so every recovered fact — completions to
        # re-join, submissions to requeue, quarantines to re-arm — is in
        # hand when the first job arrives.
        self.journal: WriteAheadJournal | None = None
        self.recovery: RecoveryReport | None = None
        if self.config.journal_dir:
            recovery_span = (
                self.tracer.start_span("recovery", cat="serve",
                                       journal_dir=self.config.journal_dir)
                if self.tracer.enabled else None
            )
            self.journal = WriteAheadJournal(
                self.config.journal_dir,
                max_segment_bytes=self.config.journal_segment_bytes,
                checkpoint_every=self.config.journal_checkpoint_every,
                fsync=self.config.journal_fsync,
                metrics=self.metrics,
            )
            self.recovery = recover(self.journal, ledger=self.ledger)
            self.metrics.gauge("recovery_replayed_records").set(
                self.recovery.replayed_records)
            if recovery_span is not None:
                recovery_span.annotate(
                    replayed_records=self.recovery.replayed_records,
                    completions=self.recovery.completions,
                    pending=len(self.recovery.pending),
                    deadletter=self.recovery.deadletter,
                    truncated_bytes=self.recovery.truncated_bytes,
                ).end()
        self.deadletter = DeadLetterQueue(journal=self.journal,
                                          metrics=self.metrics)
        #: Terminal outcome per idempotency key: seeded from recovery,
        #: extended by every journaled settle.  ``submit`` consults it to
        #: re-join completed work instead of re-running it.
        self._completed: dict[str, dict] = (
            dict(self.journal.state.completions) if self.journal else {}
        )
        self._key_tickets: dict[str, str] = {}  # live (unsettled) keys
        self._poison: dict[str, dict] = {}  # crash counts per (world, query)
        self.backend = build_backend(
            self.config.backend,
            num_workers=self.config.workers,
            llm_factory=self.config.llm_factory,
            cache_entries=(
                self.config.max_cache_entries if self.config.cache_enabled else 0
            ),
            affinity=self.config.affinity,
            steal_threshold=self.config.steal_threshold,
            dispatch_batch=self.config.dispatch_batch,
            shm_min_bytes=self.config.shm_min_bytes,
            job_timeout_s=self.config.job_timeout_s,
        )
        # The backend contributes to the same obs plane: it ingests
        # worker-side spans/metric deltas as replies arrive.
        self.backend.tracer = self.tracer
        self.backend.metrics = self.metrics
        self.backend.flight = self.flight
        if self.flight is not None:
            self.flight.add_source("broker", self.stats)
            if self.journal is not None:
                self.flight.add_source("journal", self.journal.stats)
            if self.tracer.enabled:
                self.tracer.add_listener(self.flight.ingest_spans)
        self._scheduler = PriorityScheduler(
            metrics=self.metrics, max_depth=self.config.max_queue_depth)
        self._pool = WorkerPool(
            self._scheduler,
            self._run_job,
            num_workers=self.config.workers,
            metrics=self.metrics,
            batch_handler=self._run_jobs,
            # Batched claiming only pays when the backend overlaps the batch
            # across its own workers; a thread claimer runs jobs serially.
            claim_batch=(
                self.config.dispatch_batch if self.backend.supports_batch else 1
            ),
            heartbeat=self.flight.heartbeat if self.flight is not None else None,
        )
        self._shards: dict[str, WorldShard] = {}
        self._jobs: dict[str, Job] = {}  # insertion-ordered: oldest first
        self._lock = threading.Lock()
        self._ticket_counter = 0
        self._pruned = 0
        self._finished_total = {"done": 0, "failed": 0, "cancelled": 0,
                                "quarantined": 0}
        self._submitted_by_priority: dict[int, int] = {}
        self._default_registry = registry
        self.metrics.register_collector(self._refresh_gauges)
        self.metrics.register_collector(self._refresh_routing)
        if world is not None:
            self.add_world(DEFAULT_WORLD_KEY, world, incidents=incidents,
                           registry=registry)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "QueryBroker":
        if not self._pool.started:
            # Backend first: a process pool must fork before worker threads
            # exist, or the children could inherit mid-held locks.
            self.backend.start()
            self._pool.start()
            self._resume_pending()
        return self

    def _resume_pending(self) -> None:
        """Requeue the crashed run's outstanding jobs (scheduler-queue
        reconstruction).

        Only submissions whose world is already registered resume here —
        live-plane epoch shards are rebuilt by their own managers, and
        their standing queries resubmit on the next epoch.  Quarantined
        signatures stay in the dead-letter queue rather than resuming a
        crash loop.
        """
        if self.recovery is None or not self.recovery.pending:
            return
        resubmitted = 0
        for record in self.recovery.pending:
            world_key = record.get("world_key", DEFAULT_WORLD_KEY)
            query = record.get("query", "")
            with self._lock:
                known = world_key in self._shards
            if not known or self.deadletter.contains(world_key, query):
                continue
            try:
                self.submit(query, params=record.get("params"),
                            priority=record.get("priority", 0),
                            world_key=world_key)
            except BrokerError:
                continue
            resubmitted += 1
        self.recovery.resubmitted = resubmitted
        if resubmitted:
            self.metrics.counter("recovery_resubmitted_total").inc(resubmitted)

    def shutdown(self, wait: bool = True, drain: bool = True) -> None:
        started = self._pool.started
        if started:
            self._pool.shutdown(wait=wait, drain=drain)
        else:
            self._scheduler.close()
        if wait or not started:
            self.backend.shutdown(wait=wait)
            if self.journal is not None:
                self.journal.close()
        else:
            # Claimer threads are still draining; close the backend only
            # once they exit, so in-flight and queued jobs run to completion.
            threading.Thread(
                target=self._shutdown_backend_after_drain, daemon=True
            ).start()

    def _shutdown_backend_after_drain(self) -> None:
        self._pool.join()
        self.backend.shutdown(wait=True)
        if self.journal is not None:
            self.journal.close()

    def __enter__(self) -> "QueryBroker":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- worlds ------------------------------------------------------------

    def add_world(
        self,
        key: str,
        world: SyntheticWorld,
        incidents: list | None = None,
        registry: Registry | None = None,
    ) -> WorldShard:
        """Register a world shard; jobs name it via ``world_key``."""
        with self._lock:
            if key in self._shards:
                raise BrokerError(f"world key {key!r} already registered")
            shard = WorldShard.build(
                key,
                world,
                incidents=incidents,
                registry=registry if registry is not None else self._default_registry,
                llm=self.config.llm_factory() if self.config.llm_factory else None,
                cache=self.cache,
                curate=self.config.curate,
            )
            # Fail at registration, not first job: the process backend checks
            # the shard is shippable (rebuildable registry, picklable LLM).
            self.backend.prepare(shard)
            self._shards[key] = shard
            return shard

    def remove_world(self, key: str) -> None:
        """Deregister a world shard and drop the backend's per-shard state.

        Only idle worlds can be removed: a shard with queued or running
        jobs raises, because those tickets would otherwise fail with an
        unknown world key mid-flight.  Long-lived epoch-shard populations
        (see :class:`~repro.live.standing.StandingQueryManager`) use this
        to bound their footprint.
        """
        with self._lock:
            if key not in self._shards:
                raise BrokerError(f"unknown world key {key!r}")
            busy = [
                job.ticket for job in self._jobs.values()
                if job.world_key == key
                and job.state in (JobState.QUEUED, JobState.RUNNING)
            ]
            if busy:
                raise BrokerError(
                    f"world {key!r} still has {len(busy)} active job(s); "
                    "wait for them before removing it"
                )
            del self._shards[key]
        self.backend.forget(key)

    def shard(self, key: str = DEFAULT_WORLD_KEY) -> WorldShard:
        with self._lock:
            try:
                return self._shards[key]
            except KeyError:
                known = sorted(self._shards)
                raise BrokerError(
                    f"unknown world key {key!r}; registered: {known}"
                ) from None

    def world_keys(self) -> list[str]:
        with self._lock:
            return sorted(self._shards)

    # -- submission & results ---------------------------------------------

    def submit(
        self,
        query: str,
        params: dict | None = None,
        priority: int = 0,
        world_key: str = DEFAULT_WORLD_KEY,
        trace_parent=None,
    ) -> str:
        """Queue one query; returns its ticket immediately.

        ``trace_parent`` (a span or :class:`~repro.obs.TraceContext`) links
        the job's trace under an existing one — forensic cases use it to
        join their verdict queries to the alert that triggered them.
        """
        if not query or not query.strip():
            raise BrokerError("query must be non-empty")
        if self._scheduler.closed:
            raise BrokerError("broker is shut down; no new submissions")
        shard = self.shard(world_key)  # validate the world key eagerly
        key = ""
        if self.journal is not None:
            # Exactly-once dedup: a journaled completion re-joins without
            # running; a live in-flight twin shares its ticket.
            key = affinity_key(shard, query, params)
            replayed = self._replay_completed(key, query, params, priority,
                                              world_key)
            if replayed is not None:
                return replayed
            with self._lock:
                existing = self._key_tickets.get(key)
                if existing is not None and existing in self._jobs:
                    return existing
        if self.deadletter.contains(world_key, query):
            # Circuit open: the signature goes straight to the dead-letter
            # queue instead of killing another worker.
            return self._quarantine_submit(query, params, priority,
                                           world_key, key)
        with self._lock:
            self._ticket_counter += 1
            ticket = f"job-{self._ticket_counter:06d}"
            job = Job(ticket=ticket, query=query, params=params,
                      priority=priority, world_key=world_key, key=key)
            self._jobs[ticket] = job
            if key:
                self._key_tickets[key] = ticket
            self._submitted_by_priority[priority] = (
                self._submitted_by_priority.get(priority, 0) + 1
            )
        if self.tracer.enabled:
            # The job's whole life is one trace: a root span open until
            # settle, with queue wait as its first child.  Both spans close
            # defensively from every settle path (Span.end is idempotent).
            job.root_span = self.tracer.start_span(
                "job", parent=trace_parent, cat="serve", ticket=ticket,
                world_key=world_key, priority=priority,
            )
            job.queue_span = self.tracer.start_span(
                "queue.wait", parent=job.root_span, cat="serve",
            )
            job.trace_id = job.root_span.context.trace_id
        self.metrics.counter("broker_jobs_submitted_total").inc()
        self.ledger.open(ticket, query, world_key, trace_id=job.trace_id)
        if self.journal is not None:
            # The WAL property: the submission is durable before the
            # scheduler can hand it to a worker.
            self.journal.append("submit", {
                "ticket": ticket, "key": key, "query": query,
                "params": params, "world_key": world_key,
                "priority": priority,
            })
        try:
            self._scheduler.push(job, priority=priority, shard=world_key)
        except (SchedulerClosed, SchedulerSaturated) as exc:
            # Shutdown or backpressure raced the submission — undo the
            # registration rather than leave a permanently-queued orphan.
            with self._lock:
                self._jobs.pop(ticket, None)
                if key:
                    self._key_tickets.pop(key, None)
            self.ledger.remove(ticket)
            self._close_spans(job, "rejected")
            if self.journal is not None:
                self.journal.append("cancel", {"ticket": ticket})
            if isinstance(exc, SchedulerSaturated):
                self.metrics.counter("broker_submit_saturated_total").inc()
                raise QueueSaturated(
                    f"scheduler queue is at max depth "
                    f"{self.config.max_queue_depth}; back off and resubmit"
                ) from None
            raise BrokerError("broker is shut down; no new submissions") from None
        return ticket

    def _replay_completed(self, key: str, query: str, params: dict | None,
                          priority: int, world_key: str) -> str | None:
        """Re-join a journaled completion: mint a ticket already settled
        with the journaled digest and final output, byte-identical to the
        run that produced it.  Failed completions return ``None`` — they
        re-run fresh (that is the drain-and-retry path)."""
        completion = self._completed.get(key)
        if completion is None or completion.get("status") != "done":
            return None
        with self._lock:
            self._ticket_counter += 1
            ticket = f"job-{self._ticket_counter:06d}"
            job = Job(ticket=ticket, query=query, params=params,
                      priority=priority, world_key=world_key,
                      key=key, replayed=True)
            job.state = JobState.DONE
            job.result = ReplayedResult(completion)
            self._jobs[ticket] = job
            self._finished_total["done"] += 1
        self.metrics.counter("broker_jobs_replayed_total").inc()
        entry = self.ledger.open(ticket, query, world_key)
        entry.worker = "journal-replay"
        entry.status = "done"
        entry.finished_at = self.ledger.now()
        job.done.set()
        self._prune_finished()
        return ticket

    def _quarantine_submit(self, query: str, params: dict | None,
                           priority: int, world_key: str, key: str) -> str:
        """Settle a circuit-open submission straight into the DLQ."""
        error = ("quarantined: crash-loop circuit breaker is open for this "
                 "(world, query) signature; drain the dead-letter queue to retry")
        with self._lock:
            self._ticket_counter += 1
            ticket = f"job-{self._ticket_counter:06d}"
            job = Job(ticket=ticket, query=query, params=params,
                      priority=priority, world_key=world_key, key=key)
            job.state = JobState.QUARANTINED
            job.error = error
            self._jobs[ticket] = job
            self._finished_total["quarantined"] += 1
        self.metrics.counter("broker_jobs_quarantined_total").inc()
        self.deadletter.quarantine(world_key, query, key=key, params=params,
                                   priority=priority, ticket=ticket,
                                   error=error)
        entry = self.ledger.open(ticket, query, world_key)
        entry.status = "quarantined"
        entry.error = error
        entry.finished_at = self.ledger.now()
        job.done.set()
        self._prune_finished()
        return ticket

    def cancel(self, ticket: str) -> bool:
        """Cancel a still-queued job; ``True`` when this call cancelled it.

        Only ``QUEUED`` jobs can be cancelled — a worker that already claimed
        the job runs it to completion, and finished jobs keep their result —
        so ``False`` is the explicit "too late, nothing changed" answer, not
        an error.  A cancelled ticket stays known: ``status`` reports
        ``CANCELLED``, ``wait`` returns immediately, ``result`` raises.
        """
        job = self.job(ticket)
        with self._lock:
            if job.state is not JobState.QUEUED:
                return False
            job.state = JobState.CANCELLED
            job.error = "cancelled before execution"
            self._finished_total["cancelled"] += 1
            if job.key:
                self._key_tickets.pop(job.key, None)
        if self.journal is not None and job.key:
            self.journal.append("cancel", {"ticket": ticket})
        self.ledger.mark_finished(ticket, "cancelled", job.error)
        self._close_spans(job, "cancelled")
        job.done.set()
        self._prune_finished()
        return True

    def job(self, ticket: str) -> Job:
        with self._lock:
            try:
                return self._jobs[ticket]
            except KeyError:
                raise BrokerError(f"unknown ticket {ticket!r}") from None

    def status(self, ticket: str) -> JobState:
        return self.job(ticket).state

    def wait(self, ticket: str, timeout: float | None = None) -> Job:
        """Block until the job finishes (or raise on timeout)."""
        job = self.job(ticket)
        if not job.done.wait(timeout):
            raise TimeoutError(f"{ticket} still {job.state.value} after {timeout}s")
        return job

    def result(self, ticket: str, timeout: float | None = None) -> PipelineResult:
        """The finished job's :class:`PipelineResult` (waits if needed)."""
        job = self.wait(ticket, timeout)
        if job.state is not JobState.DONE:
            raise BrokerError(f"{ticket} {job.state.value}: {job.error}")
        assert job.result is not None
        return job.result

    def wait_all(self, tickets: list[str], timeout: float | None = None) -> list[Job]:
        return [self.wait(t, timeout) for t in tickets]

    # -- introspection -----------------------------------------------------

    def _refresh_gauges(self, metrics: MetricsRegistry) -> None:
        """Scrape-time collector: project the hot paths' existing stats dicts
        into registry gauges, so queue depth, affinity economics, transport
        volume and cache hit rates all answer from one place without the hot
        paths paying for a second accounting system."""
        backend = self.backend.stats()
        affinity = backend.get("affinity") or {}
        metrics.gauge("backend_affinity_hit_rate").set(
            affinity.get("hit_rate", 0.0))
        metrics.gauge("backend_affinity_hits").set(affinity.get("hits", 0))
        metrics.gauge("backend_affinity_steals").set(affinity.get("steals", 0))
        metrics.gauge("backend_respawns").set(affinity.get("respawns", 0))
        dispatch = backend.get("dispatch") or {}
        metrics.gauge("backend_shm_bytes").set(dispatch.get("shm_bytes", 0))
        metrics.gauge("backend_shm_results").set(dispatch.get("shm_results", 0))
        worker_cache = backend.get("cache") or {}
        metrics.gauge("cache_hit_rate", {"scope": "workers"}).set(
            worker_cache.get("hit_rate", 0.0) if worker_cache else 0.0)
        if self.cache is not None:
            cache = self.cache.stats()
            metrics.gauge("cache_hit_rate", {"scope": "broker"}).set(
                cache["hit_rate"])
            metrics.gauge("cache_entries", {"scope": "broker"}).set(
                cache["entries"])
        metrics.gauge("broker_active_jobs").set(self._pool.active_jobs)

    def _refresh_routing(self, metrics: MetricsRegistry) -> None:
        """Scrape-time collector over the routing core: every shared BGP
        collector living on a shard's world (the serve workers' forensic
        fetches and the live plane's feed both memoize there) syncs its
        route-cache, repair-frontier and delta-stream counters into the
        registry, labelled by world shard.  Epoch shards share the base
        shard's world object (see EpochShardPool), so sims are deduped by
        identity — each reports once, under the first shard that holds it."""
        seen: set[int] = set()
        for key in self.world_keys():
            try:
                world = self.shard(key).world
            except KeyError:
                continue  # shard removed between listing and lookup
            for sim in tuple(getattr(world, "_collector_cache", {}).values()):
                if id(sim) in seen:
                    continue
                seen.add(id(sim))
                sim.sync_metrics(metrics, {"world": key})

    def stats(self) -> dict:
        with self._lock:
            states: dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state.value] = states.get(job.state.value, 0) + 1
            submitted = self._ticket_counter
            pruned = self._pruned
            finished_total = dict(self._finished_total)
            by_priority = dict(sorted(self._submitted_by_priority.items()))
        return {
            "submitted": submitted,
            "states": states,  # retained jobs only; see finished_total
            "finished_total": finished_total,
            "submitted_by_priority": by_priority,
            "pruned": pruned,
            "workers": self.config.workers,
            "active_jobs": self._pool.active_jobs,
            "scheduler": self._scheduler.stats(),
            "backend": self.backend.stats(),
            "cache": self.cache.stats() if self.cache else None,
            "journal": self.journal.stats() if self.journal is not None else None,
            "recovery": (self.recovery.to_dict()
                         if self.recovery is not None else None),
            "deadletter": self.deadletter.stats(),
            "worlds": self.world_keys(),
            "obs": {
                "tracer": self.tracer.stats(),
                "metrics": self.metrics.stats(),
                "flight": self.flight.stats() if self.flight is not None else None,
            },
        }

    # -- the worker-side job runner ---------------------------------------

    def _run_job(self, job: Job, worker_name: str) -> None:
        self._run_jobs([job], worker_name)

    def _run_jobs(self, jobs: list[Job], worker_name: str) -> None:
        """Run a claimed batch through the backend and settle every job.

        The whole batch is dispatched before any result is awaited (see
        ``ExecutionBackend.run_many``), so one claimer thread keeps a
        process pool saturated.  A job whose worker process died in flight
        is resubmitted exactly once, excluding the failed worker's affinity
        slot, before being marked FAILED.
        """
        claimed: list[Job] = []
        items = []
        dspans = []
        for job in jobs:
            with self._lock:
                if job.state is not JobState.QUEUED:
                    continue  # cancelled while queued; the canceller settled it
                job.state = JobState.RUNNING
            if job.queue_span is not None:
                job.queue_span.end()
            dspan = self.tracer.start_span(
                "dispatch", parent=job.root_span, cat="serve",
                backend=self.backend.name, worker=worker_name,
            ) if self.tracer.enabled else None
            try:
                provenance = self.ledger.get(job.ticket)
                self.ledger.mark_started(job.ticket, worker_name)
                if self.journal is not None and job.key:
                    # Claims are flushed but not fsync'd: they only enrich
                    # recovered provenance, never gate resumption, so the
                    # hot path skips the per-job disk round-trip.
                    self.journal.append("claim", {"ticket": job.ticket,
                                                  "worker": worker_name},
                                        sync=False)
                items.append((self.shard(job.world_key), job.query, job.params,
                              provenance.observer(),
                              dspan.context if dspan is not None else None))
            except Exception as exc:
                # E.g. the world was removed after submit validated it; the
                # job must still settle or waiters hang and the claimer dies.
                if dspan is not None:
                    dspan.annotate(error=str(exc)).end()
                self._settle(job, exc)
                continue
            claimed.append(job)
            dspans.append(dspan)
        if not claimed:
            return
        outcomes = self.backend.run_many(items)
        excluded: set[int] = set()
        backoff_s = self.config.retry_backoff_base_s
        for _attempt in range(max(0, self.config.max_retries)):
            crashed = [i for i, out in enumerate(outcomes)
                       if isinstance(out, WorkerCrashed)]
            if not crashed:
                break
            # Every crash is one worker death charged to the job's
            # (world, query) signature; a signature over the crash-loop
            # threshold is quarantined instead of retried.
            excluded |= {outcomes[i].worker_index for i in crashed}
            retriable: list[int] = []
            for index in crashed:
                if self._record_crash(claimed[index],
                                      outcomes[index].worker_index):
                    retriable.append(index)
                else:
                    outcomes[index] = PoisonJobQuarantined(
                        f"{claimed[index].query!r} on world "
                        f"{claimed[index].world_key!r} exceeded the "
                        f"crash-loop threshold "
                        f"({self.config.crash_loop_threshold} worker deaths)"
                    )
            for index in retriable:
                self.ledger.mark_retried(claimed[index].ticket)
                self.metrics.counter("broker_job_retries_total").inc()
                if self.journal is not None and claimed[index].key:
                    self.journal.append(
                        "retry", {"ticket": claimed[index].ticket},
                        sync=False)
                if dspans[index] is not None:
                    dspans[index].annotate(retried=True)
            if self.flight is not None:
                # The black box saw the crash: dump before the retry runs,
                # while the dead worker's last spans are still in the ring,
                # and pin the postmortem to every retried ticket's ledger row.
                tickets = [claimed[i].ticket for i in crashed]
                self.flight.record("worker_crashed", {
                    "tickets": tickets,
                    "worker_slots": sorted(excluded),
                    "worker": worker_name,
                })
                dump_path = self.flight.dump("worker_crashed", extra={
                    "tickets": tickets,
                    "worker_slots": sorted(excluded),
                })
                for ticket in tickets:
                    try:
                        self.ledger.get(ticket).flight_dump = dump_path
                    except KeyError:
                        pass
            if not retriable:
                break
            if backoff_s > 0:
                # Decorrelated jitter: uniform(base, 3 * previous), capped.
                # Crash loops spread out instead of hammering the respawn
                # path in lockstep.
                delay = min(
                    self.config.retry_backoff_cap_s,
                    random.uniform(self.config.retry_backoff_base_s,
                                   max(self.config.retry_backoff_base_s,
                                       backoff_s * 3.0)),
                )
                time.sleep(delay)
                backoff_s = delay
            retried = self.backend.run_many(
                [items[i] for i in retriable],
                excluded_workers=tuple(excluded),
            )
            for index, outcome in zip(retriable, retried):
                outcomes[index] = outcome
        for job, outcome, dspan in zip(claimed, outcomes, dspans):
            if dspan is not None:
                dspan.end()
            self._settle(job, outcome)

    def _record_crash(self, job: Job, worker_index: int) -> bool:
        """Charge one worker death to the job's signature; ``True`` means
        the job may retry, ``False`` means the breaker tripped and the job
        now belongs to the dead-letter queue."""
        threshold = self.config.crash_loop_threshold
        sig = JournalState.signature(job.world_key, job.query)
        with self._lock:
            counts = self._poison.setdefault(sig, {"crashes": 0, "slots": set()})
            counts["crashes"] += 1
            counts["slots"].add(worker_index)
            crashes = counts["crashes"]
            slots = sorted(counts["slots"])
        if threshold <= 0 or crashes < threshold:
            return True
        self.deadletter.quarantine(
            job.world_key, job.query, key=job.key, params=job.params,
            priority=job.priority, ticket=job.ticket, crashes=crashes,
            worker_slots=slots,
            error=(f"{crashes} worker deaths; crash-loop circuit breaker "
                   "open"),
        )
        return False

    def _settle(self, job: Job, outcome) -> None:
        if isinstance(outcome, PoisonJobQuarantined):
            # _record_crash already filed the DLQ entry; this settles the
            # ticket so its waiter learns the verdict.
            job.error = f"quarantined: {outcome}"
            job.state = JobState.QUARANTINED
            self.ledger.mark_finished(job.ticket, "quarantined", job.error)
            self.metrics.counter("broker_jobs_quarantined_total").inc()
        elif isinstance(outcome, Exception):
            # A failed job must never take a worker down.
            job.error = f"{type(outcome).__name__}: {outcome}"
            job.state = JobState.FAILED
            self.ledger.mark_finished(job.ticket, "failed", job.error)
        else:
            job.result = outcome
            if outcome.execution.succeeded:
                job.state = JobState.DONE
                self.ledger.mark_finished(job.ticket, "done")
            else:
                job.error = outcome.execution.error
                job.state = JobState.FAILED
                self.ledger.mark_finished(job.ticket, "failed", job.error)
        if job.state is JobState.DONE:
            state_key = "done"
        elif job.state is JobState.QUARANTINED:
            state_key = "quarantined"
        else:
            state_key = "failed"
        with self._lock:
            self._finished_total[state_key] += 1
            if job.key:
                self._key_tickets.pop(job.key, None)
        self.metrics.counter("broker_jobs_finished_total",
                             {"state": state_key}).inc()
        if self.journal is not None and job.key:
            # The completion is the exactly-once anchor: its digest is what
            # a resumed campaign re-joins instead of re-running the job.
            completion = {
                "ticket": job.ticket, "key": job.key, "query": job.query,
                "world_key": job.world_key,
                "status": "done" if job.state is JobState.DONE else "failed",
            }
            if job.state is JobState.QUARANTINED:
                completion["quarantined"] = True
            if job.error:
                completion["error"] = job.error
            if job.state is JobState.DONE and job.result is not None:
                completion["digest"] = job.result.artifact_digest()
                final = job.result.execution.outputs.get("final")
                if final is not None:
                    completion["final"] = final
            record = self.journal.append("complete", completion)
            with self._lock:
                self._completed[job.key] = record
        self._close_spans(job, job.state.value)
        job.done.set()
        self._prune_finished()

    def _close_spans(self, job: Job, state: str) -> None:
        """Close a job's root/queue spans from any settle path; idempotent."""
        if job.queue_span is not None:
            job.queue_span.end()
        if job.root_span is not None:
            job.root_span.annotate(state=state).end()

    def _prune_finished(self) -> None:
        """Drop the oldest finished jobs beyond the retention bound.

        A pruned ticket becomes unknown to ``status``/``wait``/``result`` —
        callers that outlive ``max_retained_jobs`` submissions must collect
        results promptly (campaigns do).
        """
        victims: list[str] = []
        with self._lock:
            overshoot = len(self._jobs) - self.config.max_retained_jobs
            if overshoot > 0:
                for ticket, job in self._jobs.items():
                    if len(victims) >= overshoot:
                        break
                    if job.state in (JobState.DONE, JobState.FAILED,
                                     JobState.CANCELLED, JobState.QUARANTINED):
                        victims.append(ticket)
                for ticket in victims:
                    del self._jobs[ticket]
                    self._pruned += 1
        for ticket in victims:
            self.ledger.remove(ticket)
