"""Robust statistics primitives."""

from __future__ import annotations

import math


def median(values: list[float]) -> float:
    """Median of a non-empty list."""
    if not values:
        raise ValueError("median of empty list")
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2 == 1:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def mad(values: list[float]) -> float:
    """Median absolute deviation (unscaled)."""
    m = median(values)
    return median([abs(v - m) for v in values])


def robust_zscores(values: list[float]) -> list[float]:
    """Median/MAD z-scores; MAD scaled by 1.4826 for normal consistency.

    A zero MAD (constant series) falls back to unit scale so that a genuine
    outlier on a flat baseline still scores high rather than dividing by
    zero.
    """
    if not values:
        return []
    m = median(values)
    scale = 1.4826 * mad(values)
    if scale == 0:
        scale = 1.0
    return [(v - m) / scale for v in values]


def mean(values: list[float]) -> float:
    if not values:
        raise ValueError("mean of empty list")
    return sum(values) / len(values)


def stdev(values: list[float]) -> float:
    """Population standard deviation."""
    if not values:
        raise ValueError("stdev of empty list")
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / len(values))


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile, ``q`` in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty list")
    if not 0 <= q <= 100:
        raise ValueError("q must be within [0, 100]")
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, math.ceil(q / 100.0 * len(ordered)) - 1))
    return ordered[rank]


def summarize(values: list[float]) -> dict:
    """One-shot summary used in quality reports."""
    if not values:
        return {"count": 0}
    return {
        "count": len(values),
        "mean": round(mean(values), 4),
        "median": round(median(values), 4),
        "stdev": round(stdev(values), 4),
        "min": min(values),
        "max": max(values),
        "p05": percentile(values, 5),
        "p95": percentile(values, 95),
    }
