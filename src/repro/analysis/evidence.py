"""Evidence synthesis: combining independent analysis strands into a verdict.

The forensic workflow produces three independent strands — statistical
(latency anomaly), infrastructure (cable suspect ranking) and routing (BGP
correlation).  Synthesis combines their strengths into a calibrated
confidence plus a human-readable narrative, mirroring how the paper's case
study 4 "combines evidence from all three analyses".
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EvidenceItem:
    """One strand of evidence for or against the hypothesis."""

    kind: str  # e.g. "statistical", "infrastructure", "routing"
    description: str
    strength: float  # 0..1, how strongly this strand speaks
    supports: bool  # True = for the hypothesis, False = against

    def __post_init__(self) -> None:
        if not 0.0 <= self.strength <= 1.0:
            raise ValueError("strength must be within [0, 1]")

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "description": self.description,
            "strength": round(self.strength, 4),
            "supports": self.supports,
        }


def synthesize_evidence(items: list[EvidenceItem]) -> dict:
    """Combine evidence strands into a confidence score and verdict.

    Confidence is the mean supporting strength, discounted by the mean
    contradicting strength, floored at zero.  Independence across strands is
    rewarded: each distinct *kind* that supports adds a small diversity
    bonus, because agreement between unrelated methodologies is worth more
    than repetition within one.
    """
    if not items:
        return {
            "confidence": 0.0,
            "verdict": "insufficient_evidence",
            "supporting": 0,
            "contradicting": 0,
            "narrative": "No evidence strands were provided.",
            "items": [],
        }
    supporting = [i for i in items if i.supports]
    contradicting = [i for i in items if not i.supports]
    support = sum(i.strength for i in supporting) / len(items)
    contra = sum(i.strength for i in contradicting) / len(items)
    distinct_kinds = len({i.kind for i in supporting})
    diversity_bonus = 0.05 * max(0, distinct_kinds - 1)
    confidence = max(0.0, min(1.0, support - contra + diversity_bonus))

    if confidence >= 0.7:
        verdict = "established"
    elif confidence >= 0.4:
        verdict = "probable"
    elif confidence >= 0.15:
        verdict = "weak"
    else:
        verdict = "unsupported"

    lines = [
        f"{len(supporting)} of {len(items)} evidence strands support the hypothesis "
        f"across {distinct_kinds} independent methodologies."
    ]
    for item in sorted(items, key=lambda i: i.strength, reverse=True):
        stance = "supports" if item.supports else "contradicts"
        lines.append(f"- [{item.kind}] {stance} (strength {item.strength:.2f}): {item.description}")
    return {
        "confidence": round(confidence, 4),
        "verdict": verdict,
        "supporting": len(supporting),
        "contradicting": len(contradicting),
        "narrative": "\n".join(lines),
        "items": [i.to_dict() for i in items],
    }
