"""Temporal correlation between event streams and detected onsets."""

from __future__ import annotations


def onset_agreement(onset_a: float, onset_b: float, tolerance_s: float = 7200.0) -> dict:
    """Do two independently detected onsets agree in time?

    Returns the gap and a 0..1 agreement score that decays linearly to zero
    at ``tolerance_s``.
    """
    if tolerance_s <= 0:
        raise ValueError("tolerance must be positive")
    gap = abs(onset_a - onset_b)
    score = max(0.0, 1.0 - gap / tolerance_s)
    return {
        "onset_a": onset_a,
        "onset_b": onset_b,
        "gap_seconds": gap,
        "agreement": round(score, 4),
        "agrees": gap <= tolerance_s,
    }


def temporal_correlation(
    series_a: list[float], series_b: list[float], max_lag: int = 6
) -> dict:
    """Peak Pearson cross-correlation between two equal-step series.

    Scans lags in ``[-max_lag, max_lag]``; positive best lag means series B
    trails series A.  Series shorter than 4 overlapping points yield zero.
    """
    def pearson(a: list[float], b: list[float]) -> float:
        n = len(a)
        if n < 4:
            return 0.0
        mean_a = sum(a) / n
        mean_b = sum(b) / n
        num = sum((x - mean_a) * (y - mean_b) for x, y in zip(a, b))
        den_a = sum((x - mean_a) ** 2 for x in a) ** 0.5
        den_b = sum((y - mean_b) ** 2 for y in b) ** 0.5
        if den_a == 0 or den_b == 0:
            return 0.0
        return num / (den_a * den_b)

    best_lag = 0
    best_corr = 0.0
    for lag in range(-max_lag, max_lag + 1):
        if lag >= 0:
            a = series_a[: len(series_a) - lag] if lag else series_a
            b = series_b[lag:]
        else:
            a = series_a[-lag:]
            b = series_b[: len(series_b) + lag]
        n = min(len(a), len(b))
        corr = pearson(list(a[:n]), list(b[:n]))
        if abs(corr) > abs(best_corr):
            best_corr = corr
            best_lag = lag
    return {"best_lag": best_lag, "correlation": round(best_corr, 4)}


def count_in_window(timestamps: list[float], start: float, end: float) -> int:
    """How many timestamps fall inside ``[start, end]``."""
    if end < start:
        raise ValueError("end before start")
    return sum(1 for t in timestamps if start <= t <= end)
