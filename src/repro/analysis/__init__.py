"""Statistical and forensic analysis helpers.

The generic layer under the measurement substrates: robust statistics,
change-point detection, temporal correlation, suspect scoring and evidence
synthesis.  The forensic case study composes these into a causation
argument; SolutionWeaver's embedded quality checks reuse the same
primitives.
"""

from repro.analysis.stats import mad, median, robust_zscores, summarize
from repro.analysis.changepoint import binary_segmentation, cusum_change_point
from repro.analysis.correlate import onset_agreement, temporal_correlation
from repro.analysis.scoring import rank_suspects
from repro.analysis.evidence import EvidenceItem, synthesize_evidence

__all__ = [
    "mad",
    "median",
    "robust_zscores",
    "summarize",
    "binary_segmentation",
    "cusum_change_point",
    "onset_agreement",
    "temporal_correlation",
    "rank_suspects",
    "EvidenceItem",
    "synthesize_evidence",
]
