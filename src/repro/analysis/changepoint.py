"""Change-point detection: offline CUSUM and binary segmentation."""

from __future__ import annotations


def cusum_change_point(values: list[float], min_segment: int = 3) -> int | None:
    """Index of the most likely level shift, or ``None``.

    The change point maximises the absolute cumulative mean-adjusted sum.
    Points within ``min_segment`` of either edge are rejected — a "shift"
    supported by two samples is noise.
    """
    n = len(values)
    if n < 2 * min_segment + 2:
        return None
    mean = sum(values) / n
    cumulative = 0.0
    best_idx: int | None = None
    best_mag = 0.0
    for i, v in enumerate(values):
        cumulative += v - mean
        if abs(cumulative) > best_mag:
            best_mag = abs(cumulative)
            best_idx = i + 1
    if best_idx is None or best_idx < min_segment or best_idx > n - min_segment:
        return None
    return best_idx


def shift_magnitude(values: list[float], idx: int) -> float:
    """Difference of segment means around a split index."""
    if not 0 < idx < len(values):
        raise ValueError("split index out of range")
    before = values[:idx]
    after = values[idx:]
    return sum(after) / len(after) - sum(before) / len(before)


def binary_segmentation(
    values: list[float],
    min_segment: int = 4,
    min_shift: float = 0.0,
    max_depth: int = 4,
) -> list[int]:
    """Multiple change points by recursive splitting, sorted ascending.

    Each recursion finds the CUSUM change point of a segment and keeps it
    when the level shift magnitude exceeds ``min_shift``.
    """
    points: list[int] = []

    def recurse(lo: int, hi: int, depth: int) -> None:
        if depth > max_depth or hi - lo < 2 * min_segment + 2:
            return
        segment = values[lo:hi]
        idx = cusum_change_point(segment, min_segment)
        if idx is None:
            return
        if abs(shift_magnitude(segment, idx)) < min_shift:
            return
        split = lo + idx
        points.append(split)
        recurse(lo, split, depth + 1)
        recurse(split, hi, depth + 1)

    recurse(0, len(values), 1)
    return sorted(points)
