"""Change-point detection: offline CUSUM, binary segmentation, and the
streaming (online) CUSUM the live subsystem feeds one sample at a time."""

from __future__ import annotations

import math


def cusum_change_point(values: list[float], min_segment: int = 3) -> int | None:
    """Index of the most likely level shift, or ``None``.

    The change point maximises the absolute cumulative mean-adjusted sum.
    Points within ``min_segment`` of either edge are rejected — a "shift"
    supported by two samples is noise.
    """
    n = len(values)
    if n < 2 * min_segment + 2:
        return None
    mean = sum(values) / n
    cumulative = 0.0
    best_idx: int | None = None
    best_mag = 0.0
    for i, v in enumerate(values):
        cumulative += v - mean
        if abs(cumulative) > best_mag:
            best_mag = abs(cumulative)
            best_idx = i + 1
    if best_idx is None or best_idx < min_segment or best_idx > n - min_segment:
        return None
    return best_idx


def shift_magnitude(values: list[float], idx: int) -> float:
    """Difference of segment means around a split index."""
    if not 0 < idx < len(values):
        raise ValueError("split index out of range")
    before = values[:idx]
    after = values[idx:]
    return sum(after) / len(after) - sum(before) / len(before)


def binary_segmentation(
    values: list[float],
    min_segment: int = 4,
    min_shift: float = 0.0,
    max_depth: int = 4,
) -> list[int]:
    """Multiple change points by recursive splitting, sorted ascending.

    Each recursion finds the CUSUM change point of a segment and keeps it
    when the level shift magnitude exceeds ``min_shift``.
    """
    points: list[int] = []

    def recurse(lo: int, hi: int, depth: int) -> None:
        if depth > max_depth or hi - lo < 2 * min_segment + 2:
            return
        segment = values[lo:hi]
        idx = cusum_change_point(segment, min_segment)
        if idx is None:
            return
        if abs(shift_magnitude(segment, idx)) < min_shift:
            return
        split = lo + idx
        points.append(split)
        recurse(lo, split, depth + 1)
        recurse(split, hi, depth + 1)

    recurse(0, len(values), 1)
    return sorted(points)


class StreamingCUSUM:
    """Online two-sided CUSUM over a stream of samples.

    The first ``warmup`` samples establish a baseline mean and deviation
    (Welford's algorithm); after that each sample is standardized against
    the baseline and fed into the classic one-sided CUSUM pair

        S+ = max(0, S+ + z - drift)        S- = max(0, S- - z - drift)

    :meth:`update` returns ``True`` on the sample where either statistic
    crosses ``threshold``.  After an alarm the detector re-baselines from
    the post-shift level, so a second genuine shift later in the stream is
    detected again rather than drowned by the first.
    """

    def __init__(self, warmup: int = 8, threshold: float = 5.0, drift: float = 0.5):
        if warmup < 2:
            raise ValueError("warmup must be >= 2")
        if threshold <= 0 or drift < 0:
            raise ValueError("threshold must be positive and drift non-negative")
        self.warmup = warmup
        self.threshold = threshold
        self.drift = drift
        self.samples_seen = 0
        self.alarms = 0
        self._reset_baseline()

    def _reset_baseline(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._pos = 0.0
        self._neg = 0.0

    @property
    def baseline_mean(self) -> float:
        return self._mean

    @property
    def baseline_std(self) -> float:
        if self._count < 2:
            return 0.0
        return math.sqrt(self._m2 / (self._count - 1))

    @property
    def warmed_up(self) -> bool:
        return self._count >= self.warmup

    def update(self, value: float) -> bool:
        """Feed one sample; ``True`` when a level shift is detected here."""
        self.samples_seen += 1
        if not self.warmed_up:
            self._count += 1
            delta = value - self._mean
            self._mean += delta / self._count
            self._m2 += delta * (value - self._mean)
            return False
        # Floor the scale so a near-constant baseline still yields a finite
        # standardized deviation instead of a division blow-up.
        scale = max(self.baseline_std, 1e-9, abs(self._mean) * 1e-6)
        z = (value - self._mean) / scale
        self._pos = max(0.0, self._pos + z - self.drift)
        self._neg = max(0.0, self._neg - z - self.drift)
        if self._pos > self.threshold or self._neg > self.threshold:
            self.alarms += 1
            self._reset_baseline()
            return True
        return False
