"""Suspect scoring: weighted feature combination with normalised output."""

from __future__ import annotations


def rank_suspects(
    feature_rows: list[dict],
    weights: dict[str, float],
    id_key: str = "id",
) -> list[dict]:
    """Rank suspects by a weighted sum of min-max-normalised features.

    ``feature_rows`` is a list of ``{id_key: ..., feature: value, ...}``.
    Missing features count as zero.  Output rows carry the normalised
    ``score`` (top suspect scores 1.0 when it dominates every feature) and
    per-feature contributions for explainability — the paper stresses
    interpretable architectural decisions.
    """
    if not feature_rows:
        return []
    if not weights:
        raise ValueError("at least one feature weight required")

    spans: dict[str, tuple[float, float]] = {}
    for feature in weights:
        values = [float(row.get(feature, 0.0)) for row in feature_rows]
        spans[feature] = (min(values), max(values))

    total_weight = sum(abs(w) for w in weights.values())
    ranked: list[dict] = []
    for row in feature_rows:
        contributions: dict[str, float] = {}
        score = 0.0
        for feature, weight in weights.items():
            lo, hi = spans[feature]
            raw = float(row.get(feature, 0.0))
            normalised = (raw - lo) / (hi - lo) if hi > lo else 0.0
            contribution = weight * normalised / total_weight if total_weight else 0.0
            contributions[feature] = round(contribution, 6)
            score += contribution
        ranked.append(
            {
                id_key: row[id_key],
                "score": round(score, 6),
                "contributions": contributions,
                "features": {f: row.get(f, 0.0) for f in weights},
            }
        )
    ranked.sort(key=lambda r: r["score"], reverse=True)
    return ranked


def score_gap(ranked: list[dict]) -> float:
    """Relative gap between the top two scores (1.0 = unambiguous leader).

    Confidence in "the specific cable" (case study 4) hinges on this margin:
    a forensic verdict with two near-tied suspects is not a verdict.
    """
    if not ranked:
        return 0.0
    if len(ranked) == 1:
        return 1.0
    top = ranked[0]["score"]
    runner_up = ranked[1]["score"]
    if top <= 0:
        return 0.0
    return (top - runner_up) / top
