"""Expert solution for case study 4: latency root-cause forensics.

The specialist runs the same three-strand investigation the paper
describes: statistical anomaly detection on latency series with
significance testing; infrastructure correlation scoring suspect cables by
vanished-link evidence; and BGP validation of the timing — synthesised via
the evidence library into a confidence-scored verdict naming the cable.
"""

from __future__ import annotations

from repro.analysis.evidence import EvidenceItem, synthesize_evidence
from repro.analysis.scoring import rank_suspects, score_gap
from repro.bgp.api import (
    correlate_updates_with_window,
    detect_routing_anomalies,
    fetch_updates,
)
from repro.nautilus.api import map_ip_links_to_cables
from repro.traceroute.api import detect_latency_anomalies, latency_series, run_campaign
from repro.synth.world import SyntheticWorld

STAGE_KINDS = frozenset(
    {
        "latency_collection",
        "series_aggregation",
        "anomaly_detection",
        "anomaly_summary",
        "cross_layer_mapping",
        "suspect_scoring",
        "routing_collection",
        "routing_anomaly_detection",
        "temporal_correlation",
        "evidence_synthesis",
    }
)


def _vanished_link_votes(measurements: list[dict], affected: set[str], onset: float) -> dict[str, int]:
    """Links present on anomalous paths before the onset but absent after."""
    pre: dict[str, set[str]] = {}
    post: dict[str, set[str]] = {}
    for row in measurements:
        pair = f"{row['src_country']}->{row['dst_country']}"
        if pair not in affected:
            continue
        bucket = pre if row["ts"] < onset else post
        bucket.setdefault(pair, set()).update(row.get("link_ids", []))
    votes: dict[str, int] = {}
    for pair, links_before in pre.items():
        for link_id in links_before - post.get(pair, set()):
            votes[link_id] = votes.get(link_id, 0) + 1
    return votes


def expert_forensic_investigation(
    world: SyntheticWorld,
    incidents: list,
    src_region: str = "europe",
    dst_region: str = "asia",
    window: tuple[float, float] = (0.0, 604_800.0),
) -> dict:
    """Root-cause the latency increase, the specialist way."""
    # Strand 1: statistical anomaly detection.
    measurements = run_campaign(
        world, src_region, dst_region, window[0], window[1],
        interval_s=3600.0, incidents=incidents,
    )
    series = latency_series(measurements, group_by="pair")
    anomalies = detect_latency_anomalies(series)
    significant = [a for a in anomalies if a["significant"]]
    onset = None
    if significant:
        onsets = sorted(a["onset_ts"] for a in significant)
        onset = onsets[len(onsets) // 2]

    # Strand 2: infrastructure correlation via vanished-link scoring.
    mappings = map_ip_links_to_cables(world)
    ranked: list[dict] = []
    margin = 0.0
    if onset is not None:
        affected = {a["series_key"] for a in significant}
        votes = _vanished_link_votes(measurements, affected, onset)
        features: dict[str, dict] = {}
        names: dict[str, str | None] = {}
        for link_id, count in votes.items():
            row = mappings.get(link_id)
            if not row:
                continue
            candidates = row.get("candidates", [])
            total = sum(c["score"] for c in candidates) or 1.0
            for candidate in candidates:
                cid = candidate["cable_id"]
                feature = features.setdefault(cid, {"id": cid, "votes": 0.0})
                feature["votes"] += count * candidate["score"] / total
                names.setdefault(cid, row.get("cable_name") if row.get("cable_id") == cid else None)
        ranked = rank_suspects(list(features.values()), weights={"votes": 1.0})
        margin = score_gap(ranked)
        for entry in ranked:
            entry["cable_name"] = names.get(entry["id"]) or world.cables[entry["id"]].name

    # Strand 3: BGP validation.
    updates = fetch_updates(world, window[0], window[1], incidents=incidents)
    bgp_anomalies = detect_routing_anomalies(updates, window[0], window[1])
    correlation = {"correlated": False, "rate_ratio": 0.0}
    if onset is not None:
        correlation = correlate_updates_with_window(updates, onset, onset + 3600.0)

    # Evidence synthesis.
    items = [
        EvidenceItem(
            kind="statistical",
            description=f"{len(significant)} significant latency anomalies",
            strength=min(1.0, len(significant) / 5.0) if significant else 0.0,
            supports=bool(significant),
        ),
        EvidenceItem(
            kind="infrastructure",
            description="suspect cable ranking margin",
            strength=min(1.0, 0.5 + margin / 2.0) if ranked else 0.0,
            supports=bool(ranked),
        ),
        EvidenceItem(
            kind="routing",
            description="BGP burst temporally correlated with onset",
            strength=0.8 if correlation.get("correlated") else 0.1,
            supports=bool(correlation.get("correlated")),
        ),
    ]
    synthesis = synthesize_evidence(items)

    top = ranked[0] if ranked else None
    return {
        "title": "Latency root-cause investigation (expert)",
        "anomalies": anomalies,
        "significant_count": len(significant),
        "onset_estimate": onset,
        "suspect_ranking": ranked,
        "identified_cable_id": top["id"] if top else None,
        "identified_cable_name": top["cable_name"] if top else None,
        "margin": margin,
        "bgp_anomalies": bgp_anomalies[:5],
        "bgp_correlation": correlation,
        "confidence": synthesis["confidence"],
        "verdict": synthesis["verdict"],
        "narrative": synthesis["narrative"],
        "stage_kinds": sorted(STAGE_KINDS),
    }
