"""Expert solution for case study 1: cable failure → country-level impact.

The Xaminer way (§4.1): cross-layer mapping feeds dependency extraction,
the failed-link set drives the impact engine, and the embedding module
produces normalised country metrics.  Contrast with the generated solution,
which — lacking Xaminer — builds a direct aggregation pipeline; both must
arrive at similar country rankings.
"""

from __future__ import annotations

from repro.nautilus.dependencies import extract_cable_dependencies
from repro.nautilus.mapping import CrossLayerMapper
from repro.xaminer.aggregate import rank_countries
from repro.xaminer.impact import compute_impact
from repro.synth.world import SyntheticWorld

#: Canonical analysis stages this workflow performs, for overlap scoring.
STAGE_KINDS = frozenset(
    {
        "dependency_resolution",
        "cross_layer_mapping",
        "geographic_mapping",
        "country_aggregation",
        "impact_ranking",
        "report",
    }
)


def expert_cable_country_impact(world: SyntheticWorld, cable_name: str) -> dict:
    """Country-level impact of one cable failure, the specialist way."""
    cable = world.cable_named(cable_name)
    mapper = CrossLayerMapper(world)
    mappings = mapper.map_all()
    dependencies = extract_cable_dependencies(world, cable.id, mappings)
    report = compute_impact(world, dependencies.link_ids)
    ranking = rank_countries(report)
    affected_counts = [
        {
            "country": impact.country_code,
            "links_affected": impact.links_affected,
            "ips_affected": impact.ips_affected,
            "capacity_lost_gbps": round(impact.capacity_lost_gbps, 1),
        }
        for impact in report.ranked_countries()
        if impact.links_affected > 0
    ]
    return {
        "title": f"Country-level impact of {cable.name} failure (expert)",
        "cable_id": cable.id,
        "cable_name": cable.name,
        "ranking": ranking,
        "affected_counts": affected_counts,
        "failed_link_ids": dependencies.link_ids,
        "affected_countries": dependencies.country_codes,
        "isolated_asns": report.isolated_asns,
        "stage_kinds": sorted(STAGE_KINDS),
    }
