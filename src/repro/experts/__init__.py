"""Expert baseline workflows — the paper's comparison targets.

Each module is the solution a measurement specialist would hand-write for
one case study, using the substrate frameworks directly (Xaminer's
abstractions, the full cascade simulator, the analysis library).  The
evaluation harness compares ArachNet's generated workflows against these on
functional overlap and result similarity, mirroring §4's "detailed technical
comparison".
"""

from repro.experts.case1_cable_impact import expert_cable_country_impact
from repro.experts.case2_disasters import expert_multi_disaster_impact
from repro.experts.case3_cascade import expert_cascade_analysis
from repro.experts.case4_forensics import expert_forensic_investigation

__all__ = [
    "expert_cable_country_impact",
    "expert_multi_disaster_impact",
    "expert_cascade_analysis",
    "expert_forensic_investigation",
]
