"""Expert solution for case study 2: global multi-disaster impact.

The specialist recognises that Xaminer's event processor handles every
disaster kind, iterates it per severe event at the requested failure
probability, and merges the reports — exactly the "skilled restraint" the
paper contrasts with over-engineered multi-framework alternatives.
"""

from __future__ import annotations

from repro.xaminer.api import combine_impact_reports, process_event
from repro.synth.scenarios import default_disaster_catalog
from repro.synth.world import SyntheticWorld

STAGE_KINDS = frozenset(
    {
        "event_catalog",
        "event_partitioning",
        "event_processing",
        "report_combination",
        "report",
    }
)


def expert_multi_disaster_impact(
    world: SyntheticWorld,
    failure_probability: float = 0.1,
    seed: int = 0,
    severe_only: bool = True,
) -> dict:
    """Global impact of severe earthquakes and hurricanes, the specialist way."""
    events = [
        event
        for event in default_disaster_catalog()
        if (event.is_severe or not severe_only)
        and event.kind.value in ("earthquake", "hurricane")
    ]
    per_event = [
        process_event(world, event, failure_probability=failure_probability, seed=seed)
        for event in events
    ]
    combined = combine_impact_reports(per_event)
    return {
        "title": "Global multi-disaster impact (expert)",
        "events_processed": len(per_event),
        "per_event": per_event,
        "combined": combined,
        "ranking": combined["country_ranking"],
        "failed_cable_ids": combined["failed_cable_ids"],
        "stage_kinds": sorted(STAGE_KINDS),
    }
