"""Expert solution for case study 3: Europe–Asia cascading failure analysis.

The specialist integrates four systems by hand: cartography scopes corridor
cables and maps links; the impact engine quantifies first-order damage; the
full load-redistribution cascade simulator propagates secondary failures;
BGP and traceroute capture the temporal evolution; and a synthesis step
builds the unified cross-layer timeline — the "days of manual coordination"
the paper describes.
"""

from __future__ import annotations

from repro.bgp.api import fetch_updates, summarize_path_changes
from repro.nautilus.dependencies import cables_between_regions, extract_cable_dependencies
from repro.nautilus.mapping import CrossLayerMapper
from repro.topology.cascade import propagate_cascade
from repro.traceroute.api import latency_series, run_campaign
from repro.xaminer.aggregate import rank_countries
from repro.xaminer.impact import compute_impact
from repro.synth.geography import Region
from repro.synth.world import SyntheticWorld

STAGE_KINDS = frozenset(
    {
        "cable_inventory",
        "geographic_scoping",
        "cross_layer_mapping",
        "failure_derivation",
        "event_processing",
        "report_combination",
        "cascade_modeling",
        "routing_collection",
        "route_change_analysis",
        "latency_collection",
        "series_aggregation",
        "cross_layer_synthesis",
    }
)


def expert_cascade_analysis(
    world: SyntheticWorld,
    src_region: Region = Region.EUROPE,
    dst_region: Region = Region.ASIA,
    window: tuple[float, float] = (0.0, 604_800.0),
    incidents: list | None = None,
) -> dict:
    """Cascading effects of corridor cable failures, the specialist way."""
    corridor = cables_between_regions(world, src_region, dst_region)
    mapper = CrossLayerMapper(world)
    mappings = mapper.map_all()

    failed_links: set[str] = set()
    for cable_id in corridor:
        deps = extract_cable_dependencies(world, cable_id, mappings)
        failed_links.update(deps.link_ids)

    impact = compute_impact(world, sorted(failed_links))
    cascade = propagate_cascade(
        world,
        initial_failed_link_ids=sorted(failed_links),
        initial_cable_ids=sorted(corridor),
    )

    updates = fetch_updates(world, window[0], window[1], incidents=incidents or [])
    path_changes = summarize_path_changes(updates)
    measurements = run_campaign(
        world, src_region.value, dst_region.value, window[0], window[1],
        interval_s=21_600.0, incidents=incidents or [],
    )
    series = latency_series(measurements)

    timeline = cascade.timeline()
    for change in path_changes["changes"][:100]:
        timeline.append(
            {"round": 1, "layer": "as", "event": "path_change", "id": change["prefix"]}
        )
    layer_counts: dict[str, int] = {}
    for event in timeline:
        layer_counts[event["layer"]] = layer_counts.get(event["layer"], 0) + 1

    return {
        "title": f"Cascading failures {src_region.value}->{dst_region.value} (expert)",
        "corridor_cables": sorted(world.cables[cid].name for cid in corridor),
        "initial_failed_links": sorted(failed_links),
        "country_ranking": rank_countries(impact),
        "cascade_rounds": cascade.total_rounds,
        "cascade": cascade.to_dict(),
        "timeline": timeline,
        "layer_counts": layer_counts,
        "path_changes": {"changed": path_changes["changed_count"],
                         "lost": path_changes["lost_count"]},
        "latency_pairs": len(series),
        "stage_kinds": sorted(STAGE_KINDS),
    }
