"""Valley-free policy routing over the AS graph.

Implements the Gao-Rexford export model: a path climbs customer→provider
edges, crosses at most one peering edge, then descends provider→customer.
Shortest valley-free paths drive both the BGP collector simulation (AS paths
in announcements) and the traceroute substrate (which IP links a probe's
packets traverse).

The module also provides the *incremental* convergence primitives the BGP
collector builds on: removing adjacencies from the graph can only change
routes whose recorded best path crossed a removed adjacency (removal never
creates paths, and the BFS tie-break is deterministic), so re-convergence
only needs to recompute the **affected frontier** — the sources with at
least one crossing path — and can share every other source's table with
the baseline structurally.  :func:`path_crosses` and
:func:`path_adjacencies` are the crossing predicates that frontier is
built from, and ``ValleyFreeRouter(dead_pairs=...)`` routes around severed
edges without materialising a pruned graph.
"""

from __future__ import annotations

from collections import deque

from repro.topology.relations import ASGraph

#: Phases of a valley-free walk, in the direction source → destination.
_CLIMBING = 0  # still allowed to go up or take the single lateral step
_DESCENDING = 1  # only provider→customer edges remain legal


def path_crosses(path: tuple[int, ...], dead_pairs: set[tuple[int, int]]) -> bool:
    """Whether an AS path traverses any severed adjacency.

    ``dead_pairs`` holds normalised ``(min, max)`` tuples — the output of
    :func:`repro.topology.relations.failed_as_pairs`.
    """
    for a, b in zip(path, path[1:]):
        if ((a, b) if a < b else (b, a)) in dead_pairs:
            return True
    return False


def path_adjacencies(path: tuple[int, ...]) -> set[tuple[int, int]]:
    """The normalised adjacency pairs one path traverses."""
    return {((a, b) if a < b else (b, a)) for a, b in zip(path, path[1:])}


class ValleyFreeRouter:
    """Single-source shortest valley-free paths with deterministic tie-breaks.

    ``dead_pairs`` (normalised ``(min, max)`` adjacencies) routes *around*
    severed edges without copying the graph — incremental re-convergence
    builds one filtered router per failure set instead of materialising a
    pruned :class:`ASGraph`, and only the nodes the BFS actually visits pay
    for adjacency sorting and filtering.
    """

    def __init__(self, graph: ASGraph, dead_pairs: set[tuple[int, int]] | None = None):
        self._graph = graph
        self._dead_pairs = dead_pairs or None
        self._cache: dict[int, dict[int, tuple[int, ...]]] = {}
        # Sorted (and dead-pair-filtered) adjacency computed once per router:
        # neighbour expansion order decides tie-breaks, and re-sorting sets
        # at every node visit dominated the BFS profile.
        self._providers: dict[int, list[int]] = {}
        self._customers: dict[int, list[int]] = {}
        self._peers: dict[int, list[int]] = {}

    def _filtered(self, asn: int, neighbours) -> list[int]:
        dead = self._dead_pairs
        if not dead:
            return sorted(neighbours)
        return sorted(
            n for n in neighbours
            if ((asn, n) if asn < n else (n, asn)) not in dead
        )

    def _adjacency(self, asn: int) -> tuple[list[int], list[int], list[int]]:
        providers = self._providers.get(asn)
        if providers is None:
            graph = self._graph
            providers = self._providers[asn] = self._filtered(asn, graph.providers[asn])
            self._customers[asn] = self._filtered(asn, graph.customers[asn])
            self._peers[asn] = self._filtered(asn, graph.peers[asn])
        return providers, self._customers[asn], self._peers[asn]

    def paths_from(self, src: int) -> dict[int, tuple[int, ...]]:
        """Shortest valley-free path from ``src`` to every reachable AS.

        BFS over ``(asn, phase)`` states; neighbour expansion is sorted so
        equal-length paths resolve identically across runs.
        """
        if src in self._cache:
            return self._cache[src]
        if src not in self._graph.all_asns:
            raise KeyError(f"unknown AS {src}")

        best: dict[tuple[int, int], tuple[int, ...]] = {(src, _CLIMBING): (src,)}
        result: dict[int, tuple[int, ...]] = {src: (src,)}
        queue: deque[tuple[int, int]] = deque([(src, _CLIMBING)])

        while queue:
            asn, phase = queue.popleft()
            path = best[(asn, phase)]
            providers, customers, peers = self._adjacency(asn)
            candidates: list[tuple[int, int]] = []
            if phase == _CLIMBING:
                candidates.extend((p, _CLIMBING) for p in providers)
                candidates.extend((p, _DESCENDING) for p in peers)
            candidates.extend((c, _DESCENDING) for c in customers)

            for nxt, nxt_phase in candidates:
                if nxt in path:
                    continue  # no loops
                state = (nxt, nxt_phase)
                if state in best:
                    continue
                new_path = path + (nxt,)
                best[state] = new_path
                if nxt not in result or len(new_path) < len(result[nxt]):
                    result[nxt] = new_path
                queue.append(state)

        self._cache[src] = result
        return result

    def best_path(self, src: int, dst: int) -> tuple[int, ...] | None:
        """Shortest valley-free path, or ``None`` when policy forbids any."""
        return self.paths_from(src).get(dst)

    def reachable_from(self, src: int) -> set[int]:
        return set(self.paths_from(src).keys())

    def invalidate(self) -> None:
        """Drop cached paths and adjacency (call after mutating the graph)."""
        self._cache.clear()
        self._providers.clear()
        self._customers.clear()
        self._peers.clear()
