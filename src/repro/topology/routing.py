"""Valley-free policy routing over the AS graph — raw-speed core.

Implements the Gao-Rexford export model: a path climbs customer→provider
edges, crosses at most one peering edge, then descends provider→customer.
Shortest valley-free paths drive both the BGP collector simulation (AS paths
in announcements) and the traceroute substrate (which IP links a probe's
packets traverse).

The hot engine is :class:`RoutingIndex`: ASNs are interned to dense int ids
once per graph (sorted, so index order *is* ASN order and the legacy
sorted-neighbour tie-breaks survive interning), and the typed adjacency is
flattened into CSR-style per-state candidate rows — ``state = node*2 +
phase`` with phase 0 (climbing: providers, then peers, then customers) and
phase 1 (descending: customers only).  The BFS then relaxes whole FIFO
frontiers over plain int lists: claim checks are single list subscripts,
paths are built by tuple concatenation at claim time, and severed
adjacencies are filtered per-row only at nodes a dead pair touches.  The
result is byte-identical to :class:`LegacyValleyFreeRouter` (property-tested)
at a fraction of the cost — no per-candidate tuple hashing, no per-visit
neighbour sorting.

The module also provides the *incremental* convergence primitives the BGP
collector builds on: removing adjacencies from the graph can only change
routes whose recorded best path crossed a removed adjacency (removal never
creates paths, and the BFS tie-break is deterministic), so re-convergence
only needs to recompute the **affected frontier** — and, per-origin, only
the (peer, prefix) rows whose path actually crossed.  :func:`path_crosses`
and :func:`path_adjacencies` are the crossing predicates that frontier is
built from, and ``ValleyFreeRouter(dead_pairs=...)`` routes around severed
edges without materialising a pruned graph.
"""

from __future__ import annotations

import threading
from collections import deque

from repro.topology.relations import ASGraph

#: Phases of a valley-free walk, in the direction source → destination.
_CLIMBING = 0  # still allowed to go up or take the single lateral step
_DESCENDING = 1  # only provider→customer edges remain legal


def path_crosses(path: tuple[int, ...], dead_pairs: set[tuple[int, int]]) -> bool:
    """Whether an AS path traverses any severed adjacency.

    ``dead_pairs`` holds normalised ``(min, max)`` tuples — the output of
    :func:`repro.topology.relations.failed_as_pairs`.
    """
    for a, b in zip(path, path[1:]):
        if ((a, b) if a < b else (b, a)) in dead_pairs:
            return True
    return False


def path_adjacencies(path: tuple[int, ...]) -> set[tuple[int, int]]:
    """The normalised adjacency pairs one path traverses."""
    return {((a, b) if a < b else (b, a)) for a, b in zip(path, path[1:])}


class RoutingIndex:
    """Int-interned, relationship-typed adjacency for batched valley-free SPF.

    Built once per :class:`ASGraph` (see :func:`shared_index`) and reused by
    every router / failure set over that graph.  Layout:

    * ``asns`` — sorted ASN list; ``index_of`` its inverse.  Sorting makes
      dense-id order equal ASN order, which preserves the legacy router's
      sorted-neighbour expansion (and therefore its deterministic
      tie-breaks) after interning.
    * ``rows[state]`` — the CSR row for ``state = node_id*2 + phase``: a
      flat tuple of successor *states* in legacy expansion order
      (climbing: providers asc, peers asc, customers asc; descending:
      customers asc).  One tuple subscript replaces three dict lookups,
      three sorts and a phase branch per visit.
    * ``state_asn[state]`` — interned id back to ASN without a shift+index.

    The per-source BFS (:meth:`paths_from`) relaxes the FIFO frontier level
    by level over these rows; dead adjacencies are filtered lazily, only at
    rows whose node touches a severed pair, so the common no-failure sweep
    never pays a membership test.
    """

    def __init__(self, graph: ASGraph):
        asns = sorted(graph.all_asns)
        self.asns = asns
        self.index_of = {asn: i for i, asn in enumerate(asns)}
        self.n = len(asns)
        idx = self.index_of
        rows: list[tuple[int, ...]] = []
        state_asn: list[int] = []
        for asn in asns:
            prov = sorted(idx[p] for p in graph.providers[asn])
            peer = sorted(idx[p] for p in graph.peers[asn])
            cust = sorted(idx[c] for c in graph.customers[asn])
            climbing = tuple(
                [p * 2 for p in prov]
                + [p * 2 + 1 for p in peer]
                + [c * 2 + 1 for c in cust]
            )
            descending = tuple(c * 2 + 1 for c in cust)
            rows.append(climbing)
            rows.append(descending)
            state_asn.append(asn)
            state_asn.append(asn)
        self.rows = rows
        self.state_asn = state_asn
        # Leaf states (empty rows) are claimed but never expand — skipping
        # their enqueue shrinks the frontier loop by the stub-AS population.
        self.has_row = [bool(row) for row in rows]

    def intern_pairs(
        self, dead_pairs
    ) -> frozenset[tuple[int, int]] | None:
        """Normalised ASN adjacency pairs → normalised dense-id pairs."""
        if not dead_pairs:
            return None
        idx = self.index_of
        out = set()
        for a, b in dead_pairs:
            ia = idx.get(a)
            ib = idx.get(b)
            if ia is None or ib is None:
                continue  # adjacency outside this graph cannot affect it
            out.add((ia, ib) if ia < ib else (ib, ia))
        return frozenset(out) or None

    def filtered_rows(
        self, dead_idx_pairs: frozenset[tuple[int, int]] | None
    ) -> list[tuple[int, ...]]:
        """The row array with severed adjacencies removed.

        Only the rows of nodes a dead pair touches are rebuilt (everything
        else aliases the shared array), and the result is computed *once
        per failure set* and shared across every source sweep — the batching
        that lets the per-source BFS run with zero dead-pair checks in its
        inner loop.
        """
        if not dead_idx_pairs:
            return self.rows
        rows = list(self.rows)
        touched = set()
        for a, b in dead_idx_pairs:
            touched.add(a)
            touched.add(b)
        for node in touched:
            for state in (node * 2, node * 2 + 1):
                row = rows[state]
                if row:
                    rows[state] = tuple(
                        t for t in row
                        if ((node, t >> 1) if node < t >> 1 else (t >> 1, node))
                        not in dead_idx_pairs
                    )
        return rows

    def paths_over(
        self, src: int, rows: list[tuple[int, ...]]
    ) -> dict[int, tuple[int, ...]]:
        """Shortest valley-free path from ``src`` to every reachable AS,
        over a (possibly dead-pair-filtered) row array.

        Byte-identical to the legacy BFS: FIFO frontier relaxation keeps
        level order, row order keeps the sorted tie-breaks, and the first
        claim of a node is its best path.  (Iterating ``queue`` while
        appending to it is the CPython list-BFS idiom: the iterator indexes
        the growing list, so appended states are visited in FIFO order.)
        """
        src_idx = self.index_of.get(src)
        if src_idx is None:
            raise KeyError(f"unknown AS {src}")
        state_asn = self.state_asn
        has_row = self.has_row
        spaths: list[tuple[int, ...] | None] = [None] * (2 * self.n)
        src_state = src_idx * 2
        first = (src,)
        spaths[src_state] = first
        result = {src: first}
        setdefault = result.setdefault
        queue = [src_state]
        qappend = queue.append
        for state in queue:
            path = spaths[state]
            for t in rows[state]:
                if spaths[t] is not None:
                    continue
                asn = state_asn[t]
                # No loops.  The tuple scan is exact but gated: every ASN on
                # ``path`` has a claimed state, and ``t`` itself is not
                # claimed, so ``asn`` can only appear on ``path`` when its
                # *other* phase state (``t ^ 1``) is — a cheap list probe.
                if spaths[t ^ 1] is not None and asn in path:
                    continue
                new_path = path + (asn,)
                spaths[t] = new_path
                setdefault(asn, new_path)
                if has_row[t]:
                    qappend(t)
        return result

    def paths_from(
        self,
        src: int,
        dead_idx_pairs: frozenset[tuple[int, int]] | None = None,
    ) -> dict[int, tuple[int, ...]]:
        """Single-source convenience over :meth:`paths_over`; batched callers
        should hoist :meth:`filtered_rows` and share it across sources."""
        return self.paths_over(src, self.filtered_rows(dead_idx_pairs))

    def tables_for(
        self,
        sources,
        dead_pairs=None,
    ) -> dict[int, dict[int, tuple[int, ...]]]:
        """Batched multi-origin SPF: one call converges every source.

        ``dead_pairs`` holds normalised ASN pairs (as produced by
        :class:`~repro.topology.relations.AdjacencyIndex`); they are interned
        and row-filtered once, shared across all source sweeps.
        """
        rows = self.filtered_rows(self.intern_pairs(dead_pairs))
        return {src: self.paths_over(src, rows) for src in sources}


_SHARED_INDEX_LOCK = threading.Lock()


def shared_index(graph: ASGraph) -> RoutingIndex:
    """One :class:`RoutingIndex` per graph, memoized on the graph object.

    Interning is the only O(edges) cost of the fast engine; every router and
    every failure set over the same graph then reuses the rows.  Safe across
    threads (collectors are shared between serve workers): the index is
    immutable after construction, and the lock only guards the publish.
    """
    index = getattr(graph, "_routing_index", None)
    if index is None:
        with _SHARED_INDEX_LOCK:
            index = getattr(graph, "_routing_index", None)
            if index is None:
                index = RoutingIndex(graph)
                graph._routing_index = index
    return index


class ValleyFreeRouter:
    """Single-source shortest valley-free paths with deterministic tie-breaks.

    Thin per-failure-set view over the graph's shared :class:`RoutingIndex`:
    construction costs one dead-pair interning (no adjacency copying, no
    sorting), and ``dead_pairs`` (normalised ``(min, max)`` adjacencies)
    routes *around* severed edges without materialising a pruned
    :class:`ASGraph`.  Paths are memoized per source for the router's
    lifetime, exactly like the legacy router.
    """

    def __init__(self, graph: ASGraph, dead_pairs: set[tuple[int, int]] | None = None):
        self._graph = graph
        self._dead_pairs = dead_pairs or None
        self._index = shared_index(graph)
        self._rows = self._index.filtered_rows(self._index.intern_pairs(dead_pairs))
        self._cache: dict[int, dict[int, tuple[int, ...]]] = {}

    def paths_from(self, src: int) -> dict[int, tuple[int, ...]]:
        """Shortest valley-free path from ``src`` to every reachable AS."""
        cached = self._cache.get(src)
        if cached is None:
            cached = self._cache[src] = self._index.paths_over(src, self._rows)
        return cached

    def best_path(self, src: int, dst: int) -> tuple[int, ...] | None:
        """Shortest valley-free path, or ``None`` when policy forbids any."""
        return self.paths_from(src).get(dst)

    def reachable_from(self, src: int) -> set[int]:
        return set(self.paths_from(src).keys())

    def invalidate(self) -> None:
        """Drop cached paths and re-intern (call after mutating the graph)."""
        self._cache.clear()
        with _SHARED_INDEX_LOCK:
            index = RoutingIndex(self._graph)
            self._graph._routing_index = index
        self._index = index
        self._rows = index.filtered_rows(index.intern_pairs(self._dead_pairs))


class LegacyValleyFreeRouter:
    """The pre-interning reference router: per-peer dict walks over
    ``(asn, phase)`` tuple states.

    Kept verbatim as the semantic oracle — the property suite asserts the
    fast engine is byte-identical to this one, and the routing benchmark's
    engine section measures the fast core against it.
    """

    def __init__(self, graph: ASGraph, dead_pairs: set[tuple[int, int]] | None = None):
        self._graph = graph
        self._dead_pairs = dead_pairs or None
        self._cache: dict[int, dict[int, tuple[int, ...]]] = {}
        # Sorted (and dead-pair-filtered) adjacency computed once per router:
        # neighbour expansion order decides tie-breaks, and re-sorting sets
        # at every node visit dominated the BFS profile.
        self._providers: dict[int, list[int]] = {}
        self._customers: dict[int, list[int]] = {}
        self._peers: dict[int, list[int]] = {}

    def _filtered(self, asn: int, neighbours) -> list[int]:
        dead = self._dead_pairs
        if not dead:
            return sorted(neighbours)
        return sorted(
            n for n in neighbours
            if ((asn, n) if asn < n else (n, asn)) not in dead
        )

    def _adjacency(self, asn: int) -> tuple[list[int], list[int], list[int]]:
        providers = self._providers.get(asn)
        if providers is None:
            graph = self._graph
            providers = self._providers[asn] = self._filtered(asn, graph.providers[asn])
            self._customers[asn] = self._filtered(asn, graph.customers[asn])
            self._peers[asn] = self._filtered(asn, graph.peers[asn])
        return providers, self._customers[asn], self._peers[asn]

    def paths_from(self, src: int) -> dict[int, tuple[int, ...]]:
        """Shortest valley-free path from ``src`` to every reachable AS.

        BFS over ``(asn, phase)`` states; neighbour expansion is sorted so
        equal-length paths resolve identically across runs.
        """
        if src in self._cache:
            return self._cache[src]
        if src not in self._graph.all_asns:
            raise KeyError(f"unknown AS {src}")

        best: dict[tuple[int, int], tuple[int, ...]] = {(src, _CLIMBING): (src,)}
        result: dict[int, tuple[int, ...]] = {src: (src,)}
        queue: deque[tuple[int, int]] = deque([(src, _CLIMBING)])

        while queue:
            asn, phase = queue.popleft()
            path = best[(asn, phase)]
            providers, customers, peers = self._adjacency(asn)
            candidates: list[tuple[int, int]] = []
            if phase == _CLIMBING:
                candidates.extend((p, _CLIMBING) for p in providers)
                candidates.extend((p, _DESCENDING) for p in peers)
            candidates.extend((c, _DESCENDING) for c in customers)

            for nxt, nxt_phase in candidates:
                if nxt in path:
                    continue  # no loops
                state = (nxt, nxt_phase)
                if state in best:
                    continue
                new_path = path + (nxt,)
                best[state] = new_path
                if nxt not in result or len(new_path) < len(result[nxt]):
                    result[nxt] = new_path
                queue.append(state)

        self._cache[src] = result
        return result

    def best_path(self, src: int, dst: int) -> tuple[int, ...] | None:
        """Shortest valley-free path, or ``None`` when policy forbids any."""
        return self.paths_from(src).get(dst)

    def reachable_from(self, src: int) -> set[int]:
        return set(self.paths_from(src).keys())

    def invalidate(self) -> None:
        """Drop cached paths and adjacency (call after mutating the graph)."""
        self._cache.clear()
        self._providers.clear()
        self._customers.clear()
        self._peers.clear()
