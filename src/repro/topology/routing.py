"""Valley-free policy routing over the AS graph.

Implements the Gao-Rexford export model: a path climbs customer→provider
edges, crosses at most one peering edge, then descends provider→customer.
Shortest valley-free paths drive both the BGP collector simulation (AS paths
in announcements) and the traceroute substrate (which IP links a probe's
packets traverse).
"""

from __future__ import annotations

from collections import deque

from repro.topology.relations import ASGraph

#: Phases of a valley-free walk, in the direction source → destination.
_CLIMBING = 0  # still allowed to go up or take the single lateral step
_DESCENDING = 1  # only provider→customer edges remain legal


class ValleyFreeRouter:
    """Single-source shortest valley-free paths with deterministic tie-breaks."""

    def __init__(self, graph: ASGraph):
        self._graph = graph
        self._cache: dict[int, dict[int, tuple[int, ...]]] = {}

    def paths_from(self, src: int) -> dict[int, tuple[int, ...]]:
        """Shortest valley-free path from ``src`` to every reachable AS.

        BFS over ``(asn, phase)`` states; neighbour expansion is sorted so
        equal-length paths resolve identically across runs.
        """
        if src in self._cache:
            return self._cache[src]
        graph = self._graph
        if src not in graph.all_asns:
            raise KeyError(f"unknown AS {src}")

        best: dict[tuple[int, int], tuple[int, ...]] = {(src, _CLIMBING): (src,)}
        result: dict[int, tuple[int, ...]] = {src: (src,)}
        queue: deque[tuple[int, int]] = deque([(src, _CLIMBING)])

        while queue:
            asn, phase = queue.popleft()
            path = best[(asn, phase)]
            candidates: list[tuple[int, int]] = []
            if phase == _CLIMBING:
                candidates.extend((p, _CLIMBING) for p in sorted(graph.providers[asn]))
                candidates.extend((p, _DESCENDING) for p in sorted(graph.peers[asn]))
            candidates.extend((c, _DESCENDING) for c in sorted(graph.customers[asn]))

            for nxt, nxt_phase in candidates:
                if nxt in path:
                    continue  # no loops
                state = (nxt, nxt_phase)
                if state in best:
                    continue
                new_path = path + (nxt,)
                best[state] = new_path
                if nxt not in result or len(new_path) < len(result[nxt]):
                    result[nxt] = new_path
                queue.append(state)

        self._cache[src] = result
        return result

    def best_path(self, src: int, dst: int) -> tuple[int, ...] | None:
        """Shortest valley-free path, or ``None`` when policy forbids any."""
        return self.paths_from(src).get(dst)

    def reachable_from(self, src: int) -> set[int]:
        return set(self.paths_from(src).keys())

    def invalidate(self) -> None:
        """Drop cached paths (call after mutating the underlying graph)."""
        self._cache.clear()
