"""Topology substrate: AS graphs, policy routing, dependencies, cascades.

Shared graph machinery for the measurement substrates: the AS relationship
graph with valley-free path computation (used by both the BGP collector
simulation and the traceroute path model), AS/cable dependency graphs, and
cross-layer cascading-failure propagation.
"""

from repro.topology.relations import ASGraph, failed_as_pairs
from repro.topology.routing import ValleyFreeRouter
from repro.topology.dependency import (
    as_dependency_scores,
    build_as_dependency_graph,
    build_cable_dependency_graph,
)
from repro.topology.cascade import CascadeResult, CascadeRound, propagate_cascade

__all__ = [
    "ASGraph",
    "failed_as_pairs",
    "ValleyFreeRouter",
    "as_dependency_scores",
    "build_as_dependency_graph",
    "build_cable_dependency_graph",
    "CascadeResult",
    "CascadeRound",
    "propagate_cascade",
]
