"""AS relationship graph: typed adjacency over the world's business edges."""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.synth.ases import RelationshipKind
from repro.synth.world import SyntheticWorld


@dataclass
class ASGraph:
    """Typed AS adjacency: per-AS provider/customer/peer neighbour sets."""

    providers: dict[int, set[int]] = field(default_factory=dict)
    customers: dict[int, set[int]] = field(default_factory=dict)
    peers: dict[int, set[int]] = field(default_factory=dict)
    all_asns: set[int] = field(default_factory=set)

    @classmethod
    def shared(cls, world: SyntheticWorld) -> "ASGraph":
        """One graph per world, memoized on the world object.

        Worlds are immutable after construction, so every consumer (the BGP
        collector, the traceroute path resolver, forensics) can share one
        graph — and, through it, one interned
        :class:`~repro.topology.routing.RoutingIndex` — instead of paying
        the adjacency build and ASN interning per subsystem.  A benign
        construction race builds at most one extra copy.
        """
        graph = getattr(world, "_as_graph", None)
        if graph is None:
            graph = cls.from_world(world)
            world._as_graph = graph
        return graph

    @classmethod
    def from_world(cls, world: SyntheticWorld) -> "ASGraph":
        graph = cls()
        graph.all_asns = set(world.ases.keys())
        for asn in graph.all_asns:
            graph.providers[asn] = set()
            graph.customers[asn] = set()
            graph.peers[asn] = set()
        for rel in world.relationships:
            if rel.kind is RelationshipKind.CUSTOMER_PROVIDER:
                graph.providers[rel.a].add(rel.b)
                graph.customers[rel.b].add(rel.a)
            else:
                graph.peers[rel.a].add(rel.b)
                graph.peers[rel.b].add(rel.a)
        return graph

    def without_pairs(self, dead_pairs: set[tuple[int, int]]) -> "ASGraph":
        """A copy of the graph with the given AS adjacencies removed.

        ``dead_pairs`` contains normalised ``(min, max)`` tuples — the output
        of :func:`failed_as_pairs`.
        """
        pruned = ASGraph(all_asns=set(self.all_asns))

        def alive(a: int, b: int) -> bool:
            return (min(a, b), max(a, b)) not in dead_pairs

        for asn in self.all_asns:
            pruned.providers[asn] = {p for p in self.providers[asn] if alive(asn, p)}
            pruned.customers[asn] = {c for c in self.customers[asn] if alive(asn, c)}
            pruned.peers[asn] = {p for p in self.peers[asn] if alive(asn, p)}
        return pruned

    def degree(self, asn: int) -> int:
        return len(self.providers[asn]) + len(self.customers[asn]) + len(self.peers[asn])

    def to_networkx(self) -> nx.Graph:
        """Undirected view for connectivity analysis."""
        graph = nx.Graph()
        graph.add_nodes_from(self.all_asns)
        for asn in self.all_asns:
            for other in self.providers[asn] | self.peers[asn]:
                graph.add_edge(asn, other)
        return graph


class AdjacencyIndex:
    """Link→AS-pair indexes for fast severed-adjacency computation.

    Build once per world and reuse: :meth:`dead_pairs` then costs
    O(|failed links|) instead of a full scan of every IP link.  This is the
    single definition of the redundancy rule — an adjacency dies only when
    *every* parallel IP link between the pair is down; transit pairs usually
    keep redundant links, which is why cable cuts degrade rather than
    partition.
    """

    @classmethod
    def shared(cls, world: SyntheticWorld) -> "AdjacencyIndex":
        """One index per world, memoized on the world object (worlds are
        immutable after construction; a construction race is benign)."""
        index = getattr(world, "_adjacency_index", None)
        if index is None:
            index = cls(world)
            world._adjacency_index = index
        return index

    def __init__(self, world: SyntheticWorld):
        self.pair_of_link: dict[str, tuple[int, int]] = {
            link.id: link.as_pair for link in world.ip_links
        }
        self.links_per_pair: dict[tuple[int, int], list[str]] = {}
        for link in world.ip_links:
            self.links_per_pair.setdefault(link.as_pair, []).append(link.id)

    def dead_pairs(self, failed_link_ids) -> set[tuple[int, int]]:
        """AS adjacencies severed by a link-failure set."""
        failed = set(failed_link_ids)
        candidates = {
            self.pair_of_link[lid] for lid in failed if lid in self.pair_of_link
        }
        return {
            pair
            for pair in candidates
            if all(lid in failed for lid in self.links_per_pair[pair])
        }


def failed_as_pairs(world: SyntheticWorld, failed_link_ids: list[str]) -> set[tuple[int, int]]:
    """AS adjacencies severed by a link-failure set (one-shot convenience;
    callers on a hot path should hold an :class:`AdjacencyIndex`)."""
    return AdjacencyIndex(world).dead_pairs(failed_link_ids)
