"""Dependency graphs: who depends on whom, at the AS and cable layers.

``as_dependency_scores`` is an AS-hegemony-style metric: the fraction of all
policy paths that transit an AS.  ``build_cable_dependency_graph`` links the
physical and logical layers — which ASes ride which cables — and feeds the
cascade analysis in case study 3.
"""

from __future__ import annotations

import networkx as nx

from repro.topology.relations import ASGraph
from repro.topology.routing import ValleyFreeRouter
from repro.synth.world import SyntheticWorld


def as_dependency_scores(world: SyntheticWorld, sample_sources: int | None = None) -> dict[int, float]:
    """Hegemony-like transit dependency score per AS.

    Score of X = fraction of (src, dst) policy paths where X appears as an
    intermediate hop.  ``sample_sources`` caps the number of BFS sources for
    large worlds; ``None`` uses every AS.
    """
    graph = ASGraph.from_world(world)
    router = ValleyFreeRouter(graph)
    sources = sorted(graph.all_asns)
    if sample_sources is not None:
        sources = sources[:sample_sources]
    transit_counts: dict[int, int] = {asn: 0 for asn in graph.all_asns}
    total_paths = 0
    for src in sources:
        for dst, path in router.paths_from(src).items():
            if dst == src:
                continue
            total_paths += 1
            for asn in path[1:-1]:
                transit_counts[asn] += 1
    if total_paths == 0:
        return {asn: 0.0 for asn in graph.all_asns}
    return {asn: count / total_paths for asn, count in transit_counts.items()}


def build_as_dependency_graph(world: SyntheticWorld, sample_sources: int | None = None) -> nx.DiGraph:
    """Directed dependency graph: edge a→b when a's paths transit b.

    Edge weight is the fraction of a's reachable destinations whose path
    crosses b.  Used by cascade analysis to find which ASes inherit load
    when infrastructure under them fails.
    """
    graph = ASGraph.from_world(world)
    router = ValleyFreeRouter(graph)
    digraph = nx.DiGraph()
    digraph.add_nodes_from(graph.all_asns)
    sources = sorted(graph.all_asns)
    if sample_sources is not None:
        sources = sources[:sample_sources]
    for src in sources:
        paths = router.paths_from(src)
        reachable = max(1, len(paths) - 1)
        transit_count: dict[int, int] = {}
        for dst, path in paths.items():
            if dst == src:
                continue
            for asn in path[1:-1]:
                transit_count[asn] = transit_count.get(asn, 0) + 1
        for asn, count in transit_count.items():
            digraph.add_edge(src, asn, weight=count / reachable)
    return digraph


def build_cable_dependency_graph(
    world: SyntheticWorld, mappings: dict | None = None
) -> nx.Graph:
    """Bipartite cable↔AS graph weighted by link count.

    Nodes are ``("cable", cable_id)`` and ``("as", asn)``; an edge means the
    AS has at least one submarine link mapped to the cable.  When
    ``mappings`` (Nautilus output, ``{link_id: {"cable_id": ...}}``) is given
    the inferred view is used, otherwise ground truth.
    """
    graph = nx.Graph()
    for link in world.submarine_links():
        if mappings is not None:
            entry = mappings.get(link.id)
            cable_id = entry.get("cable_id") if isinstance(entry, dict) else getattr(entry, "cable_id", None)
        else:
            cable_id = link.cable_id
        if cable_id is None:
            continue
        cable_node = ("cable", cable_id)
        for asn in (link.asn_a, link.asn_b):
            as_node = ("as", asn)
            if graph.has_edge(cable_node, as_node):
                graph[cable_node][as_node]["weight"] += 1
            else:
                graph.add_edge(cable_node, as_node, weight=1)
    return graph


def shared_cable_ases(world: SyntheticWorld, cable_ids: list[str]) -> list[int]:
    """ASes with links on at least two of the given cables.

    These are the propagation bridges a multi-cable failure stresses first.
    """
    counts: dict[int, set[str]] = {}
    for cable_id in cable_ids:
        for link in world.links_on_cable(cable_id):
            for asn in (link.asn_a, link.asn_b):
                counts.setdefault(asn, set()).add(cable_id)
    return sorted(asn for asn, cables in counts.items() if len(cables) >= 2)
