"""Cross-layer cascading-failure propagation.

Models the second-order effect the paper's case study 3 analyses: when links
riding a failed cable disappear, their traffic reroutes onto surviving
policy-compliant paths; links pushed past their capacity threshold fail in
the next round, and so on.  The result is a per-round timeline spanning the
cable, IP-link and AS layers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.topology.relations import ASGraph, failed_as_pairs
from repro.topology.routing import ValleyFreeRouter
from repro.synth.world import SyntheticWorld


@dataclass
class CascadeRound:
    """What happened in one propagation round."""

    index: int
    newly_failed_link_ids: list[str] = field(default_factory=list)
    overloaded_link_ids: list[str] = field(default_factory=list)
    severed_as_pairs: list[tuple[int, int]] = field(default_factory=list)
    isolated_asns: list[int] = field(default_factory=list)
    load_shed_gbps: float = 0.0

    def to_dict(self) -> dict:
        return {
            "round": self.index,
            "newly_failed_link_ids": list(self.newly_failed_link_ids),
            "overloaded_link_ids": list(self.overloaded_link_ids),
            "severed_as_pairs": [list(p) for p in self.severed_as_pairs],
            "isolated_asns": list(self.isolated_asns),
            "load_shed_gbps": round(self.load_shed_gbps, 1),
        }


@dataclass
class CascadeResult:
    """Full cascade outcome: rounds plus cross-layer timeline."""

    initial_cable_ids: list[str]
    rounds: list[CascadeRound] = field(default_factory=list)
    final_failed_link_ids: list[str] = field(default_factory=list)
    final_isolated_asns: list[int] = field(default_factory=list)

    @property
    def total_rounds(self) -> int:
        return len(self.rounds)

    def timeline(self) -> list[dict]:
        """Unified cable/IP/AS-layer event timeline, the CS3 deliverable."""
        events: list[dict] = []
        for cable_id in self.initial_cable_ids:
            events.append({"round": 0, "layer": "cable", "event": "cable_failed", "id": cable_id})
        for rnd in self.rounds:
            for link_id in rnd.newly_failed_link_ids:
                events.append(
                    {"round": rnd.index, "layer": "ip", "event": "link_failed", "id": link_id}
                )
            for pair in rnd.severed_as_pairs:
                events.append(
                    {
                        "round": rnd.index,
                        "layer": "as",
                        "event": "adjacency_severed",
                        "id": f"{pair[0]}-{pair[1]}",
                    }
                )
            for asn in rnd.isolated_asns:
                events.append(
                    {"round": rnd.index, "layer": "as", "event": "as_isolated", "id": str(asn)}
                )
        return events

    def to_dict(self) -> dict:
        return {
            "initial_cable_ids": list(self.initial_cable_ids),
            "rounds": [r.to_dict() for r in self.rounds],
            "final_failed_link_ids": list(self.final_failed_link_ids),
            "final_isolated_asns": list(self.final_isolated_asns),
            "timeline": self.timeline(),
        }


def _isolated(world: SyntheticWorld, failed: set[str]) -> list[int]:
    graph = nx.Graph()
    graph.add_nodes_from(world.ases.keys())
    for link in world.ip_links:
        if link.id not in failed:
            graph.add_edge(link.asn_a, link.asn_b)
    components = sorted(nx.connected_components(graph), key=len, reverse=True)
    if not components:
        return []
    giant = components[0]
    return sorted(asn for asn in world.ases if asn not in giant)


def propagate_cascade(
    world: SyntheticWorld,
    initial_failed_link_ids: list[str],
    initial_cable_ids: list[str] | None = None,
    overload_threshold: float = 0.95,
    max_rounds: int = 10,
) -> CascadeResult:
    """Propagate failures until quiescence or ``max_rounds``.

    Each round: the load of links failed in the previous round reroutes onto
    the least-loaded surviving link of every adjacency along the shortest
    valley-free detour between the failed link's endpoints.  Links whose
    utilisation exceeds ``overload_threshold`` fail in the next round.
    Traffic with no policy-compliant detour is shed (counted, not moved) —
    shedding is what stops infinite propagation.
    """
    base_graph = ASGraph.from_world(world)
    loads: dict[str, float] = {
        link.id: link.base_load * link.capacity_gbps for link in world.ip_links
    }
    capacities: dict[str, float] = {
        link.id: link.capacity_gbps for link in world.ip_links
    }

    failed: set[str] = set(initial_failed_link_ids)
    result = CascadeResult(initial_cable_ids=sorted(initial_cable_ids or []))
    frontier = sorted(failed)
    round_index = 0
    prev_isolated: set[int] = set()

    while frontier and round_index < max_rounds:
        round_index += 1
        rnd = CascadeRound(index=round_index, newly_failed_link_ids=list(frontier))

        dead_pairs = failed_as_pairs(world, sorted(failed))
        pruned = base_graph.without_pairs(dead_pairs)
        router = ValleyFreeRouter(pruned)

        alive_by_pair: dict[tuple[int, int], list[str]] = {}
        for link in world.ip_links:
            if link.id not in failed:
                alive_by_pair.setdefault(link.as_pair, []).append(link.id)

        for link_id in frontier:
            link = world.link_by_id[link_id]
            shifted_load = link.base_load * link.capacity_gbps
            detour = router.best_path(link.asn_a, link.asn_b)
            if detour is None or len(detour) < 2:
                rnd.load_shed_gbps += shifted_load
                continue
            segments: list[str] = []
            for a, b in zip(detour, detour[1:]):
                pair = (min(a, b), max(a, b))
                candidates = alive_by_pair.get(pair, [])
                if not candidates:
                    segments = []
                    break
                segments.append(
                    min(candidates, key=lambda lid: (loads[lid] / capacities[lid], lid))
                )
            if not segments:
                rnd.load_shed_gbps += shifted_load
                continue
            for seg_id in segments:
                loads[seg_id] += shifted_load

        overloaded = sorted(
            link_id
            for link_id, load in loads.items()
            if link_id not in failed and load > overload_threshold * capacities[link_id]
        )
        rnd.overloaded_link_ids = overloaded
        rnd.severed_as_pairs = sorted(failed_as_pairs(world, sorted(failed | set(overloaded))))
        isolated_now = set(_isolated(world, failed | set(overloaded)))
        rnd.isolated_asns = sorted(isolated_now - prev_isolated)
        prev_isolated |= isolated_now
        result.rounds.append(rnd)

        failed |= set(overloaded)
        frontier = overloaded

    result.final_failed_link_ids = sorted(failed)
    result.final_isolated_asns = sorted(prev_isolated)
    return result
