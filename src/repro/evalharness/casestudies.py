"""Case-study drivers: run ArachNet and the expert baseline, compare.

One function per case study (§4 of the paper).  Each returns a
:class:`CaseStudyReport` with the paper's claim, the measured value, and a
pass/fail per check — the rows ``EXPERIMENTS.md`` and the benchmark suite
print.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.artifacts import PipelineResult, StepType
from repro.core.pipeline import ArachNet
from repro.core.registry import default_registry
from repro.evalharness.similarity import ranking_similarity, top_k_overlap
from repro.evalharness.stagekinds import overlap_report
from repro.experts.case1_cable_impact import expert_cable_country_impact
from repro.experts.case2_disasters import expert_multi_disaster_impact
from repro.experts.case3_cascade import expert_cascade_analysis
from repro.experts.case4_forensics import expert_forensic_investigation
from repro.synth.scenarios import make_latency_incident
from repro.synth.world import SyntheticWorld

CASE_QUERIES = {
    1: "Identify the impact at a country level due to SeaMeWe-5 cable failure",
    2: "Identify the impact of severe earthquakes and hurricanes globally "
       "assuming a 10% infra failure probability",
    3: "Analyze the cascading effects of submarine cable failures between "
       "Europe and Asia",
    4: "A sudden increase in latency was observed from European probes to "
       "Asian destinations starting three days ago. Determine if a submarine "
       "cable failure caused this, and if so, identify the specific cable.",
}

#: Generated-code sizes the paper reports per case study (≈ lines).
PAPER_LOC = {1: 250, 2: 300, 3: 525, 4: 750}


@dataclass
class CaseStudyReport:
    """Everything measured for one case study."""

    case: int
    query: str
    pipeline: PipelineResult = field(repr=False, default=None)
    expert: dict = field(repr=False, default_factory=dict)
    checks: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)

    @property
    def all_passed(self) -> bool:
        return all(self.checks.values())

    def summary_rows(self) -> list[dict]:
        rows = []
        for name, value in self.metrics.items():
            rows.append({"case": self.case, "metric": name, "value": value})
        for name, passed in self.checks.items():
            rows.append({"case": self.case, "metric": f"check:{name}",
                         "value": "PASS" if passed else "FAIL"})
        return rows


def _analysis_registry_steps(result: PipelineResult, exclude: tuple[str, ...] = ()) -> set[str]:
    return {
        step.target
        for step in result.design.chosen.steps
        if step.step_type is StepType.REGISTRY and step.target not in exclude
    }


def run_case1(world: SyntheticWorld, cable_name: str = "SeaMeWe-5") -> CaseStudyReport:
    """§4.1 CS1: expert replication with a Nautilus-only registry."""
    registry = default_registry().subset(frameworks=["nautilus"])
    system = ArachNet.for_world(world, registry=registry)
    result = system.answer(CASE_QUERIES[1])
    expert = expert_cable_country_impact(world, cable_name)

    report = CaseStudyReport(case=1, query=CASE_QUERIES[1], pipeline=result, expert=expert)
    overlap = overlap_report(result.design, expert)
    generated_ranking = (
        result.execution.outputs["final"]["ranking"] if result.execution.succeeded else []
    )
    # Equivalence of the measurement *logic*: both workflows must attribute
    # the same per-country damage counts.  Score-philosophy differences
    # (Xaminer embeddings vs the generated direct normalisation) are
    # reported separately via the score correlation.
    counts_similarity = ranking_similarity(
        generated_ranking, expert["affected_counts"], score_key="links_affected"
    )
    score_similarity = ranking_similarity(generated_ranking, expert["ranking"])
    top5 = top_k_overlap(generated_ranking, expert["ranking"], k=5)

    report.metrics = {
        "succeeded": result.execution.succeeded,
        "generated_loc": result.solution.loc,
        "paper_loc": PAPER_LOC[1],
        "functional_overlap_jaccard": overlap["jaccard"],
        "expert_stage_coverage": overlap["expert_coverage"],
        "counts_spearman": counts_similarity["spearman"],
        "affected_set_jaccard": counts_similarity["key_jaccard"],
        "score_spearman": score_similarity["spearman"],
        "top5_overlap": top5,
        "frameworks_used": result.design.chosen.frameworks_used(),
        "exploration_mode": result.design.exploration_mode,
    }
    report.checks = {
        "execution_succeeded": result.execution.succeeded,
        "nautilus_only": result.design.chosen.frameworks_used() == ["nautilus"],
        "equivalent_country_analysis": (counts_similarity["spearman"] or 0.0) >= 0.8
        and counts_similarity["key_jaccard"] >= 0.8,
        "impact_scores_positively_correlated": (score_similarity["spearman"] or 0.0) > 0.0,
        "significant_functional_overlap": overlap["expert_coverage"] >= 0.6,
        "loc_same_order": 0.3 * PAPER_LOC[1] <= result.solution.loc <= 3 * PAPER_LOC[1],
    }
    return report


def run_case2(world: SyntheticWorld) -> CaseStudyReport:
    """§4.1 CS2: restraint under a full multi-framework registry."""
    system = ArachNet.for_world(world)
    result = system.answer(CASE_QUERIES[2])
    prob = result.design.param_defaults.get("failure_probability", 0.1)
    expert = expert_multi_disaster_impact(world, failure_probability=prob, seed=0)

    report = CaseStudyReport(case=2, query=CASE_QUERIES[2], pipeline=result, expert=expert)
    overlap = overlap_report(result.design, expert)
    analysis_steps = _analysis_registry_steps(result, exclude=("xaminer.list_disasters",))
    generated_combined = (
        result.execution.outputs["results"].get(
            next(
                (s.id for s in result.design.chosen.steps if s.target == "combine_reports"),
                "",
            ),
            {},
        )
        if result.execution.succeeded
        else {}
    )
    same_failures = (
        sorted(generated_combined.get("failed_cable_ids", []))
        == sorted(expert["failed_cable_ids"])
    )
    similarity = ranking_similarity(
        generated_combined.get("country_ranking", []), expert["ranking"]
    )

    report.metrics = {
        "succeeded": result.execution.succeeded,
        "generated_loc": result.solution.loc,
        "paper_loc": PAPER_LOC[2],
        "functional_overlap_jaccard": overlap["jaccard"],
        "analysis_functions_used": sorted(analysis_steps),
        "frameworks_used": result.design.chosen.frameworks_used(),
        "failure_probability": prob,
        "same_failed_cables": same_failures,
        "ranking_spearman": similarity["spearman"],
        "events_processed_generated": generated_combined.get("events_combined"),
        "events_processed_expert": expert["events_processed"],
    }
    report.checks = {
        "execution_succeeded": result.execution.succeeded,
        "skilled_restraint_single_function": analysis_steps == {"xaminer.process_event"},
        "single_framework": result.design.chosen.frameworks_used() == ["xaminer"],
        "probability_extracted": abs(prob - 0.1) < 1e-9,
        "functionally_identical_failures": same_failures,
        "loc_same_order": 0.3 * PAPER_LOC[2] <= result.solution.loc <= 3 * PAPER_LOC[2],
    }
    return report


def run_case3(world: SyntheticWorld) -> CaseStudyReport:
    """§4.2 CS3: multi-framework cascading-failure orchestration."""
    system = ArachNet.for_world(world)
    result = system.answer(CASE_QUERIES[3])
    expert = expert_cascade_analysis(world)

    report = CaseStudyReport(case=3, query=CASE_QUERIES[3], pipeline=result, expert=expert)
    overlap = overlap_report(result.design, expert)
    final = result.execution.outputs.get("final", {}) if result.execution.succeeded else {}
    generated_layers = set(final.get("layer_counts", {}))
    corridor_match = sorted(final.get("corridor_cables", [])) == sorted(
        expert["corridor_cables"]
    )

    report.metrics = {
        "succeeded": result.execution.succeeded,
        "generated_loc": result.solution.loc,
        "paper_loc": PAPER_LOC[3],
        "functional_overlap_jaccard": overlap["jaccard"],
        "expert_stage_coverage": overlap["expert_coverage"],
        "frameworks_used": result.design.chosen.frameworks_used(),
        "framework_count": len(result.design.chosen.frameworks_used()),
        "corridor_cables_generated": final.get("corridor_cables", []),
        "corridor_cables_expert": expert["corridor_cables"],
        "cascade_rounds_generated": final.get("cascade_rounds"),
        "cascade_rounds_expert": expert["cascade_rounds"],
        "timeline_layers": sorted(generated_layers),
    }
    report.checks = {
        "execution_succeeded": result.execution.succeeded,
        "four_framework_integration": len(result.design.chosen.frameworks_used()) == 4,
        "timeline_spans_three_layers": {"cable", "ip", "as"}.issubset(generated_layers),
        "corridor_scoping_matches_expert": corridor_match,
        "cascade_produced_rounds": (final.get("cascade_rounds") or 0) >= 1,
        "loc_same_order": 0.3 * PAPER_LOC[3] <= result.solution.loc <= 3 * PAPER_LOC[3],
    }
    return report


def run_case4(
    world: SyntheticWorld, true_cable: str = "SeaMeWe-5"
) -> CaseStudyReport:
    """§4.3 CS4: temporal forensics with a hidden ground-truth incident."""
    incident = make_latency_incident(world, true_cable)
    system = ArachNet.for_world(world, incidents=[incident])
    result = system.answer(CASE_QUERIES[4])
    expert = expert_forensic_investigation(
        world, [incident], window=(incident.window_start, incident.window_end)
    )

    report = CaseStudyReport(case=4, query=CASE_QUERIES[4], pipeline=result, expert=expert)
    overlap = overlap_report(result.design, expert)
    final = result.execution.outputs.get("final", {}) if result.execution.succeeded else {}
    generated_cable = final.get("identified_cable_name")
    onset = final.get("onset_estimate")
    onset_error_h = (
        abs(onset - incident.onset) / 3600.0 if onset is not None else None
    )

    report.metrics = {
        "succeeded": result.execution.succeeded,
        "generated_loc": result.solution.loc,
        "paper_loc": PAPER_LOC[4],
        "functional_overlap_jaccard": overlap["jaccard"],
        "expert_stage_coverage": overlap["expert_coverage"],
        "true_cable": true_cable,
        "generated_identified": generated_cable,
        "expert_identified": expert["identified_cable_name"],
        "generated_confidence": final.get("confidence"),
        "expert_confidence": expert["confidence"],
        "generated_verdict": final.get("verdict"),
        "onset_error_hours": onset_error_h,
        "evidence_strands": [s["kind"] for s in final.get("strands", [])],
    }
    report.checks = {
        "execution_succeeded": result.execution.succeeded,
        "correct_cable_identified": generated_cable == true_cable,
        "expert_agrees": expert["identified_cable_name"] == true_cable,
        "causation_established": final.get("verdict") == "cable_failure_established",
        "three_evidence_strands": len(final.get("strands", [])) == 3,
        "onset_within_six_hours": onset_error_h is not None and onset_error_h <= 6.0,
        "loc_same_order": 0.3 * PAPER_LOC[4] <= result.solution.loc <= 3 * PAPER_LOC[4],
    }
    return report


def run_all_case_studies(world: SyntheticWorld) -> list[CaseStudyReport]:
    """All four case studies in order."""
    return [run_case1(world), run_case2(world), run_case3(world), run_case4(world)]
