"""Canonical analysis-stage vocabulary and workflow overlap scoring.

Functional overlap compares what two workflows *do*, not how they are
wired: every step target (registry function or transform) maps to a
canonical stage kind, and overlap is the Jaccard index between kind sets —
the quantitative form of the paper's "significant functional overlap"
claims.
"""

from __future__ import annotations

from repro.core.artifacts import WorkflowDesign

#: step target → canonical analysis stage.
TARGET_STAGE_KINDS: dict[str, str] = {
    # Nautilus
    "nautilus.list_cables": "cable_inventory",
    "nautilus.get_cable_info": "cable_metadata",
    "nautilus.get_cable_dependencies": "dependency_resolution",
    "nautilus.geolocate_ips": "geographic_mapping",
    "nautilus.map_ip_links_to_cables": "cross_layer_mapping",
    "nautilus.sol_validate_link": "feasibility_validation",
    # Xaminer
    "xaminer.process_event": "event_processing",
    "xaminer.country_impact": "country_aggregation",
    "xaminer.as_impact": "as_aggregation",
    "xaminer.risk_profile": "risk_assessment",
    "xaminer.list_disasters": "event_catalog",
    "xaminer.combine_impact_reports": "report_combination",
    # BGP
    "bgp.fetch_updates": "routing_collection",
    "bgp.detect_routing_anomalies": "routing_anomaly_detection",
    "bgp.summarize_path_changes": "route_change_analysis",
    "bgp.correlate_updates_with_window": "temporal_correlation",
    # Traceroute
    "traceroute.run_campaign": "latency_collection",
    "traceroute.latency_series": "series_aggregation",
    "traceroute.detect_latency_anomalies": "anomaly_detection",
    "traceroute.paths_crossing_links": "infrastructure_correlation",
    # Topology
    "topology.as_dependency_scores": "dependency_graph",
    "topology.propagate_cascade": "cascade_modeling",
    # Generated transforms
    "build_report": "report",
    "aggregate_impact_by_country": "country_aggregation",
    "rank_countries_by_impact": "impact_ranking",
    "split_events_by_kind": "event_partitioning",
    "combine_reports": "report_combination",
    "filter_cables_by_regions": "geographic_scoping",
    "derive_initial_failures": "failure_derivation",
    "propagate_cascade_rounds": "cascade_modeling",
    "build_cascade_timeline": "cross_layer_synthesis",
    "summarize_latency_anomalies": "anomaly_summary",
    "score_suspect_cables": "suspect_scoring",
    "synthesize_forensic_evidence": "evidence_synthesis",
}

#: Stage kinds that are data plumbing rather than analytical substance;
#: excluded from overlap scoring so cosmetic differences don't dilute it.
_PLUMBING = {"cable_metadata", "cable_inventory", "event_catalog", "report"}


def design_stage_kinds(design: WorkflowDesign, include_plumbing: bool = False) -> set[str]:
    """Canonical stage kinds a generated design performs."""
    kinds = {
        TARGET_STAGE_KINDS.get(step.target, step.target)
        for step in design.chosen.steps
    }
    return kinds if include_plumbing else kinds - _PLUMBING


def expert_stage_kinds(expert_output: dict, include_plumbing: bool = False) -> set[str]:
    """Stage kinds an expert workflow declares."""
    kinds = set(expert_output.get("stage_kinds", []))
    return kinds if include_plumbing else kinds - _PLUMBING


def jaccard(a: set[str], b: set[str]) -> float:
    if not a and not b:
        return 1.0
    return len(a & b) / len(a | b)


def overlap_report(design: WorkflowDesign, expert_output: dict) -> dict:
    """Functional-overlap comparison between generated and expert workflows."""
    generated = design_stage_kinds(design)
    expert = expert_stage_kinds(expert_output)
    return {
        "generated_stages": sorted(generated),
        "expert_stages": sorted(expert),
        "shared": sorted(generated & expert),
        "generated_only": sorted(generated - expert),
        "expert_only": sorted(expert - generated),
        "jaccard": round(jaccard(generated, expert), 4),
        "expert_coverage": round(
            len(generated & expert) / len(expert), 4
        ) if expert else 1.0,
    }
