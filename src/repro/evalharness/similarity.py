"""Result similarity: do two analyses reach the same conclusions?

Country rankings are compared with Spearman rank correlation over the
common key set plus top-k agreement — the quantitative reading of the
paper's "produces similar impact metrics".
"""

from __future__ import annotations

from scipy import stats


def _as_score_map(ranking: list[dict], key: str, score_key: str) -> dict[str, float]:
    out: dict[str, float] = {}
    for row in ranking:
        if key in row:
            out[str(row[key])] = float(row.get(score_key, 0.0))
    return out


def ranking_similarity(
    ranking_a: list[dict],
    ranking_b: list[dict],
    key: str = "country",
    score_key: str = "score",
) -> dict:
    """Spearman correlation between two rankings over their common keys."""
    map_a = _as_score_map(ranking_a, key, score_key)
    map_b = _as_score_map(ranking_b, key, score_key)
    common = sorted(set(map_a) & set(map_b))
    union = set(map_a) | set(map_b)
    if len(common) < 3:
        return {
            "common_keys": len(common),
            "key_jaccard": round(len(common) / len(union), 4) if union else 1.0,
            "spearman": None,
            "p_value": None,
        }
    values_a = [map_a[k] for k in common]
    values_b = [map_b[k] for k in common]
    if len(set(values_a)) == 1 or len(set(values_b)) == 1:
        rho, p_value = 0.0, 1.0
    else:
        result = stats.spearmanr(values_a, values_b)
        rho, p_value = float(result.statistic), float(result.pvalue)
    return {
        "common_keys": len(common),
        "key_jaccard": round(len(common) / len(union), 4) if union else 1.0,
        "spearman": round(rho, 4),
        "p_value": p_value,
    }


def top_k_overlap(
    ranking_a: list[dict],
    ranking_b: list[dict],
    k: int = 5,
    key: str = "country",
) -> float:
    """Fraction of the top-k entries the two rankings share."""
    if k <= 0:
        raise ValueError("k must be positive")
    top_a = {str(row[key]) for row in ranking_a[:k] if key in row}
    top_b = {str(row[key]) for row in ranking_b[:k] if key in row}
    if not top_a and not top_b:
        return 1.0
    denom = min(k, max(len(top_a), len(top_b)))
    return len(top_a & top_b) / denom if denom else 0.0


def relative_error(value_a: float, value_b: float) -> float:
    """|a-b| / max(|a|,|b|), zero when both are zero."""
    denom = max(abs(value_a), abs(value_b))
    return abs(value_a - value_b) / denom if denom else 0.0
