"""Plain-text rendering of case-study reports (the benchmark output rows)."""

from __future__ import annotations

from repro.evalharness.casestudies import CaseStudyReport


def format_report_table(reports: list[CaseStudyReport]) -> str:
    """Render reports as an aligned text table, one row per metric/check."""
    rows: list[tuple[str, str, str]] = []
    for report in reports:
        rows.append((f"case {report.case}", "query", report.query[:68]))
        for name, value in report.metrics.items():
            rows.append((f"case {report.case}", name, _fmt(value)))
        for name, passed in report.checks.items():
            rows.append(
                (f"case {report.case}", f"check:{name}", "PASS" if passed else "FAIL")
            )
    width_a = max(len(r[0]) for r in rows)
    width_b = max(len(r[1]) for r in rows)
    lines = [
        f"{'case':<{width_a}}  {'metric':<{width_b}}  value",
        "-" * (width_a + width_b + 30),
    ]
    for a, b, c in rows:
        lines.append(f"{a:<{width_a}}  {b:<{width_b}}  {c}")
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    if isinstance(value, list):
        return ", ".join(str(v) for v in value) or "(none)"
    return str(value)


def failed_checks(reports: list[CaseStudyReport]) -> list[str]:
    """Flat list of failed check names, for assertions in tests/benches."""
    out = []
    for report in reports:
        for name, passed in report.checks.items():
            if not passed:
                out.append(f"case{report.case}:{name}")
    return out
