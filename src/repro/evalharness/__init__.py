"""Evaluation harness: generated-vs-expert comparison for the case studies.

Implements the measurements behind the paper's §4 claims: functional overlap
between generated and expert workflows, similarity of analytical outputs,
framework-count restraint, and generated-code size.  The per-case-study
drivers in :mod:`repro.evalharness.casestudies` produce the rows that
``EXPERIMENTS.md`` and the benchmark suite report.
"""

from repro.evalharness.stagekinds import (
    TARGET_STAGE_KINDS,
    design_stage_kinds,
    jaccard,
    overlap_report,
)
from repro.evalharness.similarity import ranking_similarity, top_k_overlap
from repro.evalharness.casestudies import (
    CaseStudyReport,
    run_case1,
    run_case2,
    run_case3,
    run_case4,
    run_all_case_studies,
)
from repro.evalharness.report import format_report_table

__all__ = [
    "TARGET_STAGE_KINDS",
    "design_stage_kinds",
    "jaccard",
    "overlap_report",
    "ranking_similarity",
    "top_k_overlap",
    "CaseStudyReport",
    "run_case1",
    "run_case2",
    "run_case3",
    "run_case4",
    "run_all_case_studies",
    "format_report_table",
]
