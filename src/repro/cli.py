"""Command-line interface: ask ArachNet a question from the shell.

Usage::

    python -m repro "Identify the impact at a country level due to \\
        SeaMeWe-5 cable failure"
    python -m repro --list-cables
    python -m repro --frameworks nautilus "…"        # restrict the registry
    python -m repro --incident SeaMeWe-5 "…latency…" # inject ground truth
    python -m repro --json "…"                        # machine-readable output
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core.pipeline import ArachNet
from repro.core.registry import default_registry
from repro.synth.scenarios import make_latency_incident
from repro.synth.world import WorldConfig, build_world


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ArachNet: agentic Internet measurement workflows",
    )
    parser.add_argument("query", nargs="?", help="natural-language measurement question")
    parser.add_argument("--seed", type=int, default=7, help="world seed (default 7)")
    parser.add_argument(
        "--frameworks",
        help="comma-separated registry restriction (e.g. 'nautilus')",
    )
    parser.add_argument(
        "--incident",
        metavar="CABLE",
        help="inject a hidden cable failure three days before 'now'",
    )
    parser.add_argument("--json", action="store_true", help="emit the full result as JSON")
    parser.add_argument("--show-code", action="store_true",
                        help="print the generated Python solution")
    parser.add_argument("--list-cables", action="store_true",
                        help="list known cables and exit")
    parser.add_argument("--no-curate", action="store_true",
                        help="skip the RegistryCurator stage")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    world = build_world(WorldConfig(seed=args.seed))

    if args.list_cables:
        for name in world.cable_names():
            cable = world.cable_named(name)
            countries = "-".join(cable.country_codes(world.landing_points))
            print(f"{name:<18} {cable.capacity_tbps:>6.1f} Tbps  {countries}")
        return 0

    if not args.query:
        print("error: a query is required (or use --list-cables)", file=sys.stderr)
        return 2

    registry = default_registry()
    if args.frameworks:
        registry = registry.subset(frameworks=args.frameworks.split(","))

    incidents = []
    if args.incident:
        incidents.append(make_latency_incident(world, args.incident))

    system = ArachNet.for_world(
        world, registry=registry, incidents=incidents, curate=not args.no_curate
    )
    result = system.answer(args.query)

    if args.json:
        payload = result.to_dict()
        if not args.show_code:
            payload["solution"]["source_code"] = (
                f"<{result.solution.loc} lines; rerun with --show-code>"
            )
        print(json.dumps(payload, indent=1, default=str))
        return 0 if result.execution.succeeded else 1

    print(f"intent:     {result.analysis.intent}")
    print(f"workflow:   {[s.target for s in result.design.chosen.steps]}")
    print(f"generated:  {result.solution.loc} lines "
          f"(QA: {', '.join(result.solution.qa_checks)})")
    if args.show_code:
        print("\n" + result.solution.source_code)
    if not result.execution.succeeded:
        print(f"\nexecution FAILED:\n{result.execution.error}", file=sys.stderr)
        return 1
    print("\nanswer:")
    print(json.dumps(result.execution.outputs["final"], indent=1, default=str)[:4000])
    if result.curator and result.curator.added_entries:
        print(f"\ncurator promoted: {result.curator.added_entries}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
