"""Command-line interface: ask ArachNet a question from the shell.

Usage::

    python -m repro "Identify the impact at a country level due to \\
        SeaMeWe-5 cable failure"
    python -m repro --list-cables
    python -m repro --frameworks nautilus "…"        # restrict the registry
    python -m repro --incident SeaMeWe-5 "…latency…" # inject ground truth
    python -m repro --json "…"                        # machine-readable output

Serve modes (the :mod:`repro.serve` subsystem)::

    python -m repro --batch --workers 8               # scenario-matrix campaign
    python -m repro --batch --limit 10 --json
    echo "query-per-line" | python -m repro --serve   # concurrent stdin serving
    python -m repro --serve --cache-dir .cache < qs   # warm cache across restarts

Live mode (the :mod:`repro.live` subsystem)::

    python -m repro --live --epochs 24                # replay a cable-cut timeline
    python -m repro --live --incident AAE-1 --cache-dir .cache
    python -m repro --live --pace-ms 250 --epochs 12  # paced, 4 epochs/sec
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core.pipeline import ArachNet
from repro.core.registry import default_registry
from repro.synth.scenarios import make_latency_incident
from repro.synth.world import WorldConfig, build_world


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ArachNet: agentic Internet measurement workflows",
    )
    parser.add_argument("query", nargs="?", help="natural-language measurement question")
    parser.add_argument("--seed", type=int, default=7, help="world seed (default 7)")
    parser.add_argument(
        "--frameworks",
        help="comma-separated registry restriction (e.g. 'nautilus')",
    )
    parser.add_argument(
        "--incident",
        metavar="CABLE",
        help="inject a hidden cable failure three days before 'now'",
    )
    parser.add_argument("--json", action="store_true", help="emit the full result as JSON")
    parser.add_argument("--show-code", action="store_true",
                        help="print the generated Python solution")
    parser.add_argument("--list-cables", action="store_true",
                        help="list known cables and exit")
    parser.add_argument("--no-curate", action="store_true",
                        help="skip the RegistryCurator stage")
    serve = parser.add_argument_group("serve modes")
    serve.add_argument("--serve", action="store_true",
                       help="serve queries read from stdin (one per line) concurrently")
    serve.add_argument("--batch", action="store_true",
                       help="run a batch campaign over the scenario matrix")
    serve.add_argument("--workers", type=int, default=4, metavar="N",
                       help="worker threads for --serve/--batch (default 4)")
    serve.add_argument("--backend", choices=("thread", "process"), default="thread",
                       help="execution backend: 'thread' overlaps LLM latency "
                            "in-process, 'process' runs CPU-bound pipelines on "
                            "a preforked process pool (default thread)")
    serve.add_argument("--no-affinity", action="store_true",
                       help="disable sticky affinity routing for --backend "
                            "process (jobs spread purely by worker load)")
    serve.add_argument("--dispatch-batch", type=int, default=8, metavar="N",
                       help="jobs coalesced into one process-backend dispatch "
                            "message (default 8; 1 disables batching)")
    serve.add_argument("--no-cache", action="store_true",
                       help="disable the artifact cache in serve modes")
    serve.add_argument("--limit", type=int, metavar="N",
                       help="cap the number of cables in the --batch matrix")
    serve.add_argument("--cascades", action="store_true",
                       help="include cascade scenarios in the --batch matrix")
    serve.add_argument("--cache-dir", metavar="DIR",
                       help="persist the artifact cache in DIR so warm hit "
                            "rates survive broker restarts")
    durability = parser.add_argument_group("durability")
    durability.add_argument("--journal-dir", metavar="DIR",
                            help="write-ahead journal directory: every "
                                 "submission/completion is fsync'd there "
                                 "before it happens, so a killed broker "
                                 "restarted with the same DIR resumes the "
                                 "campaign exactly once (finished jobs replay "
                                 "from the journal, unfinished ones rerun)")
    durability.add_argument("--job-timeout", type=float, metavar="S",
                            help="per-job wall-clock deadline for --backend "
                                 "process: overdue jobs fail with "
                                 "JobDeadlineExceeded and their worker is "
                                 "killed (default: no deadline)")
    durability.add_argument("--drain-deadletter", action="store_true",
                            help="with --journal-dir: list the quarantined "
                                 "poison jobs, journal a drain record so "
                                 "they become submittable again, and exit")
    live = parser.add_argument_group("live mode")
    live.add_argument("--live", action="store_true",
                      help="replay a scenario timeline: epoch-stepped world "
                           "evolution, telemetry streams, online detectors "
                           "and standing queries")
    live.add_argument("--epochs", type=int, default=24, metavar="N",
                      help="epochs to replay in --live (default 24)")
    live.add_argument("--pace-ms", type=float, default=0.0, metavar="MS",
                      help="real milliseconds per epoch (default 0 = as fast "
                           "as possible)")
    live.add_argument("--max-epoch-shards", type=int, default=8, metavar="N",
                      help="evolved-world shards retained for standing "
                           "queries before LRU eviction (default 8)")
    live.add_argument("--forensics", action="store_true",
                      help="close the loop: detector alerts spawn "
                           "high-priority forensic queries whose verdicts "
                           "are scored against the timeline's ground truth")
    live.add_argument("--concurrent-events", type=int, default=0, metavar="N",
                      help="replay N overlapping catalog disasters with "
                           "disjoint cable footprints instead of the single "
                           "canonical cable cut (default 0 = single cut)")
    obs = parser.add_argument_group("observability")
    obs.add_argument("--trace-out", metavar="PATH",
                     help="enable tracing and write a Chrome trace-event "
                          "JSON file (load at ui.perfetto.dev): spans from "
                          "broker submit through worker pipeline stages, "
                          "epoch ticks, alerts and forensic cases")
    obs.add_argument("--metrics-dump", nargs="?", const="-", metavar="PATH",
                     help="after the run, dump the unified metrics registry "
                          "(queue depth, affinity/cache hit rates, bus "
                          "drops, ...) in Prometheus text format to PATH "
                          "('-' or no value = stdout)")
    obs.add_argument("--obs-port", type=int, metavar="PORT",
                     help="serve live introspection on 127.0.0.1:PORT while "
                          "the run is in flight: /metrics (Prometheus), "
                          "/healthz (SLO verdict, non-200 on breach), "
                          "/debug/flight (postmortem dump), /debug/broker "
                          "(scheduler/affinity stats); 0 picks a free port. "
                          "Also arms the SLO engine and flight recorder")
    obs.add_argument("--slo-config", metavar="PATH",
                     help="JSON file of SLO specs replacing the built-in "
                          "defaults (see README 'Health & postmortems')")
    obs.add_argument("--flight-dir", metavar="DIR",
                     help="run the crash flight recorder and write its "
                          "postmortem dumps into DIR (default: next to the "
                          "artifact cache, or the current directory)")
    obs.add_argument("--profile", action="store_true",
                     help="cProfile the --serve/--batch/--live run and dump "
                          "pstats next to the artifact cache (or the current "
                          "directory without --cache-dir); inspect with "
                          "'python -m pstats <dump>'")
    return parser


def _serve_config(args) -> "ServeConfig":
    from repro.serve import ServeConfig

    return ServeConfig(workers=args.workers, backend=args.backend,
                       cache_enabled=not args.no_cache,
                       affinity=not args.no_affinity,
                       dispatch_batch=args.dispatch_batch,
                       tracing=bool(args.trace_out),
                       flight=bool(args.flight_dir) or args.obs_port is not None,
                       flight_dir=args.flight_dir,
                       journal_dir=args.journal_dir,
                       job_timeout_s=args.job_timeout)


def _dump_obs(args, broker) -> None:
    """Write the --trace-out / --metrics-dump artifacts from a broker."""
    if args.trace_out:
        from repro.obs import TraceSink

        records = broker.tracer.records()
        path = TraceSink(args.trace_out).write(records)
        print(f"trace:    {len(records)} spans -> {path}", file=sys.stderr)
    if args.metrics_dump:
        text = broker.metrics.prometheus_text()
        if args.metrics_dump == "-":
            sys.stdout.write(text)
        else:
            with open(args.metrics_dump, "w", encoding="utf-8") as handle:
                handle.write(text)
            print(f"metrics:  -> {args.metrics_dump}", file=sys.stderr)


def _obs_server(args, broker):
    """Start the --obs-port introspection server over a serve-mode broker
    (SLO engine included); returns it, or ``None`` when the flag is absent.
    The caller stops it in a ``finally``."""
    if args.obs_port is None:
        return None
    from repro.obs import ObsServer, SloEngine, load_slo_specs

    specs = load_slo_specs(args.slo_config) if args.slo_config else None
    engine = SloEngine(broker.metrics, specs=specs, flight=broker.flight)
    server = ObsServer(port=args.obs_port, registry=broker.metrics,
                       health=engine, flight=broker.flight,
                       broker=broker).start()
    print(f"obs:      serving http://127.0.0.1:{server.port} "
          "(/metrics /healthz /debug/flight /debug/broker /debug/deadletter)",
          file=sys.stderr)
    return server


def _effective_cache_dir(args) -> str | None:
    """``--cache-dir``, or ``None`` (with a warning) when it cannot apply.

    Only the thread backend runs jobs against the broker-wide artifact
    cache; worker processes keep their own per-process caches, so spilling
    the broker cache under --backend process would persist nothing.
    """
    cache_dir = getattr(args, "cache_dir", None)
    if not cache_dir:
        return None
    if args.backend == "process":
        print("warning: --cache-dir persists the broker artifact cache, which "
              "only the thread backend uses; ignoring it for --backend process",
              file=sys.stderr)
        return None
    return cache_dir


def _cache_file(args) -> str | None:
    """The on-disk artifact-cache path for --cache-dir (created on demand)."""
    cache_dir = _effective_cache_dir(args)
    if not cache_dir:
        return None
    from repro.serve.cache import cache_file_path

    return cache_file_path(cache_dir)


def _load_cache(broker, cache_file: str | None) -> None:
    import os

    if cache_file and broker.cache is not None and os.path.exists(cache_file):
        loaded = broker.cache.load(cache_file)
        print(f"cache:    loaded {loaded} entries from {cache_file}", file=sys.stderr)


def _spill_cache(broker, cache_file: str | None) -> None:
    if cache_file and broker.cache is not None:
        broker.cache.spill(cache_file)


def run_batch(args, world, registry, incidents) -> int:
    """--batch: fan the scenario matrix through the broker and aggregate."""
    from repro.serve import CampaignSpec, QueryBroker, run_campaign

    spec = CampaignSpec.for_world(world, limit=args.limit, cascades=args.cascades)
    cache_file = _cache_file(args)
    with QueryBroker(world, registry=registry, incidents=incidents,
                     config=_serve_config(args)) as broker:
        server = _obs_server(args, broker)
        try:
            _load_cache(broker, cache_file)
            report = run_campaign(broker, spec)
            ledger_summary = broker.ledger.summary()
            backend_stats = broker.stats()["backend"]
            _spill_cache(broker, cache_file)
            _dump_obs(args, broker)
        finally:
            if server is not None:
                server.stop()

    if args.json:
        payload = report.to_dict()
        payload["ledger"] = ledger_summary
        print(json.dumps(payload, indent=1, default=str))
    else:
        print(f"campaign: {report.succeeded}/{report.total} jobs ok "
              f"in {report.duration_s:.2f}s "
              f"({report.jobs_per_sec:.1f} jobs/s, {args.workers} workers)")
        if report.cache:
            print(f"cache:    {report.cache['hits']} hits / "
                  f"{report.cache['misses']} misses "
                  f"({report.cache['hit_rate']:.0%} hit rate)")
        affinity = backend_stats.get("affinity")
        if affinity:
            print(f"affinity: {affinity['hits']} hits / {affinity['misses']} "
                  f"misses / {affinity['steals']} steals "
                  f"({affinity['hit_rate']:.0%} warm routing)")
        print("top exposed countries across scenarios:")
        for row in report.top_countries[:8]:
            print(f"  {row['country']:<4} mean score {row['mean_score']:.3f} "
                  f"({row['appearances']} scenarios)")
        failures = [o for o in report.outcomes if o["state"] != "done"]
        for failure in failures[:5]:
            print(f"FAILED {failure['tag']}: {failure['error'][:120]}",
                  file=sys.stderr)
    return 0 if report.all_succeeded else 1


def run_serve(args, world, registry, incidents, stream=None) -> int:
    """--serve: submit every stdin line as a query to the concurrent broker.

    Results print in submission order, each line as soon as its own job
    (and those before it) finished; with ``--json`` the full per-job
    payloads are emitted as one document at the end instead.
    """
    from repro.serve import JobState, QueryBroker

    queries = [line.strip() for line in (stream or sys.stdin) if line.strip()]
    if not queries:
        print("error: --serve expects one query per line on stdin", file=sys.stderr)
        return 2

    failed = 0
    rows = []
    cache_file = _cache_file(args)
    with QueryBroker(world, registry=registry, incidents=incidents,
                     config=_serve_config(args)) as broker:
        server = _obs_server(args, broker)
        try:
            _load_cache(broker, cache_file)
            tickets = [broker.submit(query) for query in queries]
            for query, ticket in zip(queries, tickets):
                job = broker.wait(ticket)
                if job.state is JobState.DONE:
                    final = job.result.execution.outputs.get("final", {})
                    title = final.get("title", "ok") if isinstance(final, dict) else "ok"
                    if args.json:
                        rows.append({"ticket": job.ticket, "query": query,
                                     "state": job.state.value, "final": final,
                                     "trace_id": job.trace_id})
                    else:
                        print(f"{job.ticket} done   {title} :: {query[:60]}")
                else:
                    failed += 1
                    if args.json:
                        rows.append({"ticket": job.ticket, "query": query,
                                     "state": job.state.value, "error": job.error,
                                     "trace_id": job.trace_id})
                    else:
                        print(f"{job.ticket} FAILED {job.error[:80]} :: {query[:60]}")
            stats = broker.stats()
            _spill_cache(broker, cache_file)
            _dump_obs(args, broker)
        finally:
            if server is not None:
                server.stop()
    cache = stats.get("cache")
    if args.json:
        print(json.dumps({"jobs": rows, "cache": cache,
                          "ledger": broker.ledger.summary()},
                         indent=1, default=str))
    elif cache:
        print(f"served {len(queries)} queries, cache hit rate {cache['hit_rate']:.0%}")
    return 0 if failed == 0 else 1


def run_live(args, world, registry) -> int:
    """--live: replay a scenario timeline with streams, detectors and
    standing queries; ``--incident CABLE`` picks the cable the timeline
    cuts, ``--concurrent-events N`` superimposes N catalog disasters, and
    ``--forensics`` arms the alert-triggered forensic loop."""
    from repro.live import (
        LiveConfig,
        default_cable_cut_timeline,
        default_cut_epoch,
        overlapping_catalog_timeline,
        run_live_replay,
    )

    config = LiveConfig(
        epochs=args.epochs,
        pace_s=args.pace_ms / 1000.0,
        workers=args.workers,
        backend=args.backend,
        affinity=not args.no_affinity,
        dispatch_batch=args.dispatch_batch,
        cache_enabled=not args.no_cache,
        cache_dir=_effective_cache_dir(args),
        max_epoch_shards=args.max_epoch_shards,
        forensics=args.forensics,
        tracing=bool(args.trace_out),
        obs_port=args.obs_port,
        slo_config=args.slo_config,
        flight=bool(args.flight_dir),
        flight_dir=args.flight_dir,
        journal_dir=args.journal_dir,
    )
    if args.concurrent_events:
        try:
            timeline = overlapping_catalog_timeline(
                world, count=args.concurrent_events
            )
        except ValueError as exc:
            # Catalog too small for N disjoint events, or windows that
            # cannot overlap — surface the builder's own diagnostic.
            print(f"error: {exc}", file=sys.stderr)
            return 2
        # A replay that ends before the last fire can never detect it —
        # fail loudly up front rather than exiting 1 with no diagnostic.
        last_fire = max(item.start_epoch for item in timeline)
        if args.epochs <= last_fire:
            print(f"error: --concurrent-events {args.concurrent_events} "
                  f"schedules the last disaster at epoch {last_fire}; "
                  f"--epochs must be at least {last_fire + 1} "
                  f"(got {args.epochs})", file=sys.stderr)
            return 2
    else:
        timeline = default_cable_cut_timeline(
            world,
            cable_name=args.incident,
            cut_epoch=default_cut_epoch(args.epochs),
        )
    # With obs flags the CLI owns the broker: the driver would otherwise
    # shut its internal one down before we could export its tracer/registry.
    broker = None
    if args.trace_out or args.metrics_dump:
        from repro.serve import QueryBroker

        broker = QueryBroker(world, registry=registry,
                             config=_serve_config(args)).start()
    try:
        report = run_live_replay(world=world, timeline_events=timeline,
                                 config=config, registry=registry,
                                 broker=broker)
        if broker is not None:
            _dump_obs(args, broker)
    finally:
        if broker is not None:
            broker.shutdown()

    if args.json:
        print(json.dumps(report.to_dict(), indent=1, default=str))
    else:
        print(f"live:      {report.epochs} epochs in {report.duration_s:.2f}s "
              f"({report.epochs_per_sec:.1f} epochs/s)")
        for event_id, row in report.detection.items():
            lag = row["latency_epochs"]
            print(f"incident:  {event_id} fired at epoch {row['incident_epoch']}; "
                  + (f"first alert at epoch {row['first_alert_epoch']} "
                     f"({row['first_alert_kind']}, +{lag} epochs)"
                     if lag is not None else "NOT detected"))
        for alert in report.alerts[:10]:
            print(f"alert:     epoch {alert['epoch']:>3} {alert['kind']:<10} "
                  f"{alert['series_key']}")
        stats = report.standing_stats
        print(f"standing:  {stats['evaluations']} evaluations, "
              f"{stats['submitted']} computed, {stats['cache_hits']} cache hits "
              f"({stats['hit_rate']:.0%} hit rate); "
              f"{stats['epoch_shards']} epoch shards retained, "
              f"{stats['shards_evicted']} evicted")
        rstats = report.routing_stats
        if rstats:
            print(f"routing:   {rstats['hits']} route-table hits / "
                  f"{rstats['misses']} misses; incremental re-convergence "
                  f"shared {rstats['peers_shared']} peer tables, "
                  f"recomputed {rstats['peers_recomputed']}")
        for case in report.forensic_cases:
            lat = case["verdict_latency_s"]
            print(f"forensic:  {case['case_id']} {case['event_id'] or '?'} "
                  f"alert {case['alert_kind']}@{case['alert_epoch']} -> "
                  f"{case['verdict']} ({case['identified_cable'] or 'no cable'}) "
                  f"in {case['queries_run']} quer"
                  f"{'y' if case['queries_run'] == 1 else 'ies'}"
                  + (f", {lat:.2f}s" if lat is not None else ""))
        fstats = report.forensic_stats
        if fstats:
            print(f"trigger:   {fstats['alerts_seen']} alerts -> "
                  f"{fstats['cases_opened']} cases "
                  f"({fstats['alerts_merged']} merged, "
                  f"{fstats['suppressed_threshold']} below threshold); "
                  f"{fstats['queries_submitted']} queries submitted, "
                  f"{fstats['query_cache_hits']} cache hits, "
                  f"{fstats['escalations']} corridor escalations")
        if report.health:
            breached = [s["name"] for s in report.health["slos"]
                        if not s["healthy"]]
            print(f"health:    {'OK' if report.health['healthy'] else 'BREACHED'} "
                  f"({report.health['evaluations']} evaluations"
                  + (f"; breached: {', '.join(breached)}" if breached else "")
                  + ")")
        for dump in report.flight_dumps:
            print(f"flight:    postmortem {dump}")
        if report.cache_file:
            print(f"cache:     spilled to {report.cache_file}")
    ok = report.detected_incidents == len(report.incident_epochs)
    if args.forensics:
        # The closed loop succeeded only if every incident produced its
        # one deduped case and every triggered query completed — zero
        # cases is a silent failure, not a vacuous success.
        ok = (ok
              and len(report.forensic_cases) == len(report.incident_epochs)
              and report.completed_cases == len(report.forensic_cases))
    return 0 if ok else 1


def _profiled(args, run) -> int:
    """--profile: cProfile one serve-mode run end to end.

    The pstats dump lands next to the artifact cache (``--cache-dir``) so a
    perf investigation's profile travels with the run's other artifacts;
    without a cache dir it lands in the current directory.
    """
    import cProfile
    import os
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        code = run()
    finally:
        profiler.disable()
        out_dir = getattr(args, "cache_dir", None) or "."
        os.makedirs(out_dir, exist_ok=True)
        path = os.path.join(out_dir, "profile.pstats")
        profiler.dump_stats(path)
        stats = pstats.Stats(profiler)
        print(f"profile:  {stats.total_calls} calls, {stats.total_tt:.2f}s "
              f"-> {path}", file=sys.stderr)
    return code


def drain_deadletter(args) -> int:
    """--drain-deadletter: inspect and release the poison-job quarantine.

    Opens the journal directly (no broker, no workers): prints every
    quarantined (world, query) signature with its crash history, appends a
    ``deadletter_drain`` record so the next broker over this journal will
    accept those submissions again, and exits.
    """
    from repro.serve.journal import DeadLetterQueue, WriteAheadJournal

    if not args.journal_dir:
        print("error: --drain-deadletter requires --journal-dir", file=sys.stderr)
        return 2
    with WriteAheadJournal(args.journal_dir) as journal:
        queue = DeadLetterQueue(journal=journal)
        entries = queue.drain()
        for entry in entries:
            print(f"drained:  {entry.get('world_key', '?')} :: "
                  f"{entry.get('query', '')[:80]} "
                  f"({entry.get('crashes', '?')} crashes on workers "
                  f"{entry.get('worker_slots', [])})")
    if not entries:
        print("deadletter queue is empty; nothing drained")
    else:
        print(f"drained {len(entries)} quarantined signature"
              f"{'s' if len(entries) != 1 else ''}; resubmissions will "
              "run fresh")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.drain_deadletter:
        return drain_deadletter(args)

    world = build_world(WorldConfig(seed=args.seed))

    if args.list_cables:
        for name in world.cable_names():
            cable = world.cable_named(name)
            countries = "-".join(cable.country_codes(world.landing_points))
            print(f"{name:<18} {cable.capacity_tbps:>6.1f} Tbps  {countries}")
        return 0

    registry = default_registry()
    if args.frameworks:
        registry = registry.subset(frameworks=args.frameworks.split(","))

    incidents = []
    if args.incident:
        incidents.append(make_latency_incident(world, args.incident))

    if args.batch or args.serve or args.live:
        if args.workers < 1:
            print("error: --workers must be >= 1", file=sys.stderr)
            return 2
        if args.limit is not None and args.limit < 0:
            print("error: --limit must be >= 0", file=sys.stderr)
            return 2
        if args.live:
            if args.epochs < 1 or args.pace_ms < 0:
                print("error: --epochs must be >= 1 and --pace-ms >= 0",
                      file=sys.stderr)
                return 2
            if args.concurrent_events < 0:
                print("error: --concurrent-events must be >= 0", file=sys.stderr)
                return 2

        def dispatch() -> int:
            if args.live:
                return run_live(args, world, registry)
            if args.batch:
                return run_batch(args, world, registry, incidents)
            return run_serve(args, world, registry, incidents)

        if args.profile:
            return _profiled(args, dispatch)
        return dispatch()

    if args.profile:
        print("warning: --profile wraps the --serve/--batch/--live drivers; "
              "ignoring it for a single-shot query", file=sys.stderr)
    if not args.query:
        print("error: a query is required (or use --list-cables/--batch/--serve)",
              file=sys.stderr)
        return 2

    system = ArachNet.for_world(
        world, registry=registry, incidents=incidents, curate=not args.no_curate
    )
    tracer = None
    if args.trace_out:
        from repro.obs import Tracer

        tracer = Tracer(label="main")
    if args.metrics_dump:
        print("warning: --metrics-dump needs a broker registry; it applies "
              "to --serve/--batch/--live only", file=sys.stderr)
    result = system.answer(args.query, tracer=tracer)
    trace_id = None
    if tracer is not None:
        from repro.obs import TraceSink

        records = tracer.records()
        # Single-shot runs produce exactly one trace; printing its id lets
        # the output line be joined against the --trace-out export the same
        # way serve-mode ledger rows join via their trace_id.
        ids = tracer.trace_ids()
        trace_id = ids[0] if ids else None
        path = TraceSink(args.trace_out).write(records)
        print(f"trace:    {len(records)} spans -> {path}", file=sys.stderr)

    if args.json:
        payload = result.to_dict()
        if trace_id is not None:
            payload["trace_id"] = trace_id
        if not args.show_code:
            payload["solution"]["source_code"] = (
                f"<{result.solution.loc} lines; rerun with --show-code>"
            )
        print(json.dumps(payload, indent=1, default=str))
        return 0 if result.execution.succeeded else 1

    print(f"intent:     {result.analysis.intent}")
    if trace_id is not None:
        print(f"trace_id:   {trace_id}")
    print(f"workflow:   {[s.target for s in result.design.chosen.steps]}")
    print(f"generated:  {result.solution.loc} lines "
          f"(QA: {', '.join(result.solution.qa_checks)})")
    if args.show_code:
        print("\n" + result.solution.source_code)
    if not result.execution.succeeded:
        print(f"\nexecution FAILED:\n{result.execution.error}", file=sys.stderr)
        return 1
    print("\nanswer:")
    print(json.dumps(result.execution.outputs["final"], indent=1, default=str)[:4000])
    if result.curator and result.curator.added_entries:
        print(f"\ncurator promoted: {result.curator.added_entries}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
