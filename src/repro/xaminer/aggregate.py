"""Country- and AS-level embeddings over impact reports.

Xaminer's "sophisticated embedding modules" (§4.1 of the ArachNet paper)
aggregate cross-layer metrics into normalised per-entity vectors.  Case study
1 contrasts this architecture with ArachNet's direct pipeline: both must land
on the same *numbers*, which is what the evaluation harness checks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.xaminer.impact import ImpactReport
from repro.synth.world import SyntheticWorld


@dataclass(frozen=True)
class CountryEmbedding:
    """Normalised impact vector for one country."""

    country_code: str
    ip_fraction: float
    link_fraction: float
    as_fraction: float
    as_link_fraction: float
    capacity_fraction: float

    @property
    def score(self) -> float:
        return (
            self.ip_fraction
            + self.link_fraction
            + self.as_fraction
            + self.as_link_fraction
            + self.capacity_fraction
        ) / 5.0

    def to_dict(self) -> dict:
        return {
            "country": self.country_code,
            "ip_fraction": round(self.ip_fraction, 6),
            "link_fraction": round(self.link_fraction, 6),
            "as_fraction": round(self.as_fraction, 6),
            "as_link_fraction": round(self.as_link_fraction, 6),
            "capacity_fraction": round(self.capacity_fraction, 6),
            "score": round(self.score, 6),
        }


def country_impact_embeddings(report: ImpactReport) -> dict[str, CountryEmbedding]:
    """Build normalised embeddings for every country in a report."""
    out: dict[str, CountryEmbedding] = {}
    for code, impact in report.by_country.items():
        def frac(num: float, den: float) -> float:
            return num / den if den else 0.0

        out[code] = CountryEmbedding(
            country_code=code,
            ip_fraction=frac(impact.ips_affected, impact.ips_total),
            link_fraction=frac(impact.links_affected, impact.links_total),
            as_fraction=frac(impact.ases_affected, impact.ases_total),
            as_link_fraction=frac(impact.as_links_affected, impact.as_links_total),
            capacity_fraction=frac(impact.capacity_lost_gbps, impact.capacity_total_gbps),
        )
    return out


def rank_countries(report: ImpactReport, top: int | None = None) -> list[dict]:
    """Countries ranked by embedding score, most impacted first."""
    embeddings = country_impact_embeddings(report)
    ranked = sorted(embeddings.values(), key=lambda e: e.score, reverse=True)
    rows = [e.to_dict() for e in ranked if e.score > 0]
    return rows[:top] if top is not None else rows


def as_impact_embeddings(world: SyntheticWorld, report: ImpactReport) -> list[dict]:
    """Per-AS affected-link fractions, most impacted first."""
    rows: list[dict] = []
    for asn, affected in report.by_asn.items():
        total = len(world.links_by_asn.get(asn, []))
        asys = world.ases[asn]
        rows.append(
            {
                "asn": asn,
                "name": asys.name,
                "country": asys.country_code,
                "tier": asys.tier,
                "links_affected": affected,
                "links_total": total,
                "fraction": round(affected / total, 6) if total else 0.0,
                "isolated": asn in set(report.isolated_asns),
            }
        )
    rows.sort(key=lambda r: (r["fraction"], r["links_affected"]), reverse=True)
    return rows
