"""Country risk profiles: structural dependency on submarine cables.

Answers "how exposed is country X before anything fails": how much of its
international capacity rides each cable, how concentrated that dependency is
(Herfindahl index), and which single cable would hurt most.
"""

from __future__ import annotations

from repro.synth.iplinks import LinkKind
from repro.synth.world import SyntheticWorld


def country_cable_capacity(world: SyntheticWorld, country_code: str) -> dict[str, float]:
    """Submarine capacity touching a country, broken down by cable."""
    capacity: dict[str, float] = {}
    for link in world.submarine_links():
        if country_code not in (link.country_a, link.country_b):
            continue
        if link.cable_id is None:
            continue
        capacity[link.cable_id] = capacity.get(link.cable_id, 0.0) + link.capacity_gbps
    return capacity


def country_risk_profile(world: SyntheticWorld, country_code: str) -> dict:
    """Structural risk profile for one country.

    ``herfindahl`` is the sum of squared capacity shares: 1.0 means all
    international capacity on one cable, 1/n means evenly spread over n.
    """
    if country_code not in world.countries:
        raise KeyError(f"unknown country code {country_code!r}")
    by_cable = country_cable_capacity(world, country_code)
    total = sum(by_cable.values())
    shares = {cid: cap / total for cid, cap in by_cable.items()} if total else {}
    herfindahl = sum(s * s for s in shares.values())
    dominant = max(shares.items(), key=lambda kv: kv[1]) if shares else (None, 0.0)
    terrestrial = sum(
        link.capacity_gbps
        for link in world.ip_links
        if link.kind is LinkKind.TERRESTRIAL
        and country_code in (link.country_a, link.country_b)
    )
    return {
        "country": country_code,
        "submarine_capacity_gbps": round(total, 1),
        "terrestrial_capacity_gbps": round(terrestrial, 1),
        "cable_count": len(by_cable),
        "capacity_by_cable": {cid: round(cap, 1) for cid, cap in sorted(by_cable.items())},
        "dominant_cable": dominant[0],
        "dominant_share": round(dominant[1], 4),
        "herfindahl": round(herfindahl, 4),
    }


def most_exposed_countries(world: SyntheticWorld, top: int = 10) -> list[dict]:
    """Countries ranked by single-cable dependency (dominant share)."""
    profiles = [
        country_risk_profile(world, code)
        for code in world.countries
    ]
    with_cables = [p for p in profiles if p["cable_count"] > 0]
    with_cables.sort(key=lambda p: (p["dominant_share"], p["herfindahl"]), reverse=True)
    return with_cables[:top]
