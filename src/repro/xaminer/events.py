"""Event footprint computation: which infrastructure an event touches.

Geographic events (earthquakes, hurricanes) affect cables whose wet segments
or landing stations pass through the event's radius; the *exposure* of a
cable is the fraction of its sampled geometry inside the footprint.  Cable
cuts name their targets explicitly and have exposure 1.0.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.synth.geography import point_within_radius
from repro.synth.scenarios import DisasterEvent, DisasterKind
from repro.synth.world import SyntheticWorld

#: Points sampled per cable segment for footprint intersection.
_SAMPLES_PER_SEGMENT = 8


@dataclass
class EventFootprint:
    """The infrastructure an event touches, with per-cable exposure."""

    event_id: str
    cable_exposure: dict[str, float] = field(default_factory=dict)  # cable_id -> 0..1
    landing_point_ids: list[str] = field(default_factory=list)

    @property
    def affected_cable_ids(self) -> list[str]:
        return sorted(cid for cid, exp in self.cable_exposure.items() if exp > 0)

    def to_dict(self) -> dict:
        return {
            "event_id": self.event_id,
            "cable_exposure": {k: round(v, 4) for k, v in self.cable_exposure.items()},
            "landing_point_ids": list(self.landing_point_ids),
        }


def _geo_exposure(world: SyntheticWorld, center: tuple[float, float], radius_km: float) -> dict[str, float]:
    exposure: dict[str, float] = {}
    for cable in world.cables.values():
        inside = 0
        total = 0
        for segment in cable.segments:
            src = world.landing_points[segment.src_landing]
            dst = world.landing_points[segment.dst_landing]
            for point in segment.sample_points(src, dst, _SAMPLES_PER_SEGMENT):
                total += 1
                if point_within_radius(point, center, radius_km):
                    inside += 1
        if total and inside:
            exposure[cable.id] = inside / total
    return exposure


def event_footprint(world: SyntheticWorld, event: DisasterEvent) -> EventFootprint:
    """Compute the footprint of one event."""
    footprint = EventFootprint(event_id=event.id)
    if event.kind is DisasterKind.CABLE_CUT:
        for name in event.cable_names:
            cable = world.cable_named(name)
            footprint.cable_exposure[cable.id] = 1.0
            footprint.landing_point_ids.extend(cable.landing_point_ids)
        return footprint

    if event.center is None or event.radius_km <= 0:
        raise ValueError(f"geographic event {event.id} needs a center and radius")
    footprint.cable_exposure = _geo_exposure(world, event.center, event.radius_km)
    footprint.landing_point_ids = sorted(
        lp.id
        for lp in world.landing_points.values()
        if point_within_radius(lp.coord, event.center, event.radius_km)
    )
    return footprint


def footprint_exposures(
    world: SyntheticWorld, events: list[DisasterEvent]
) -> dict[str, EventFootprint]:
    """Footprints for a batch of events, keyed by event id."""
    return {event.id: event_footprint(world, event) for event in events}
