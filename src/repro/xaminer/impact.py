"""Impact computation: damage metrics from a set of failed IP links.

Implements Xaminer's metric set: per-country and per-AS counts of affected
IPs, links, ASes and AS-level adjacencies, plus lost capacity and
connectivity effects (ASes cut off from the backbone).  All counts come with
country-level denominators so embeddings can normalise them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.synth.iplinks import IPLink
from repro.synth.world import SyntheticWorld


@dataclass
class CountryImpact:
    """Affected-entity counts for one country, with denominators."""

    country_code: str
    ips_affected: int = 0
    links_affected: int = 0
    ases_affected: int = 0
    as_links_affected: int = 0
    capacity_lost_gbps: float = 0.0
    ips_total: int = 0
    links_total: int = 0
    ases_total: int = 0
    as_links_total: int = 0
    capacity_total_gbps: float = 0.0

    @property
    def impact_score(self) -> float:
        """Mean of the normalised metric fractions (Xaminer's embedding)."""
        fractions = [
            self._frac(self.ips_affected, self.ips_total),
            self._frac(self.links_affected, self.links_total),
            self._frac(self.ases_affected, self.ases_total),
            self._frac(self.as_links_affected, self.as_links_total),
            self._frac(self.capacity_lost_gbps, self.capacity_total_gbps),
        ]
        return sum(fractions) / len(fractions)

    @staticmethod
    def _frac(num: float, den: float) -> float:
        return num / den if den else 0.0

    def to_dict(self) -> dict:
        return {
            "country": self.country_code,
            "ips_affected": self.ips_affected,
            "links_affected": self.links_affected,
            "ases_affected": self.ases_affected,
            "as_links_affected": self.as_links_affected,
            "capacity_lost_gbps": round(self.capacity_lost_gbps, 1),
            "impact_score": round(self.impact_score, 6),
        }


@dataclass
class ImpactReport:
    """The full impact picture for one failure set."""

    failed_link_ids: list[str]
    by_country: dict[str, CountryImpact] = field(default_factory=dict)
    by_asn: dict[int, int] = field(default_factory=dict)  # asn -> affected link count
    isolated_asns: list[int] = field(default_factory=list)
    total_capacity_lost_gbps: float = 0.0

    def ranked_countries(self) -> list[CountryImpact]:
        """Countries ordered by impact score, most affected first."""
        return sorted(
            self.by_country.values(), key=lambda c: c.impact_score, reverse=True
        )

    def to_dict(self) -> dict:
        return {
            "failed_link_ids": list(self.failed_link_ids),
            "countries": {
                code: impact.to_dict() for code, impact in self.by_country.items()
            },
            "asns": {str(asn): count for asn, count in self.by_asn.items()},
            "isolated_asns": list(self.isolated_asns),
            "total_capacity_lost_gbps": round(self.total_capacity_lost_gbps, 1),
        }


def _country_totals(world: SyntheticWorld) -> dict[str, CountryImpact]:
    """Initialise per-country impact records with denominators."""
    totals: dict[str, CountryImpact] = {
        code: CountryImpact(country_code=code) for code in world.countries
    }
    as_links_seen: dict[str, set[tuple[int, int]]] = {code: set() for code in world.countries}
    ases_seen: dict[str, set[int]] = {code: set() for code in world.countries}
    for link in world.ip_links:
        for country, asn in ((link.country_a, link.asn_a), (link.country_b, link.asn_b)):
            record = totals[country]
            record.ips_total += 1
            record.links_total += 1
            record.capacity_total_gbps += link.capacity_gbps
            ases_seen[country].add(asn)
            as_links_seen[country].add(link.as_pair)
    for code, record in totals.items():
        record.ases_total = len(ases_seen[code])
        record.as_links_total = len(as_links_seen[code])
    return totals


def _as_graph_without(world: SyntheticWorld, failed: set[str]) -> nx.Graph:
    graph = nx.Graph()
    graph.add_nodes_from(world.ases.keys())
    for link in world.ip_links:
        if link.id in failed:
            continue
        graph.add_edge(link.asn_a, link.asn_b)
    return graph


def compute_impact(world: SyntheticWorld, failed_link_ids: list[str]) -> ImpactReport:
    """Aggregate the damage of a failed-link set into impact metrics.

    ``isolated_asns`` lists ASes disconnected from the largest connected
    component once failed links are removed — the strongest observable form
    of impact.
    """
    failed = set(failed_link_ids)
    report = ImpactReport(failed_link_ids=sorted(failed))
    report.by_country = _country_totals(world)

    affected_ases: dict[str, set[int]] = {code: set() for code in world.countries}
    affected_as_links: dict[str, set[tuple[int, int]]] = {code: set() for code in world.countries}

    for link_id in sorted(failed):
        link = world.link_by_id.get(link_id)
        if link is None:
            raise KeyError(f"unknown link id {link_id!r}")
        report.total_capacity_lost_gbps += link.capacity_gbps
        report.by_asn[link.asn_a] = report.by_asn.get(link.asn_a, 0) + 1
        report.by_asn[link.asn_b] = report.by_asn.get(link.asn_b, 0) + 1
        for country, asn in ((link.country_a, link.asn_a), (link.country_b, link.asn_b)):
            record = report.by_country[country]
            record.ips_affected += 1
            record.links_affected += 1
            record.capacity_lost_gbps += link.capacity_gbps
            affected_ases[country].add(asn)
            affected_as_links[country].add(link.as_pair)

    for code, record in report.by_country.items():
        record.ases_affected = len(affected_ases[code])
        record.as_links_affected = len(affected_as_links[code])

    if failed:
        graph = _as_graph_without(world, failed)
        components = sorted(nx.connected_components(graph), key=len, reverse=True)
        if components:
            giant = components[0]
            report.isolated_asns = sorted(
                asn for asn in world.ases if asn not in giant
            )
    return report


def weighted_impact(
    world: SyntheticWorld, cable_weights: dict[str, float]
) -> ImpactReport:
    """Expectation-based impact: cable failure weights scale link damage.

    Every link on a weighted cable contributes ``weight`` of a full failure
    to the counts.  Fractional contributions keep expectation linearity —
    :func:`compute_impact` on a Bernoulli sample converges to this as trials
    grow.
    """
    report = ImpactReport(failed_link_ids=[])
    report.by_country = _country_totals(world)
    affected_ases: dict[str, dict[int, float]] = {code: {} for code in world.countries}
    affected_as_links: dict[str, dict[tuple[int, int], float]] = {
        code: {} for code in world.countries
    }
    ips: dict[str, float] = {code: 0.0 for code in world.countries}
    links: dict[str, float] = {code: 0.0 for code in world.countries}

    for cable_id, weight in sorted(cable_weights.items()):
        if weight <= 0:
            continue
        for link in world.links_on_cable(cable_id):
            report.total_capacity_lost_gbps += weight * link.capacity_gbps
            report.failed_link_ids.append(link.id)
            for country, asn in ((link.country_a, link.asn_a), (link.country_b, link.asn_b)):
                record = report.by_country[country]
                ips[country] += weight
                links[country] += weight
                record.capacity_lost_gbps += weight * link.capacity_gbps
                current = affected_ases[country].get(asn, 0.0)
                affected_ases[country][asn] = max(current, weight)
                pair = link.as_pair
                current = affected_as_links[country].get(pair, 0.0)
                affected_as_links[country][pair] = max(current, weight)

    for code, record in report.by_country.items():
        # Round expectations to int-valued fields via floats kept in dict form.
        record.ips_affected = int(round(ips[code]))
        record.links_affected = int(round(links[code]))
        record.ases_affected = int(round(sum(affected_ases[code].values())))
        record.as_links_affected = int(round(sum(affected_as_links[code].values())))
    report.failed_link_ids = sorted(set(report.failed_link_ids))
    return report
