"""Monte Carlo impact sweeps: distributional answers for probabilistic events.

A single Bernoulli draw (``process_event``) answers "what might happen";
operators usually need "what happens on average, and how bad is the tail".
The sweep repeats the footprint → failure → impact pipeline across seeds and
aggregates per-country score distributions plus failure frequencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.xaminer.aggregate import rank_countries
from repro.xaminer.events import event_footprint
from repro.xaminer.failures import simulate_failures
from repro.xaminer.impact import compute_impact
from repro.synth.scenarios import DisasterEvent
from repro.synth.world import SyntheticWorld


@dataclass
class MonteCarloSummary:
    """Aggregated outcome of a Monte Carlo impact sweep."""

    event_id: str
    trials: int
    failure_probability: float
    cable_failure_frequency: dict[str, float] = field(default_factory=dict)
    mean_capacity_lost_gbps: float = 0.0
    p95_capacity_lost_gbps: float = 0.0
    country_mean_score: dict[str, float] = field(default_factory=dict)
    country_p95_score: dict[str, float] = field(default_factory=dict)
    no_failure_fraction: float = 0.0

    def ranked_countries(self, top: int | None = None) -> list[dict]:
        rows = [
            {"country": code, "mean_score": round(mean, 6),
             "p95_score": round(self.country_p95_score.get(code, 0.0), 6)}
            for code, mean in sorted(
                self.country_mean_score.items(), key=lambda kv: kv[1], reverse=True
            )
            if mean > 0
        ]
        return rows[:top] if top is not None else rows

    def to_dict(self) -> dict:
        return {
            "event_id": self.event_id,
            "trials": self.trials,
            "failure_probability": self.failure_probability,
            "cable_failure_frequency": {
                k: round(v, 4) for k, v in sorted(self.cable_failure_frequency.items())
            },
            "mean_capacity_lost_gbps": round(self.mean_capacity_lost_gbps, 1),
            "p95_capacity_lost_gbps": round(self.p95_capacity_lost_gbps, 1),
            "country_ranking": self.ranked_countries(25),
            "no_failure_fraction": round(self.no_failure_fraction, 4),
        }


def monte_carlo_impact(
    world: SyntheticWorld,
    event: DisasterEvent | dict,
    failure_probability: float,
    trials: int = 100,
    base_seed: int = 0,
) -> MonteCarloSummary:
    """Run ``trials`` independent failure draws and aggregate the impact.

    Deterministic for a given ``base_seed``: trial *i* uses seed
    ``base_seed + i`` (each additionally mixed with the event id inside the
    failure sampler).
    """
    if trials < 1:
        raise ValueError("trials must be at least 1")
    from repro.xaminer.api import _coerce_event

    event = _coerce_event(world, event)
    footprint = event_footprint(world, event)

    summary = MonteCarloSummary(
        event_id=event.id, trials=trials, failure_probability=failure_probability
    )
    capacity_losses: list[float] = []
    failure_counts: dict[str, int] = {}
    score_sums: dict[str, float] = {}
    score_samples: dict[str, list[float]] = {}
    no_failures = 0

    for trial in range(trials):
        sample = simulate_failures(
            world, footprint, failure_probability, seed=base_seed + trial
        )
        if not sample.failed_cable_ids:
            no_failures += 1
            capacity_losses.append(0.0)
            continue
        for cable_id in sample.failed_cable_ids:
            failure_counts[cable_id] = failure_counts.get(cable_id, 0) + 1
        report = compute_impact(world, sample.failed_link_ids)
        capacity_losses.append(report.to_dict()["total_capacity_lost_gbps"])
        for row in rank_countries(report):
            code = row["country"]
            score_sums[code] = score_sums.get(code, 0.0) + row["score"]
            score_samples.setdefault(code, []).append(row["score"])

    summary.no_failure_fraction = no_failures / trials
    summary.cable_failure_frequency = {
        cable_id: count / trials for cable_id, count in failure_counts.items()
    }
    summary.mean_capacity_lost_gbps = sum(capacity_losses) / trials
    ordered_losses = sorted(capacity_losses)
    p95_index = min(len(ordered_losses) - 1, int(0.95 * len(ordered_losses)))
    summary.p95_capacity_lost_gbps = ordered_losses[p95_index]
    summary.country_mean_score = {
        code: total / trials for code, total in score_sums.items()
    }
    for code, samples in score_samples.items():
        padded = sorted(samples + [0.0] * (trials - len(samples)))
        summary.country_p95_score[code] = padded[
            min(len(padded) - 1, int(0.95 * len(padded)))
        ]
    return summary


def monte_carlo_sweep(
    world: SyntheticWorld,
    event: DisasterEvent | dict,
    probabilities: list[float],
    trials: int = 50,
    base_seed: int = 0,
) -> list[MonteCarloSummary]:
    """Sweep failure probability; expected losses must grow monotonically."""
    return [
        monte_carlo_impact(world, event, p, trials=trials, base_seed=base_seed)
        for p in probabilities
    ]
