"""Registry-facing Xaminer functions.

:func:`process_event` is the versatile single-function entry point the paper
highlights in case study 2 — it handles cable cuts, earthquakes and
hurricanes through the same footprint → failure → impact pipeline, so a
multi-disaster analysis needs nothing beyond calling it per event and
combining the reports.
"""

from __future__ import annotations

from repro.xaminer.aggregate import as_impact_embeddings, rank_countries
from repro.xaminer.events import event_footprint
from repro.xaminer.failures import simulate_failures
from repro.xaminer.impact import ImpactReport, compute_impact
from repro.xaminer.risk import country_risk_profile, most_exposed_countries
from repro.synth.scenarios import DisasterEvent, DisasterKind, default_disaster_catalog
from repro.synth.world import SyntheticWorld


def _coerce_event(world: SyntheticWorld, event_spec: DisasterEvent | dict) -> DisasterEvent:
    """Accept either a DisasterEvent or a JSON-able spec dict.

    Generated workflows pass dicts (they speak JSON); expert code passes
    dataclasses.  Both must behave identically.
    """
    if isinstance(event_spec, DisasterEvent):
        return event_spec
    kind = DisasterKind(event_spec["kind"])
    center = event_spec.get("center")
    return DisasterEvent(
        id=event_spec.get("id", f"adhoc-{kind.value}"),
        kind=kind,
        name=event_spec.get("name", event_spec.get("id", kind.value)),
        center=tuple(center) if center is not None else None,
        radius_km=float(event_spec.get("radius_km", 0.0)),
        magnitude=float(event_spec.get("magnitude", 0.0)),
        cable_names=tuple(event_spec.get("cable_names", ())),
        timestamp=float(event_spec.get("timestamp", 0.0)),
    )


def process_event(
    world: SyntheticWorld,
    event_spec: DisasterEvent | dict,
    failure_probability: float = 1.0,
    seed: int = 0,
) -> dict:
    """Process one event end to end: footprint, failures, impact, rankings.

    Returns a JSON-able report::

        {event, footprint, failed_cable_ids, failed_link_ids,
         country_ranking, as_ranking, isolated_asns,
         total_capacity_lost_gbps}
    """
    event = _coerce_event(world, event_spec)
    footprint = event_footprint(world, event)
    sample = simulate_failures(world, footprint, failure_probability, seed=seed)
    report = compute_impact(world, sample.failed_link_ids)
    return {
        "event": {
            "id": event.id,
            "kind": event.kind.value,
            "name": event.name,
            "magnitude": event.magnitude,
            "severe": event.is_severe,
        },
        "footprint": footprint.to_dict(),
        "failed_cable_ids": sample.failed_cable_ids,
        "failed_link_ids": sample.failed_link_ids,
        "country_ranking": rank_countries(report),
        "as_ranking": as_impact_embeddings(world, report)[:25],
        "isolated_asns": report.isolated_asns,
        "total_capacity_lost_gbps": report.to_dict()["total_capacity_lost_gbps"],
    }


def country_impact(world: SyntheticWorld, failed_link_ids: list[str]) -> list[dict]:
    """Country ranking for an explicit failed-link set."""
    report = compute_impact(world, failed_link_ids)
    return rank_countries(report)


def as_impact(world: SyntheticWorld, failed_link_ids: list[str]) -> list[dict]:
    """AS ranking for an explicit failed-link set."""
    report = compute_impact(world, failed_link_ids)
    return as_impact_embeddings(world, report)


def risk_profile(world: SyntheticWorld, country_code: str | None = None) -> dict | list[dict]:
    """Risk profile for one country, or the most exposed countries overall."""
    if country_code is not None:
        return country_risk_profile(world, country_code)
    return most_exposed_countries(world)


def list_disasters(world: SyntheticWorld, severe_only: bool = False) -> list[dict]:
    """The disaster catalog as JSON-able rows."""
    rows = []
    for event in default_disaster_catalog():
        if severe_only and not event.is_severe:
            continue
        rows.append(
            {
                "id": event.id,
                "kind": event.kind.value,
                "name": event.name,
                "center": list(event.center) if event.center else None,
                "radius_km": event.radius_km,
                "magnitude": event.magnitude,
                "severe": event.is_severe,
                "timestamp": event.timestamp,
            }
        )
    return rows


def combine_impact_reports(reports: list[dict]) -> dict:
    """Merge per-event reports into one global impact summary.

    Country scores add (capped at 1.0 per metric by construction downstream);
    failed sets union.  This is the "combine results for comprehensive global
    impact metrics" step both workflows in case study 2 perform.
    """
    combined_links: set[str] = set()
    combined_cables: set[str] = set()
    country_scores: dict[str, float] = {}
    capacity = 0.0
    for report in reports:
        combined_links.update(report.get("failed_link_ids", []))
        combined_cables.update(report.get("failed_cable_ids", []))
        capacity += report.get("total_capacity_lost_gbps", 0.0)
        for row in report.get("country_ranking", []):
            code = row["country"]
            country_scores[code] = country_scores.get(code, 0.0) + row["score"]
    ranking = [
        {"country": code, "score": round(score, 6)}
        for code, score in sorted(country_scores.items(), key=lambda kv: kv[1], reverse=True)
    ]
    return {
        "events_combined": len(reports),
        "failed_cable_ids": sorted(combined_cables),
        "failed_link_ids": sorted(combined_links),
        "country_ranking": ranking,
        "total_capacity_lost_gbps": round(capacity, 1),
    }
