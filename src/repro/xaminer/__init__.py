"""Xaminer substrate: Internet cross-layer resilience analysis.

A reimplementation of the analysis surface of Xaminer (Ramanathan, Sankaran
& Abdu Jyothi, SIGMETRICS 2024), the framework the ArachNet case studies use
as expert benchmark.  Xaminer consumes Nautilus-style cross-layer maps and
answers *what breaks when infrastructure fails*: it turns events (cable
cuts, earthquakes, hurricanes) into probabilistic failure sets and aggregates
the damage into country- and AS-level impact metrics.

The versatile :func:`repro.xaminer.api.process_event` is the single entry
point case study 2 leans on; the submodules expose each stage separately.
"""

from repro.xaminer.events import EventFootprint, event_footprint, footprint_exposures
from repro.xaminer.failures import FailureSample, expected_failure_weights, simulate_failures
from repro.xaminer.impact import CountryImpact, ImpactReport, compute_impact
from repro.xaminer.aggregate import (
    as_impact_embeddings,
    country_impact_embeddings,
    rank_countries,
)
from repro.xaminer.risk import country_risk_profile
from repro.xaminer.api import (
    as_impact,
    combine_impact_reports,
    country_impact,
    list_disasters,
    process_event,
    risk_profile,
)

__all__ = [
    "EventFootprint",
    "event_footprint",
    "footprint_exposures",
    "FailureSample",
    "expected_failure_weights",
    "simulate_failures",
    "CountryImpact",
    "ImpactReport",
    "compute_impact",
    "as_impact_embeddings",
    "country_impact_embeddings",
    "rank_countries",
    "country_risk_profile",
    "as_impact",
    "combine_impact_reports",
    "country_impact",
    "list_disasters",
    "process_event",
    "risk_profile",
]
