"""Failure simulation: from event footprints to concrete failure sets.

Two modes, as in Xaminer:

* **Sampled** — every exposed cable fails with probability
  ``failure_probability * exposure`` (Bernoulli, seeded).  Used for Monte
  Carlo sweeps.
* **Expected** — deterministic per-cable failure *weights* equal to that
  probability, for expectation-based impact without sampling noise.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.xaminer.events import EventFootprint
from repro.synth.world import SyntheticWorld


@dataclass
class FailureSample:
    """One concrete draw of failed infrastructure."""

    failed_cable_ids: list[str] = field(default_factory=list)
    failed_link_ids: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "failed_cable_ids": list(self.failed_cable_ids),
            "failed_link_ids": list(self.failed_link_ids),
        }


def links_for_cables(world: SyntheticWorld, cable_ids: list[str]) -> list[str]:
    """All IP links riding any of the given cables (ground-truth layer)."""
    out: list[str] = []
    for cable_id in cable_ids:
        out.extend(link.id for link in world.links_on_cable(cable_id))
    return sorted(set(out))


def simulate_failures(
    world: SyntheticWorld,
    footprint: EventFootprint,
    failure_probability: float = 1.0,
    seed: int = 0,
) -> FailureSample:
    """Draw one failure sample from a footprint.

    Every cable the footprint *touches* (exposure > 0) fails independently
    with ``failure_probability`` — the paper's case study 2 asks for "a 10%
    infra failure probability", a per-asset probability, not one scaled by
    how deeply the asset sits in the footprint.  The seed is mixed with the
    event id so that a multi-event sweep with one user seed still draws
    independently per event.
    """
    if not 0.0 <= failure_probability <= 1.0:
        raise ValueError("failure_probability must be within [0, 1]")
    rng = random.Random(f"{seed}:{footprint.event_id}")
    failed_cables: list[str] = []
    for cable_id in sorted(footprint.cable_exposure):
        exposure = footprint.cable_exposure[cable_id]
        if exposure > 0 and rng.random() < failure_probability:
            failed_cables.append(cable_id)
    return FailureSample(
        failed_cable_ids=failed_cables,
        failed_link_ids=links_for_cables(world, failed_cables),
    )


def expected_failure_weights(
    footprint: EventFootprint, failure_probability: float = 1.0
) -> dict[str, float]:
    """Per-cable failure weights for expectation-based impact."""
    if not 0.0 <= failure_probability <= 1.0:
        raise ValueError("failure_probability must be within [0, 1]")
    return {
        cable_id: failure_probability
        for cable_id, exposure in footprint.cable_exposure.items()
        if exposure > 0
    }
