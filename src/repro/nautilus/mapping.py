"""IP-link to submarine-cable mapping — the heart of Nautilus.

For each submarine IP link the mapper geolocates both endpoints (through the
noisy :class:`~repro.nautilus.geolocation.Geolocator`, not the world's ground
truth), ranks candidate cables by landing-point detour, and — when latency
measurements are available — validates candidates against the RTT-implied
physical distance.  Geometry alone cannot separate parallel systems on the
same corridor (SeaMeWe-5 vs AAE-1); RTT matching is what lifts accuracy to
the level the Nautilus paper reports, and it is how the real system validates
its mappings too.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.nautilus.geolocation import Geolocator
from repro.nautilus.sol import FIBER_SPEED_KM_PER_MS, min_rtt_ms
from repro.synth.iplinks import (
    IPLink,
    LinkKind,
    cable_path_km,
    rank_cables_for_link,
    true_path_km,
)
from repro.synth.geography import haversine_km
from repro.synth.world import SyntheticWorld

#: Per-link processing overhead added to the propagation delay (ms).
_HOP_OVERHEAD_MS = 1.0


def observed_link_rtt_ms(world: SyntheticWorld, link: IPLink) -> float:
    """Measured RTT over one link, as traceroute would report it.

    Propagation over the link's true physical path, plus processing overhead,
    plus a deterministic per-link jitter of up to ±2% (min-RTT over repeated
    probes is stable) — the same measurement
    every substrate observes for this link.
    """
    path = true_path_km(link, world.cables, world.landing_points)
    base = min_rtt_ms(path) + _HOP_OVERHEAD_MS
    digest = hashlib.sha256(link.id.encode()).digest()
    jitter = (int.from_bytes(digest[:8], "big") / 2**64 - 0.5) * 0.04
    return base * (1.0 + jitter)


@dataclass(frozen=True)
class CableMapping:
    """The mapping verdict for one IP link."""

    link_id: str
    cable_id: str | None
    confidence: float  # 0..1
    candidates: tuple[tuple[str, float], ...] = field(default=())  # (cable_id, score)
    rtt_validated: bool = False

    @property
    def is_confident(self) -> bool:
        return self.confidence >= 0.5


class CrossLayerMapper:
    """Maps submarine IP links to cables using geometry plus RTT validation."""

    def __init__(
        self,
        world: SyntheticWorld,
        geolocator: Geolocator | None = None,
        candidate_count: int = 5,
        use_rtt: bool = True,
    ):
        self._world = world
        self._geo = geolocator or Geolocator(world)
        self._candidate_count = candidate_count
        self._use_rtt = use_rtt

    def map_link(self, link: IPLink, observed_rtt_ms: float | None = None) -> CableMapping:
        """Map one link to its most plausible cable.

        When no RTT is passed and the mapper was built with ``use_rtt``, it
        pulls the link's measured RTT itself (the traceroute feed is always
        available in a deployment).
        """
        if link.kind is not LinkKind.SUBMARINE:
            return CableMapping(link_id=link.id, cable_id=None, confidence=1.0)
        coord_a = self._geo.locate(link.ip_a).coord
        coord_b = self._geo.locate(link.ip_b).coord
        ranked = rank_cables_for_link(
            coord_a, coord_b, self._world.cables, self._world.landing_points
        )[: self._candidate_count]
        if observed_rtt_ms is None and self._use_rtt:
            observed_rtt_ms = observed_link_rtt_ms(self._world, link)

        if observed_rtt_ms is not None:
            scores = self._rtt_scores(ranked, coord_a, coord_b, observed_rtt_ms)
            rtt_validated = True
        else:
            best_detour = ranked[0][1] if ranked else 0.0
            scores = [(cid, best_detour / max(d, 1.0)) for cid, d in ranked]
            rtt_validated = False

        if not scores:
            return CableMapping(link_id=link.id, cable_id=None, confidence=0.0)
        scores.sort(key=lambda pair: pair[1], reverse=True)
        total = sum(s for _, s in scores)
        confidence = scores[0][1] / total if total > 0 else 0.0
        return CableMapping(
            link_id=link.id,
            cable_id=scores[0][0],
            confidence=confidence,
            candidates=tuple(scores),
            rtt_validated=rtt_validated,
        )

    def map_all(self) -> dict[str, CableMapping]:
        """Map every submarine link in the world."""
        return {link.id: self.map_link(link) for link in self._world.submarine_links()}

    def truth_in_candidates_rate(self, min_relative_score: float = 0.5) -> float:
        """Fraction of links whose true cable appears in the candidate set.

        A candidate counts when its score reaches ``min_relative_score`` of
        the top candidate's — the same rule dependency extraction applies.
        Real Nautilus reports accuracy per confidence *category*; this is the
        analogous set-level validation number.
        """
        links = self._world.submarine_links()
        if not links:
            return 1.0
        hits = 0
        for link in links:
            mapping = self.map_link(link)
            if not mapping.candidates:
                continue
            top = mapping.candidates[0][1]
            eligible = {
                cid for cid, s in mapping.candidates if top and s >= min_relative_score * top
            }
            if link.cable_id in eligible:
                hits += 1
        return hits / len(links)

    def accuracy_against_truth(self) -> float:
        """Fraction of submarine links whose mapped cable matches ground truth.

        Used by validation tests and the registry-scaling benchmark; real
        Nautilus reports the analogous validation against known cable faults.
        """
        links = self._world.submarine_links()
        if not links:
            return 1.0
        hits = sum(1 for link in links if self.map_link(link).cable_id == link.cable_id)
        return hits / len(links)

    # -- internals -----------------------------------------------------------

    def _rtt_scores(
        self,
        ranked: list[tuple[str, float]],
        coord_a: tuple[float, float],
        coord_b: tuple[float, float],
        observed_rtt_ms: float,
    ) -> list[tuple[str, float]]:
        """Score candidates by agreement between path length and RTT.

        The observed RTT implies a physical distance; candidates whose path
        deviates from it lose score exponentially (1000 km e-folding).  The
        implied distance subtracts the per-hop overhead first.
        """
        implied_km = max(0.0, (observed_rtt_ms - _HOP_OVERHEAD_MS)) * FIBER_SPEED_KM_PER_MS / 2.0
        scores: list[tuple[str, float]] = []
        for cable_id, _detour in ranked:
            path = self._candidate_path_km(cable_id, coord_a, coord_b)
            mismatch_km = abs(path - implied_km)
            scores.append((cable_id, 2.718281828 ** (-mismatch_km / 1000.0)))
        return scores

    def _candidate_path_km(
        self, cable_id: str, coord_a: tuple[float, float], coord_b: tuple[float, float]
    ) -> float:
        cable = self._world.cables[cable_id]
        lps = [self._world.landing_points[i] for i in cable.landing_point_ids]
        near_a = min(lps, key=lambda lp: haversine_km(coord_a, lp.coord))
        near_b = min(lps, key=lambda lp: haversine_km(coord_b, lp.coord))
        if near_a.id == near_b.id:
            return haversine_km(coord_a, coord_b)
        return (
            haversine_km(coord_a, near_a.coord) * 1.3
            + cable_path_km(cable, near_a.id, near_b.id)
            + haversine_km(near_b.coord, coord_b) * 1.3
        )
