"""Registry-facing Nautilus functions.

These are the "core Nautilus system functions" that case study 1 exposes to
the agents (§4.1 withholds Xaminer's higher-level abstractions and provides
only these).  Every function takes the world as its first argument and
returns JSON-able dictionaries — the heterogeneous "tool output formats" that
SolutionWeaver's translation layer adapts between frameworks.
"""

from __future__ import annotations

from repro.nautilus.dependencies import extract_cable_dependencies
from repro.nautilus.geolocation import Geolocator
from repro.nautilus.mapping import CrossLayerMapper
from repro.nautilus.sol import min_rtt_ms
from repro.synth.geography import haversine_km
from repro.synth.world import SyntheticWorld


def list_cables(world: SyntheticWorld) -> list[dict]:
    """Catalog of known submarine cables with coarse metadata."""
    out = []
    for cable in sorted(world.cables.values(), key=lambda c: c.name):
        out.append(
            {
                "cable_id": cable.id,
                "name": cable.name,
                "length_km": round(cable.length_km, 1),
                "capacity_tbps": cable.capacity_tbps,
                "rfs_year": cable.rfs_year,
                "landing_countries": cable.country_codes(world.landing_points),
            }
        )
    return out


def get_cable_info(world: SyntheticWorld, cable_name: str) -> dict:
    """Detailed record for one cable, looked up by human name."""
    cable = world.cable_named(cable_name)
    return {
        "cable_id": cable.id,
        "name": cable.name,
        "length_km": round(cable.length_km, 1),
        "capacity_tbps": cable.capacity_tbps,
        "rfs_year": cable.rfs_year,
        "owners": list(cable.owners),
        "landing_points": [
            {
                "id": lp_id,
                "city": world.landing_points[lp_id].city,
                "country": world.landing_points[lp_id].country_code,
                "lat": world.landing_points[lp_id].lat,
                "lon": world.landing_points[lp_id].lon,
            }
            for lp_id in cable.landing_point_ids
        ],
        "segments": [
            {
                "index": seg.index,
                "src": seg.src_landing,
                "dst": seg.dst_landing,
                "length_km": round(seg.length_km, 1),
            }
            for seg in cable.segments
        ],
    }


def get_landing_points(world: SyntheticWorld, cable_name: str) -> list[dict]:
    """Ordered landing points of a cable."""
    return get_cable_info(world, cable_name)["landing_points"]


def map_ip_links_to_cables(world: SyntheticWorld) -> dict[str, dict]:
    """Run the cross-layer mapper over every submarine link.

    Returns ``{link_id: {cable_id, confidence, candidates}}`` — the primary
    Nautilus output that downstream impact analysis consumes.
    """
    mapper = CrossLayerMapper(world)
    out: dict[str, dict] = {}
    for link_id, mapping in mapper.map_all().items():
        link = world.link_by_id[link_id]
        cable_name = (
            world.cables[mapping.cable_id].name if mapping.cable_id else None
        )
        out[link_id] = {
            "link_id": link_id,
            "cable_id": mapping.cable_id,
            "cable_name": cable_name,
            "confidence": round(mapping.confidence, 4),
            "candidates": [
                {"cable_id": cid, "score": round(score, 4)}
                for cid, score in mapping.candidates
            ],
            "asn_a": link.asn_a,
            "asn_b": link.asn_b,
            "country_a": link.country_a,
            "country_b": link.country_b,
            "capacity_gbps": link.capacity_gbps,
        }
    return out


def get_cable_dependencies(world: SyntheticWorld, cable_name: str) -> dict:
    """Dependency set of a cable: links, IPs, ASes, adjacencies, countries.

    Uses the *inferred* cross-layer mapping, as a real deployment would —
    ground truth is not observable from measurement data.
    """
    cable = world.cable_named(cable_name)
    mapper = CrossLayerMapper(world)
    mappings = mapper.map_all()
    return extract_cable_dependencies(world, cable.id, mappings).to_dict()


def geolocate_ips(world: SyntheticWorld, ips: list[str]) -> dict[str, dict]:
    """Geolocate a batch of IPs to coordinates and countries."""
    geo = Geolocator(world)
    out: dict[str, dict] = {}
    for ip in ips:
        result = geo.locate(ip)
        out[ip] = {
            "ip": ip,
            "lat": round(result.lat, 4),
            "lon": round(result.lon, 4),
            "country": result.country_code,
            "uncertainty_km": result.uncertainty_km,
            "source": result.source,
        }
    return out


def sol_validate_link(world: SyntheticWorld, link_id: str, observed_rtt_ms: float) -> dict:
    """Check an observed link RTT against the speed-of-light bound."""
    link = world.link_by_id[link_id]
    distance = haversine_km(link.coord_a, link.coord_b)
    bound = min_rtt_ms(distance)
    return {
        "link_id": link_id,
        "distance_km": round(distance, 1),
        "min_rtt_ms": round(bound, 3),
        "observed_rtt_ms": observed_rtt_ms,
        "feasible": observed_rtt_ms + 2.0 >= bound,
    }
