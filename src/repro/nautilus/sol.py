"""Speed-of-light feasibility checks.

Light in single-mode fiber travels at roughly two thirds of c, giving the
canonical ~0.01 ms per km round-trip bound that Nautilus uses to reject
geolocation candidates and infeasible cable assignments.
"""

from __future__ import annotations

SPEED_OF_LIGHT_KM_PER_MS = 299.792458
FIBER_REFRACTIVE_FACTOR = 0.66
FIBER_SPEED_KM_PER_MS = SPEED_OF_LIGHT_KM_PER_MS * FIBER_REFRACTIVE_FACTOR


def min_rtt_ms(distance_km: float) -> float:
    """Lower bound on round-trip time over ``distance_km`` of fiber."""
    if distance_km < 0:
        raise ValueError("distance cannot be negative")
    return 2.0 * distance_km / FIBER_SPEED_KM_PER_MS


def max_distance_km(rtt_ms: float) -> float:
    """Upper bound on one-way fiber distance given an observed RTT."""
    if rtt_ms < 0:
        raise ValueError("RTT cannot be negative")
    return rtt_ms * FIBER_SPEED_KM_PER_MS / 2.0


def sol_compatible(rtt_ms: float, distance_km: float, slack_ms: float = 2.0) -> bool:
    """True when an observed RTT is physically achievable over a distance.

    ``slack_ms`` absorbs serialisation and queueing; Nautilus uses a small
    constant for the same purpose.
    """
    return rtt_ms + slack_ms >= min_rtt_ms(distance_km)


def path_feasible(rtt_ms: float, path_km: float, slack_ms: float = 2.0) -> bool:
    """True when a candidate physical path could explain an observed RTT.

    The inverse check of :func:`sol_compatible`: a candidate *path* is ruled
    out when light could not traverse it within the observed RTT.
    """
    return min_rtt_ms(path_km) <= rtt_ms + slack_ms
