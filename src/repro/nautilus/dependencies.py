"""Cable dependency extraction: what rides on a given cable.

Given a cross-layer mapping, dependency extraction answers the inverse
question to mapping: for a cable, which IP links, addresses, ASes, AS-level
adjacencies and countries depend on it.  These are exactly the raw materials
the Xaminer-style impact analysis aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.nautilus.mapping import CableMapping
from repro.synth.world import SyntheticWorld


@dataclass
class CableDependencies:
    """Everything that depends on one submarine cable."""

    cable_id: str
    cable_name: str
    link_ids: list[str] = field(default_factory=list)
    ips: list[str] = field(default_factory=list)
    asns: list[int] = field(default_factory=list)
    as_adjacencies: list[tuple[int, int]] = field(default_factory=list)
    country_codes: list[str] = field(default_factory=list)
    total_capacity_gbps: float = 0.0

    def to_dict(self) -> dict:
        """JSON-able view, the format the registry function returns."""
        return {
            "cable_id": self.cable_id,
            "cable_name": self.cable_name,
            "link_ids": list(self.link_ids),
            "ips": list(self.ips),
            "asns": list(self.asns),
            "as_adjacencies": [list(pair) for pair in self.as_adjacencies],
            "country_codes": list(self.country_codes),
            "total_capacity_gbps": self.total_capacity_gbps,
        }


def _mapping_covers(mapping: CableMapping, cable_id: str, min_relative_score: float) -> bool:
    """True when the inferred mapping places the link on ``cable_id``.

    Membership is set-based: the cable counts when its candidate score is at
    least ``min_relative_score`` of the top candidate's.  Parallel systems on
    the same corridor are often physically indistinguishable, so Nautilus
    attributes a link to every plausible cable rather than forcing a top-1
    pick — impact analysis must not miss a dependency because two cables
    differ by 8 km of wet path.
    """
    if mapping.cable_id == cable_id:
        return True
    if not mapping.candidates:
        return False
    top = mapping.candidates[0][1]
    if top <= 0:
        return False
    return any(
        cid == cable_id and score >= min_relative_score * top
        for cid, score in mapping.candidates
    )


def extract_cable_dependencies(
    world: SyntheticWorld,
    cable_id: str,
    mappings: dict[str, CableMapping] | None = None,
    min_relative_score: float = 0.5,
) -> CableDependencies:
    """Collect the dependency set of one cable.

    When ``mappings`` is provided, the function honours the *inferred*
    cross-layer view (including its mistakes and candidate-set ambiguity);
    otherwise it reads the world's ground-truth assignment.  Workflows built
    by ArachNet always pass the inferred view — they cannot see ground truth
    — while validation tests compare both.
    """
    cable = world.cables[cable_id]
    deps = CableDependencies(cable_id=cable_id, cable_name=cable.name)
    seen_asns: set[int] = set()
    seen_adjacencies: set[tuple[int, int]] = set()
    seen_countries: set[str] = set()

    for link in world.submarine_links():
        if mappings is not None:
            mapping = mappings.get(link.id)
            if mapping is None or not _mapping_covers(mapping, cable_id, min_relative_score):
                continue
        elif link.cable_id != cable_id:
            continue
        deps.link_ids.append(link.id)
        deps.ips.extend([link.ip_a, link.ip_b])
        seen_asns.update((link.asn_a, link.asn_b))
        seen_adjacencies.add(link.as_pair)
        seen_countries.update((link.country_a, link.country_b))
        deps.total_capacity_gbps += link.capacity_gbps

    deps.asns = sorted(seen_asns)
    deps.as_adjacencies = sorted(seen_adjacencies)
    deps.country_codes = sorted(seen_countries)
    return deps


def cables_touching_country(world: SyntheticWorld, country_code: str) -> list[str]:
    """Cable ids with at least one landing point in the given country."""
    out: list[str] = []
    for cable in world.cables.values():
        for lp_id in cable.landing_point_ids:
            if world.landing_points[lp_id].country_code == country_code:
                out.append(cable.id)
                break
    return out


def cables_between_regions(world: SyntheticWorld, region_a, region_b) -> list[str]:
    """Cables with landing points in both regions (e.g. Europe and Asia).

    This is the geographic filter the cascading-failure case study applies to
    scope "submarine cable failures between Europe and Asia".
    """
    out: list[str] = []
    for cable in world.cables.values():
        regions = {
            world.country(world.landing_points[lp].country_code).region
            for lp in cable.landing_point_ids
        }
        if region_a in regions and region_b in regions:
            out.append(cable.id)
    return out
