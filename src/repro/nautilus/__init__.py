"""Nautilus substrate: cross-layer cartography of submarine cables and IP links.

A reimplementation of the public surface of the Nautilus framework
(Ramanathan & Abdu Jyothi, SIGMETRICS 2023) that the ArachNet paper uses as
its mapping substrate.  Nautilus answers one question: *which submarine cable
does an IP link ride?* — by combining geolocation of link endpoints,
speed-of-light feasibility, and landing-point geometry.

The registry-facing functions live in :mod:`repro.nautilus.api`; the classes
underneath are usable directly for finer control.
"""

from repro.nautilus.geolocation import GeoResult, Geolocator
from repro.nautilus.sol import FIBER_SPEED_KM_PER_MS, min_rtt_ms, sol_compatible
from repro.nautilus.mapping import CableMapping, CrossLayerMapper
from repro.nautilus.dependencies import CableDependencies, extract_cable_dependencies
from repro.nautilus.api import (
    geolocate_ips,
    get_cable_dependencies,
    get_cable_info,
    get_landing_points,
    list_cables,
    map_ip_links_to_cables,
    sol_validate_link,
)

__all__ = [
    "GeoResult",
    "Geolocator",
    "FIBER_SPEED_KM_PER_MS",
    "min_rtt_ms",
    "sol_compatible",
    "CableMapping",
    "CrossLayerMapper",
    "CableDependencies",
    "extract_cable_dependencies",
    "geolocate_ips",
    "get_cable_dependencies",
    "get_cable_info",
    "get_landing_points",
    "list_cables",
    "map_ip_links_to_cables",
    "sol_validate_link",
]
