"""IP geolocation over the synthetic world.

Real Nautilus combines several commercial geolocation feeds and validates
them against speed-of-light constraints.  Here the world itself knows where
each router sits; the geolocator reproduces the *imperfection* of real feeds
by adding a deterministic, per-IP offset bounded by ``uncertainty_km``.
Determinism matters: two agents geolocating the same IP must agree, or
downstream consistency checks would flag phantom conflicts.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass

from repro.synth.geography import haversine_km
from repro.synth.world import SyntheticWorld


@dataclass(frozen=True)
class GeoResult:
    """A geolocation answer for one IP."""

    ip: str
    lat: float
    lon: float
    country_code: str
    uncertainty_km: float
    source: str  # "router" when from link endpoints, "prefix" when from origin

    @property
    def coord(self) -> tuple[float, float]:
        return (self.lat, self.lon)


def _stable_unit_pair(key: str) -> tuple[float, float]:
    """Two deterministic floats in [-1, 1) derived from a string key."""
    digest = hashlib.sha256(key.encode()).digest()
    a = int.from_bytes(digest[:8], "big") / 2**64
    b = int.from_bytes(digest[8:16], "big") / 2**64
    return (a * 2.0 - 1.0, b * 2.0 - 1.0)


class Geolocator:
    """Geolocates IPs seen in the world's link endpoints and prefixes."""

    def __init__(self, world: SyntheticWorld, uncertainty_km: float = 40.0):
        self._world = world
        self._uncertainty_km = uncertainty_km
        # Router endpoints: exact coordinates are known to the world.
        self._router_coords: dict[str, tuple[tuple[float, float], str]] = {}
        for link in world.ip_links:
            self._router_coords[link.ip_a] = (link.coord_a, link.country_a)
            self._router_coords[link.ip_b] = (link.coord_b, link.country_b)

    def locate(self, ip: str) -> GeoResult:
        """Geolocate one IP; falls back to prefix-origin country centroid."""
        if ip in self._router_coords:
            (lat, lon), country = self._router_coords[ip]
            source = "router"
        else:
            prefix = self._prefix_for(ip)
            if prefix is None:
                raise KeyError(f"IP {ip} is not announced in this world")
            country_obj = self._world.country(prefix.country_code)
            lat, lon = country_obj.lat, country_obj.lon
            country = prefix.country_code
            source = "prefix"
        # Deterministic per-IP noise bounded by the configured uncertainty.
        dx, dy = _stable_unit_pair(ip)
        km_per_deg_lat = 111.0
        km_per_deg_lon = max(1.0, 111.0 * abs(math.cos(math.radians(lat))))
        noisy_lat = lat + dx * self._uncertainty_km / km_per_deg_lat
        noisy_lon = lon + dy * self._uncertainty_km / km_per_deg_lon
        return GeoResult(
            ip=ip,
            lat=noisy_lat,
            lon=noisy_lon,
            country_code=country,
            uncertainty_km=self._uncertainty_km,
            source=source,
        )

    def locate_many(self, ips: list[str]) -> dict[str, GeoResult]:
        return {ip: self.locate(ip) for ip in ips}

    def country_of(self, ip: str) -> str:
        return self.locate(ip).country_code

    def distance_km(self, ip_a: str, ip_b: str) -> float:
        """Great-circle distance between two geolocated IPs."""
        a = self.locate(ip_a)
        b = self.locate(ip_b)
        return haversine_km(a.coord, b.coord)

    def _prefix_for(self, ip: str):
        import ipaddress

        addr = ipaddress.ip_address(ip)
        for prefix in self._world.all_prefixes():
            if addr in prefix.network:
                return prefix
        return None
