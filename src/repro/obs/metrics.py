"""One registry for every counter in the system.

Before this module the system's numbers lived in scattered ad-hoc dicts —
``broker.stats()``, ``backend.stats()["affinity"]``, ``cache_info()``,
``bus.stats()`` — each with its own shape and no way to scrape them
together.  A :class:`MetricsRegistry` holds three instrument kinds:

* :class:`Counter` — monotonic totals (jobs submitted, bus drops);
* :class:`Gauge` — point-in-time levels (queue depth, hit rates);
* :class:`Histogram` — distributions over log-scale buckets (queue wait,
  forensic verdict latency) — powers of two from 1 ms, because service
  latencies spread over orders of magnitude and linear buckets waste
  resolution where nothing lives.

Two integration mechanisms keep instrumentation cheap where it must be:

* **Collectors** (:meth:`MetricsRegistry.register_collector`) are
  callbacks run at scrape time — the broker registers one that refreshes
  gauges from ``backend.stats()``/cache stats, so the hot paths keep
  their existing lock-local counters and the registry pays only on dump.
* **Delta draining** (:meth:`drain_deltas` / :meth:`absorb`) moves
  counter increments across the process boundary: worker processes drain
  their local registry after each job and the deltas ride the existing
  reply pipes back to the broker's registry — no extra IPC channel.

``prometheus_text()`` renders the whole registry in Prometheus text
exposition format (the ``--metrics-dump`` CLI flag); ``snapshot()`` is
the dict form published periodically on the :data:`METRICS_TOPIC` bus
topic in live mode.
"""

from __future__ import annotations

import bisect
import re
import threading

#: EventBus topic live mode publishes registry snapshots on, once per epoch.
METRICS_TOPIC = "metrics"

#: Log-scale latency buckets (seconds): 1ms · 2^k up to ~65s.
DEFAULT_LATENCY_BUCKETS = tuple(0.001 * (2 ** k) for k in range(17))

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

LabelPairs = tuple  # tuple[tuple[str, str], ...] — sorted, hashable


def _label_pairs(labels: dict | None) -> LabelPairs:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    """Prometheus text-exposition escaping: backslash, double-quote and
    newline must not appear raw inside a quoted label value."""
    return (value.replace("\\", "\\\\")
                 .replace('"', '\\"')
                 .replace("\n", "\\n"))


def render_name(name: str, pairs: LabelPairs) -> str:
    """``name{k="v",...}`` — the Prometheus sample identity."""
    if not pairs:
        return name
    inner = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in pairs)
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonic float total; ``inc`` only."""

    kind = "counter"
    __slots__ = ("name", "labels", "_value", "_drained", "_lock")

    def __init__(self, name: str, labels: LabelPairs = ()):
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._drained = 0.0  # high-water mark of the last drain_deltas
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def _delta(self) -> float:
        with self._lock:
            delta = self._value - self._drained
            self._drained = self._value
            return delta


class Gauge:
    """Point-in-time level; settable, inc/dec-able."""

    kind = "gauge"
    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: LabelPairs = ()):
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram (defaults to log-scale latency buckets)."""

    kind = "histogram"
    __slots__ = ("name", "labels", "bounds", "_counts", "_sum", "_count", "_lock")

    def __init__(self, name: str, labels: LabelPairs = (),
                 buckets: tuple[float, ...] | None = None):
        self.name = name
        self.labels = labels
        bounds = tuple(buckets) if buckets else DEFAULT_LATENCY_BUCKETS
        if list(bounds) != sorted(bounds):
            raise ValueError("histogram buckets must be sorted ascending")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1: the +Inf bucket
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def total(self) -> float:
        with self._lock:
            return self._sum

    def snapshot(self) -> dict:
        """Cumulative bucket counts keyed by upper bound, Prometheus-style."""
        with self._lock:
            counts = list(self._counts)
            total, count = self._sum, self._count
        cumulative: dict[str, int] = {}
        running = 0
        for bound, bucket_count in zip(self.bounds, counts):
            running += bucket_count
            cumulative[f"{bound:g}"] = running
        cumulative["+Inf"] = running + counts[-1]
        return {"count": count, "sum": total, "buckets": cumulative,
                "mean": (total / count) if count else 0.0}


class MetricsRegistry:
    """Thread-safe home for every instrument, plus scrape-time collectors."""

    def __init__(self):
        self._metrics: dict[tuple[str, LabelPairs], object] = {}
        self._collectors: list = []
        self._lock = threading.Lock()

    # -- instrument access (get-or-create) ---------------------------------

    def _instrument(self, cls, name: str, labels: dict | None, **kwargs):
        if not _NAME_RE.match(name):
            raise ValueError(
                f"metric name {name!r} is not Prometheus-safe "
                "([a-zA-Z_:][a-zA-Z0-9_:]*)"
            )
        pairs = _label_pairs(labels)
        key = (name, pairs)
        with self._lock:
            instrument = self._metrics.get(key)
            if instrument is None:
                instrument = cls(name, pairs, **kwargs)
                self._metrics[key] = instrument
            elif not isinstance(instrument, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{instrument.kind}, requested {cls.kind}"
                )
            return instrument

    def counter(self, name: str, labels: dict | None = None) -> Counter:
        return self._instrument(Counter, name, labels)

    def gauge(self, name: str, labels: dict | None = None) -> Gauge:
        return self._instrument(Gauge, name, labels)

    def histogram(self, name: str, labels: dict | None = None,
                  buckets: tuple[float, ...] | None = None) -> Histogram:
        return self._instrument(Histogram, name, labels, buckets=buckets)

    def _all(self) -> list:
        with self._lock:
            return [self._metrics[k] for k in sorted(self._metrics)]

    # -- collectors --------------------------------------------------------

    def register_collector(self, fn) -> None:
        """``fn(registry)`` runs at every scrape (snapshot/prometheus_text)
        to refresh gauges from live sources — Prometheus custom-collector
        style, so hot paths never pay for metrics nobody is reading."""
        with self._lock:
            self._collectors.append(fn)

    def collect(self) -> None:
        with self._lock:
            collectors = list(self._collectors)
        for fn in collectors:
            fn(self)

    # -- cross-process counter deltas --------------------------------------

    def drain_deltas(self) -> list[tuple]:
        """Counter increments since the last drain, as picklable rows
        ``(name, label_pairs, delta)`` — what worker processes ship back
        through the reply pipes after each job."""
        rows = []
        for instrument in self._all():
            if isinstance(instrument, Counter):
                delta = instrument._delta()
                if delta:
                    rows.append((instrument.name, instrument.labels, delta))
        return rows

    def absorb(self, rows: list[tuple]) -> None:
        """Fold another registry's drained deltas into this one."""
        for name, pairs, delta in rows:
            self.counter(name, dict(pairs)).inc(delta)

    # -- scraping ----------------------------------------------------------

    def snapshot(self, refresh: bool = True) -> dict:
        if refresh:
            self.collect()
        out: dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}}
        for instrument in self._all():
            key = render_name(instrument.name, instrument.labels)
            if isinstance(instrument, Counter):
                out["counters"][key] = instrument.value
            elif isinstance(instrument, Gauge):
                out["gauges"][key] = instrument.value
            else:
                out["histograms"][key] = instrument.snapshot()
        return out

    def prometheus_text(self, refresh: bool = True) -> str:
        """The registry in Prometheus text exposition format."""
        if refresh:
            self.collect()
        lines: list[str] = []
        typed: set[str] = set()
        for instrument in self._all():
            if instrument.name not in typed:
                typed.add(instrument.name)
                lines.append(f"# TYPE {instrument.name} {instrument.kind}")
            if isinstance(instrument, (Counter, Gauge)):
                lines.append(
                    f"{render_name(instrument.name, instrument.labels)} "
                    f"{instrument.value:g}"
                )
            else:
                snap = instrument.snapshot()
                for bound, cumulative in snap["buckets"].items():
                    pairs = instrument.labels + (("le", bound),)
                    lines.append(
                        f"{render_name(instrument.name + '_bucket', pairs)} "
                        f"{cumulative}"
                    )
                lines.append(
                    f"{render_name(instrument.name + '_sum', instrument.labels)} "
                    f"{snap['sum']:g}"
                )
                lines.append(
                    f"{render_name(instrument.name + '_count', instrument.labels)} "
                    f"{snap['count']}"
                )
        return "\n".join(lines) + "\n"

    def stats(self) -> dict:
        with self._lock:
            return {"instruments": len(self._metrics),
                    "collectors": len(self._collectors)}
