"""ArachNet Obs: unified tracing + metrics over both planes, stdlib-only.

One query's 2.6 seconds are spread across a broker thread (queue wait), a
claimer thread (dispatch), a worker *process* (pipeline stages) and — in
live mode — the detector and forensic planes that asked for it.  This
package is the single place all of that lands:

* :mod:`repro.obs.trace` — ``TraceContext`` ids created at
  ``QueryBroker.submit`` ride the job across threads and the process
  boundary; every layer contributes spans, and a :class:`TraceSink`
  exports the reassembled trace as Chrome trace-event JSON that Perfetto
  loads directly.  The :data:`NULL_TRACER` fast path makes the whole
  plane a few attribute checks when tracing is off.
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges and log-bucketed histograms absorbing the scattered stats dicts
  (scheduler depth, affinity routing, shm transport, cache economics,
  bus drops, forensic latency) behind one Prometheus-text dump.
* :mod:`repro.obs.health` — the :class:`SloEngine` *consumes* the
  registry: declarative :class:`SloSpec` objectives judged over sliding
  windows with multi-window burn-rate alerting, breaches published as
  structured events on the ``health`` bus topic.
* :mod:`repro.obs.flight` — the :class:`FlightRecorder` black box: a
  bounded ring of recent spans, bus events, heartbeats and stats that
  dumps an atomic JSON postmortem on crashes, respawns and page-severity
  SLO breaches.
* :mod:`repro.obs.httpd` — :class:`ObsServer`, the opt-in background
  HTTP thread (``--obs-port``) serving ``/metrics``, ``/healthz``,
  ``/debug/flight`` and ``/debug/broker`` live during a run.

The package imports nothing from the rest of the repository, so every
layer — ``core``, ``serve``, ``live`` — can depend on it without cycles;
the health/flight/httpd modules take the bus, broker and stat sources as
duck-typed objects for the same reason.
"""

from repro.obs.flight import FlightRecorder
from repro.obs.health import (
    HEALTH_TOPIC,
    SloEngine,
    SloSpec,
    SloStatus,
    default_slo_specs,
    load_slo_specs,
)
from repro.obs.httpd import ObsServer
from repro.obs.metrics import (
    METRICS_TOPIC,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Span,
    TraceContext,
    Tracer,
    TraceSink,
    resolve_tracer,
)

__all__ = [
    "Counter",
    "FlightRecorder",
    "Gauge",
    "HEALTH_TOPIC",
    "Histogram",
    "METRICS_TOPIC",
    "MetricsRegistry",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullTracer",
    "ObsServer",
    "SloEngine",
    "SloSpec",
    "SloStatus",
    "Span",
    "TraceContext",
    "TraceSink",
    "Tracer",
    "default_slo_specs",
    "load_slo_specs",
    "resolve_tracer",
]
