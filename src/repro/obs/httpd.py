"""Live introspection endpoint: the service's own front door.

SONoMA's argument (PAPERS.md) is that a measurement service should
expose its health and state as a network interface, not a log file.
:class:`ObsServer` is a background ``http.server`` thread (opt-in via
``--obs-port``) that serves, while a replay or campaign is running:

==================  ====================================================
``/metrics``        Prometheus text exposition of the whole registry
``/healthz``        aggregate SLO verdict (JSON); **non-200 on breach**
``/debug/flight``   trigger a flight-recorder dump and return it inline
``/debug/broker``   ``broker.stats()`` — scheduler depths, affinity,
                    per-band counters — as JSON
``/debug/deadletter``  the poison-job dead-letter queue: every
                    quarantined (world, query) signature with its crash
                    history, as JSON
==================  ====================================================

``/healthz`` evaluates the SLO engine on demand, so a breach is visible
within one scrape even between the driver's per-epoch evaluations, and
a plain ``curl`` doubles as the liveness probe.  Components are all
optional and duck-typed; whatever is absent answers 404/503 rather than
failing to start.  Port 0 binds an ephemeral port (tests); the bound
port is published as ``server.port`` after :meth:`start`.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

_PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class ObsServer:
    """Background introspection HTTP server over obs components."""

    def __init__(self, port: int = 0, host: str = "127.0.0.1",
                 registry=None, health=None, flight=None, broker=None):
        self.host = host
        self.port = port
        self.registry = registry
        self.health = health
        self.flight = flight
        self.broker = broker
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self.requests_served = 0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ObsServer":
        if self._server is not None:
            return self
        handler = _build_handler(self)
        self._server = ThreadingHTTPServer((self.host, self.port), handler)
        self._server.daemon_threads = True
        self.port = self._server.server_address[1]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="obs-httpd",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        server, self._server = self._server, None
        thread, self._thread = self._thread, None
        if server is not None:
            server.shutdown()
            server.server_close()
        if thread is not None:
            thread.join(timeout=5)

    def url(self, path: str = "/") -> str:
        if not path.startswith("/"):
            path = "/" + path
        return f"http://{self.host}:{self.port}{path}"

    def __enter__(self) -> "ObsServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- endpoint bodies (return (status, content_type, payload bytes)) ----

    def _metrics(self) -> tuple[int, str, bytes]:
        if self.registry is None:
            return 404, "application/json", _json_bytes(
                {"error": "no metrics registry attached"})
        text = self.registry.prometheus_text(refresh=True)
        return 200, _PROM_CONTENT_TYPE, text.encode("utf-8")

    def _healthz(self) -> tuple[int, str, bytes]:
        if self.health is None:
            return 200, "application/json", _json_bytes(
                {"healthy": True, "engine": False, "slos": []})
        self.health.evaluate()
        verdict = self.health.verdict()
        verdict["engine"] = True
        status = 200 if verdict["healthy"] else 503
        return status, "application/json", _json_bytes(verdict)

    def _debug_flight(self) -> tuple[int, str, bytes]:
        if self.flight is None:
            return 503, "application/json", _json_bytes(
                {"error": "no flight recorder attached"})
        path = self.flight.dump("debug_http")
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
        return 200, "application/json", _json_bytes(
            {"path": path, "dump": doc})

    def _debug_broker(self) -> tuple[int, str, bytes]:
        if self.broker is None:
            return 503, "application/json", _json_bytes(
                {"error": "no broker attached"})
        return 200, "application/json", _json_bytes(self.broker.stats())

    def _debug_deadletter(self) -> tuple[int, str, bytes]:
        deadletter = getattr(self.broker, "deadletter", None)
        if deadletter is None:
            return 503, "application/json", _json_bytes(
                {"error": "no broker with a dead-letter queue attached"})
        return 200, "application/json", _json_bytes({
            "depth": deadletter.depth,
            "entries": deadletter.entries(),
        })

    def _route(self, path: str) -> tuple[int, str, bytes]:
        self.requests_served += 1
        handlers = {
            "/metrics": self._metrics,
            "/healthz": self._healthz,
            "/debug/flight": self._debug_flight,
            "/debug/broker": self._debug_broker,
            "/debug/deadletter": self._debug_deadletter,
        }
        handler = handlers.get(path.rstrip("/") or "/")
        if handler is None:
            return 404, "application/json", _json_bytes(
                {"error": f"unknown path {path!r}",
                 "endpoints": sorted(handlers)})
        try:
            return handler()
        except Exception as exc:  # introspection must never kill the run
            return 500, "application/json", _json_bytes(
                {"error": f"{type(exc).__name__}: {exc}"})


def _json_bytes(payload) -> bytes:
    return json.dumps(payload, default=str).encode("utf-8")


def _build_handler(server: ObsServer):
    class _Handler(BaseHTTPRequestHandler):
        def do_GET(self):  # noqa: N802 - http.server API
            status, content_type, body = server._route(self.path.split("?")[0])
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, *args) -> None:  # keep stderr clean
            pass

    return _Handler
