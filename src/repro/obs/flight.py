"""The crash flight recorder: a black box for the serve/live planes.

A chaos SIGKILL leaves almost nothing behind — the worker's last spans
were in its dying process, the broker's stats move on, and by the time a
human looks the interesting state is gone.  The
:class:`FlightRecorder` keeps a bounded ring of the most recent
observability traffic — tracer span records (teed in via
``Tracer.add_listener``), bus events (drained from bounded
``EventBus`` subscriptions), worker heartbeats, and free-form records
from the broker/backend — and on a trigger (worker crash, retry,
SIGKILL respawn, SLO page breach, or a manual ``/debug/flight`` poke)
atomically dumps a self-contained JSON postmortem: the ring, a full
registry snapshot, stats from every registered source, the git sha and
the serve config.  Dumps land next to the artifact cache so forensic
tooling finds them where the artifacts already live, and the dump path
is threaded into ``JobProvenance`` / ``ForensicCase`` rows.

Stdlib-only and dependency-free like the rest of :mod:`repro.obs`; the
bus and stat sources are duck-typed.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import threading
import time
from collections import deque

_SLUG_RE = re.compile(r"[^a-z0-9]+")


def _slug(text: str) -> str:
    return _SLUG_RE.sub("-", text.lower()).strip("-") or "dump"


def _detect_git_sha() -> str:
    """Best-effort short sha of the source tree this process imported."""
    try:
        here = os.path.dirname(os.path.abspath(__file__))
        out = subprocess.run(
            ["git", "-C", here, "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=5,
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return "unknown"


class FlightRecorder:
    """Bounded ring of recent observability traffic + atomic postmortems.

    Thread-safe: spans arrive from the broker's collector thread, bus
    drains from the live driver, heartbeats from worker-pool claimers,
    and dumps from whichever plane saw the failure first.
    """

    def __init__(self, dump_dir: str = ".", capacity: int = 4096,
                 registry=None, config: dict | None = None,
                 git_sha: str | None = None, max_dumps: int = 16,
                 clock=time.time):
        self.dump_dir = dump_dir
        self.registry = registry
        self.config = dict(config) if config else {}
        self.git_sha = git_sha if git_sha is not None else _detect_git_sha()
        self.max_dumps = max_dumps
        self._clock = clock
        self._ring: deque[dict] = deque(maxlen=capacity)
        self._heartbeats: dict[str, dict] = {}
        self._sources: dict[str, object] = {}
        self._subscriptions: list[tuple[str, object]] = []
        self._dump_paths: deque[str] = deque()
        self._seq = 0
        self._records_total = 0
        self._lock = threading.Lock()
        self.last_dump_path: str | None = None

    # -- feeding the ring --------------------------------------------------

    def record(self, kind: str, data: dict | None = None) -> None:
        """Append one free-form entry (epoch ticks, crash notes, ...)."""
        entry = {"ts": self._clock(), "kind": kind, "data": data or {}}
        with self._lock:
            self._ring.append(entry)
            self._records_total += 1

    def ingest_spans(self, rows: list[dict]) -> None:
        """``Tracer.add_listener`` target: tee span records into the ring."""
        ts = self._clock()
        with self._lock:
            for row in rows:
                self._ring.append({"ts": ts, "kind": "span", "data": row})
                self._records_total += 1

    def heartbeat(self, name: str, **info) -> None:
        """Record that worker ``name`` was alive just now (claimer loop
        iterations broker-side, reply metadata for process workers)."""
        with self._lock:
            beat = self._heartbeats.get(name)
            if beat is None:
                beat = {"beats": 0}
                self._heartbeats[name] = beat
            beat["last_ts"] = self._clock()
            beat["beats"] += 1
            beat.update(info)

    def attach_bus(self, bus, topics) -> None:
        """Subscribe to ``topics`` on an EventBus; the bounded subscription
        rings buffer events until :meth:`poll` drains them into the ring."""
        for topic in topics:
            sub = bus.subscribe(topic, f"flight:{topic}", maxlen=512)
            with self._lock:
                self._subscriptions.append((topic, sub))

    def poll(self) -> int:
        """Drain attached bus subscriptions into the ring; returns the
        number of events absorbed.  Called per epoch and before dumps."""
        with self._lock:
            subscriptions = list(self._subscriptions)
        absorbed = 0
        for topic, sub in subscriptions:
            try:
                events = sub.drain()
            except Exception:
                continue
            ts = self._clock()
            with self._lock:
                for event in events:
                    self._ring.append(
                        {"ts": ts, "kind": f"bus:{topic}", "data": event}
                    )
                    self._records_total += 1
                    absorbed += 1
        return absorbed

    def add_source(self, name: str, fn) -> None:
        """Register a zero-arg stats callable snapshotted into every dump
        (``broker.stats``, ``scheduler.stats``, ...)."""
        with self._lock:
            self._sources[name] = fn

    def snapshot_sources(self) -> dict:
        with self._lock:
            sources = dict(self._sources)
        out = {}
        for name, fn in sources.items():
            try:
                out[name] = fn()
            except Exception as exc:  # a dying source must not kill the dump
                out[name] = {"error": f"{type(exc).__name__}: {exc}"}
        return out

    # -- dumping -----------------------------------------------------------

    def dump(self, reason: str, extra: dict | None = None) -> str:
        """Write one self-contained postmortem JSON; returns its path.

        The write is atomic (tmp file + ``os.replace``) so a reader
        watching the directory never sees a torn document; old dumps are
        pruned beyond ``max_dumps``.
        """
        self.poll()
        with self._lock:
            self._seq += 1
            seq = self._seq
            records = list(self._ring)
            heartbeats = {k: dict(v) for k, v in self._heartbeats.items()}
        doc = {
            "reason": reason,
            "ts": self._clock(),
            "git_sha": self.git_sha,
            "pid": os.getpid(),
            "config": self.config,
            "records": records,
            "heartbeats": heartbeats,
            "sources": self.snapshot_sources(),
            "metrics": (self.registry.snapshot(refresh=True)
                        if self.registry is not None else None),
            "extra": extra or {},
        }
        os.makedirs(self.dump_dir, exist_ok=True)
        name = f"flight-{int(self._clock() * 1000)}-{seq:04d}-{_slug(reason)}.json"
        path = os.path.join(self.dump_dir, name)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(doc, handle, default=str)
        os.replace(tmp, path)
        stale = []
        with self._lock:
            self._dump_paths.append(path)
            while len(self._dump_paths) > self.max_dumps:
                stale.append(self._dump_paths.popleft())
            self.last_dump_path = path
        for old in stale:
            try:
                os.remove(old)
            except OSError:
                pass
        return path

    def dump_paths(self) -> list[str]:
        with self._lock:
            return list(self._dump_paths)

    def stats(self) -> dict:
        with self._lock:
            return {
                "ring_size": len(self._ring),
                "ring_capacity": self._ring.maxlen,
                "records_total": self._records_total,
                "heartbeats": len(self._heartbeats),
                "sources": sorted(self._sources),
                "bus_topics": [t for t, _ in self._subscriptions],
                "dumps": len(self._dump_paths),
                "last_dump_path": self.last_dump_path,
                "dump_dir": self.dump_dir,
            }
