"""Cross-process tracing: spans from broker submit to worker stage.

A trace is born at ``QueryBroker.submit`` as a :class:`TraceContext` —
``(trace_id, span_id, parent_id)`` — and threaded through everything the
job touches.  The context is a small frozen dataclass, so it pickles
across the process boundary inside the job row / :class:`JobPayload`;
spans recorded worker-side come back as plain dicts through the existing
per-worker reply pipes and are re-absorbed broker-side with
:meth:`Tracer.ingest`.  Timestamps are wall-clock (``time.time``) so
spans from different processes land on one comparable axis.

Design points:

* **Spans are records, not objects, once finished** — a completed span is
  one dict in a bounded list; export walks the list, nothing holds object
  graphs alive.
* **The disabled path is free-ish** — :data:`NULL_TRACER` answers every
  call with the shared :data:`NULL_SPAN`; no ids, no clock reads, no
  allocation beyond the call itself.  Code guards f-string/arg building
  with ``tracer.enabled`` where even that matters.
* **Export is Chrome trace-event JSON** (``ph: "X"`` complete events,
  microsecond units) via :class:`TraceSink` — load the file at
  https://ui.perfetto.dev and the broker and each worker process appear
  as separate tracks with nested spans.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
import uuid
from dataclasses import dataclass

_SPAN_SEQ = itertools.count(1)


def _new_trace_id() -> str:
    return uuid.uuid4().hex[:16]


def _new_span_id() -> str:
    # Unique across processes: the pid disambiguates forked workers, the
    # per-process counter disambiguates within one (children inherit the
    # counter value, but never the parent's pid).
    return f"{os.getpid():x}-{next(_SPAN_SEQ)}"


@dataclass(frozen=True)
class TraceContext:
    """The identity a span hands to its children — picklable, hashable."""

    trace_id: str
    span_id: str
    parent_id: str | None = None

    def child_of(self) -> "TraceContext":
        """A fresh context parented under this span."""
        return TraceContext(self.trace_id, _new_span_id(), self.span_id)

    def to_dict(self) -> dict:
        return {"trace_id": self.trace_id, "span_id": self.span_id,
                "parent_id": self.parent_id}

    @classmethod
    def from_dict(cls, row: dict) -> "TraceContext":
        return cls(trace_id=row["trace_id"], span_id=row["span_id"],
                   parent_id=row.get("parent_id"))


class Span:
    """One in-flight span; records itself into its tracer on :meth:`end`.

    Usable as a context manager.  ``end`` is idempotent — broker code
    settles jobs from several paths (normal, cancel, world-removed) and
    must be able to close defensively.
    """

    __slots__ = ("_tracer", "name", "cat", "context", "start_ts", "args", "_ended")

    def __init__(self, tracer: "Tracer", name: str, cat: str,
                 context: TraceContext, start_ts: float, args: dict):
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.context = context
        self.start_ts = start_ts
        self.args = args
        self._ended = False

    def annotate(self, **kwargs) -> "Span":
        self.args.update(kwargs)
        return self

    def end(self, end_ts: float | None = None) -> None:
        if self._ended:
            return
        self._ended = True
        now = end_ts if end_ts is not None else self._tracer.now()
        self._tracer._record({
            "name": self.name,
            "cat": self.cat,
            "trace_id": self.context.trace_id,
            "span_id": self.context.span_id,
            "parent_id": self.context.parent_id,
            "ts": self.start_ts,
            "dur": max(0.0, now - self.start_ts),
            "pid": os.getpid(),
            "tid": threading.get_native_id(),
            "proc": self._tracer.label,
            "args": self.args,
        })

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.args.setdefault("error", f"{exc_type.__name__}: {exc}")
        self.end()


class _NullSpan:
    """The shared no-op span: ``context`` is ``None``, every method a pass."""

    __slots__ = ()
    context = None
    name = ""
    args: dict = {}

    def annotate(self, **kwargs) -> "_NullSpan":
        return self

    def end(self, end_ts: float | None = None) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_SPAN = _NullSpan()


def _parent_context(parent) -> TraceContext | None:
    """Accept a ``Span``, a ``TraceContext``, a serialized dict, or ``None``."""
    if parent is None:
        return None
    if isinstance(parent, TraceContext):
        return parent
    if isinstance(parent, dict):
        return TraceContext.from_dict(parent)
    return parent.context  # Span or _NullSpan (whose context is None)


class Tracer:
    """Thread-safe span collector for one process.

    ``label`` names this process's track in the export ("broker",
    "worker", …).  The record list is bounded: beyond ``max_spans`` new
    records are dropped and counted, never grown without limit — a
    long-running broker with tracing left on degrades, it does not OOM.
    """

    enabled = True

    def __init__(self, label: str | None = None, max_spans: int = 200_000,
                 clock=time.time):
        self.label = label or f"pid-{os.getpid()}"
        self.max_spans = max_spans
        self._clock = clock
        self._records: list[dict] = []
        self._dropped = 0
        self._lock = threading.Lock()
        self._listeners: list = []

    def now(self) -> float:
        return self._clock()

    # -- span creation -----------------------------------------------------

    def start_span(self, name: str, parent=None, cat: str = "app",
                   trace_id: str | None = None, **args) -> Span:
        """Open a span; ``parent`` may be a Span, TraceContext, dict or None.

        With no parent a new trace begins (``trace_id`` overrides the
        generated one — detectors use this to mint one trace per alert).
        """
        ctx = _parent_context(parent)
        if ctx is not None:
            context = ctx.child_of()
        else:
            context = TraceContext(trace_id or _new_trace_id(), _new_span_id())
        return Span(self, name, cat, context, self.now(), args)

    #: ``with tracer.span(...) as s:`` reads better at call sites.
    span = start_span

    def add_span(self, name: str, parent=None, cat: str = "app",
                 duration_s: float = 0.0, end_ts: float | None = None,
                 trace_id: str | None = None, **args) -> TraceContext:
        """Record an already-finished span (start back-dated by
        ``duration_s`` from ``end_ts``/now); returns its context so later
        spans can parent under it."""
        end = end_ts if end_ts is not None else self.now()
        span = self.start_span(name, parent=parent, cat=cat,
                               trace_id=trace_id, **args)
        span.start_ts = end - max(0.0, duration_s)
        span.end(end_ts=end)
        return span.context

    # -- record plumbing ---------------------------------------------------

    def add_listener(self, fn) -> None:
        """``fn(rows)`` is called with every batch of records this tracer
        keeps — locally recorded spans and cross-process ``ingest`` batches
        alike.  The flight recorder rides this to tee spans into its ring.
        Listeners run outside the tracer lock and must not raise."""
        with self._lock:
            self._listeners.append(fn)

    def remove_listener(self, fn) -> None:
        with self._lock:
            try:
                self._listeners.remove(fn)
            except ValueError:
                pass

    def _notify(self, rows: list[dict]) -> None:
        if not rows:
            return
        with self._lock:
            listeners = list(self._listeners)
        for fn in listeners:
            try:
                fn(rows)
            except Exception:
                pass

    def _record(self, row: dict) -> None:
        with self._lock:
            if len(self._records) >= self.max_spans:
                self._dropped += 1
                return
            self._records.append(row)
            notify = bool(self._listeners)
        if notify:
            self._notify([row])

    def ingest(self, rows: list[dict]) -> int:
        """Absorb span records produced by another process (reply-pipe
        payloads from workers); returns how many were kept."""
        kept_rows = []
        with self._lock:
            for row in rows:
                if len(self._records) >= self.max_spans:
                    self._dropped += 1
                    continue
                self._records.append(row)
                kept_rows.append(row)
        self._notify(kept_rows)
        return len(kept_rows)

    def drain(self) -> list[dict]:
        """All records so far, clearing the buffer (workers ship per job)."""
        with self._lock:
            records, self._records = self._records, []
            return records

    def records(self, trace_id: str | None = None) -> list[dict]:
        with self._lock:
            rows = list(self._records)
        if trace_id is not None:
            rows = [r for r in rows if r["trace_id"] == trace_id]
        return rows

    def trace_ids(self) -> list[str]:
        with self._lock:
            return sorted({r["trace_id"] for r in self._records})

    def stats(self) -> dict:
        with self._lock:
            return {
                "enabled": True,
                "label": self.label,
                "spans": len(self._records),
                "dropped": self._dropped,
                "max_spans": self.max_spans,
            }


class NullTracer:
    """The disabled fast path: every call answers without allocating.

    ``enabled`` is ``False`` so hot paths can skip even argument
    construction; everything else mirrors :class:`Tracer` so call sites
    never branch on tracer type.
    """

    enabled = False
    label = "null"

    def now(self) -> float:  # pragma: no cover - nothing times against it
        return 0.0

    def add_listener(self, fn) -> None:
        pass

    def remove_listener(self, fn) -> None:
        pass

    def start_span(self, name, parent=None, cat="app", trace_id=None, **args):
        return NULL_SPAN

    span = start_span

    def add_span(self, name, parent=None, cat="app", duration_s=0.0,
                 end_ts=None, trace_id=None, **args):
        return None

    def ingest(self, rows) -> int:
        return 0

    def drain(self) -> list:
        return []

    def records(self, trace_id=None) -> list:
        return []

    def trace_ids(self) -> list:
        return []

    def stats(self) -> dict:
        return {"enabled": False, "spans": 0, "dropped": 0}


NULL_TRACER = NullTracer()


def resolve_tracer(tracer) -> Tracer | NullTracer:
    """``tracer`` or the null singleton — the one-liner every constructor
    that takes an optional tracer uses."""
    return tracer if tracer is not None else NULL_TRACER


class TraceSink:
    """Formats span records as Chrome trace-event JSON and writes them.

    The output is the "JSON Array Format" document Perfetto and
    ``chrome://tracing`` load directly: one ``ph: "X"`` (complete) event
    per span with microsecond ``ts``/``dur``, plus ``ph: "M"`` metadata
    events naming each process track.  Trace identity travels in
    ``args`` (``trace_id``/``span_id``/``parent_id``) so a ledger row's
    ``trace_id`` greps straight into the file.
    """

    def __init__(self, path: str | None = None):
        self.path = path

    @staticmethod
    def to_chrome(records: list[dict]) -> dict:
        events = []
        proc_labels: dict[int, str] = {}
        for row in records:
            proc_labels.setdefault(row["pid"], row.get("proc") or f"pid-{row['pid']}")
            events.append({
                "name": row["name"],
                "cat": row["cat"],
                "ph": "X",
                # Perfetto wants integers; floor of 1us keeps instantaneous
                # spans (cache-hit stages, alerts) visible instead of zero-width.
                "ts": int(row["ts"] * 1e6),
                "dur": max(1, int(row["dur"] * 1e6)),
                "pid": row["pid"],
                "tid": row["tid"],
                "args": {
                    **row["args"],
                    "trace_id": row["trace_id"],
                    "span_id": row["span_id"],
                    "parent_id": row["parent_id"],
                },
            })
        events.sort(key=lambda e: (e["ts"], e["pid"], e["tid"]))
        meta = [
            {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
             "args": {"name": label}}
            for pid, label in sorted(proc_labels.items())
        ]
        return {"traceEvents": meta + events, "displayTimeUnit": "ms"}

    def write(self, records: list[dict], path: str | None = None) -> str:
        target = path or self.path
        if not target:
            raise ValueError("TraceSink needs a path to write to")
        document = self.to_chrome(records)
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
        return target
