"""The SLO engine: the system consuming its own metrics.

PR 6 gave every layer counters and spans; this module is the first
*consumer* of them.  A :class:`SloEngine` samples the
:class:`~repro.obs.metrics.MetricsRegistry` on every :meth:`evaluate`
call (the live driver calls it once per epoch; the introspection httpd
calls it on every ``/healthz`` request) and keeps a bounded sliding
window of those samples.  Each declarative :class:`SloSpec` is then
evaluated over *two* windows — the classic multi-window burn-rate rule:
an objective is breached only when it is violated over both the short
window (the breach is happening *now*) and the long window (it is not a
one-sample blip), which is what keeps a page-severity SLO from flapping
on transient spikes.

Breach and recovery transitions publish structured events on the
``health`` EventBus topic (:data:`HEALTH_TOPIC`), so the detector and
forensic machinery can consume the system's *own* incidents the same way
they consume telemetry; page-severity breaches additionally trigger a
:class:`~repro.obs.flight.FlightRecorder` postmortem dump.

Spec kinds (``metric`` names a registry sample; matching samples whose
labels are a superset of ``labels`` are summed, so ``metric="bus_dropped_
total"`` with no labels aggregates every topic):

* ``gauge`` — mean of the gauge's sampled values over the window;
* ``rate`` — counter delta over the window divided by the window's span
  (events per second);
* ``ratio`` — counter delta of ``metric`` over counter delta of
  ``total_metric`` (e.g. failed jobs / finished jobs).  ``objective`` is
  the error budget; the effective threshold is ``objective * burn_rate``;
* ``percentile`` — the requested percentile estimated from a histogram's
  cumulative-bucket deltas over the window (upper-bound estimate, the
  same shape ``histogram_quantile`` gives).

Like the rest of :mod:`repro.obs`, this module imports nothing from the
rest of the repository — the bus and flight recorder are duck-typed.
"""

from __future__ import annotations

import json
import math
import re
import threading
import time
from collections import deque
from dataclasses import dataclass, field

#: EventBus topic SLO breach/recovery events are published on.
HEALTH_TOPIC = "health"

#: Severities a spec may declare.  ``page`` breaches trigger a flight dump.
SEVERITIES = ("ticket", "page")

_KINDS = ("gauge", "rate", "ratio", "percentile")

_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _parse_sample_key(key: str) -> tuple[str, dict]:
    """Split a rendered sample key (``name{k="v",...}``) back into
    ``(name, labels)``; label values are unescaped."""
    name, brace, rest = key.partition("{")
    if not brace:
        return key, {}
    labels = {
        k: v.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
        for k, v in _LABEL_RE.findall(rest)
    }
    return name, labels


def _matches(key: str, name: str, labels: dict | None) -> bool:
    sample_name, sample_labels = _parse_sample_key(key)
    if sample_name != name:
        return False
    if not labels:
        return True
    return all(sample_labels.get(k) == str(v) for k, v in labels.items())


@dataclass(frozen=True)
class SloSpec:
    """One declarative service-level objective.

    ``comparison`` states what *healthy* looks like: ``"<="`` means the
    measured value must stay at or below ``objective`` (latencies, error
    ratios), ``">="`` means at or above it (hit rates).
    """

    name: str
    metric: str
    objective: float
    kind: str = "gauge"
    comparison: str = "<="
    labels: dict | None = None
    #: Denominator for ``kind="ratio"`` (labels via ``total_labels``).
    total_metric: str | None = None
    total_labels: dict | None = None
    percentile: float = 0.95
    #: (short, long) sliding windows in seconds; a breach must hold in both.
    windows_s: tuple = (30.0, 120.0)
    #: Multiplier on the error budget for ``ratio`` specs — the burn-rate
    #: threshold: breach when the measured ratio exceeds
    #: ``objective * burn_rate`` in both windows.
    burn_rate: float = 1.0
    severity: str = "ticket"
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown SLO kind {self.kind!r}; expected {_KINDS}")
        if self.comparison not in ("<=", ">="):
            raise ValueError("comparison must be '<=' or '>='")
        if self.severity not in SEVERITIES:
            raise ValueError(f"severity must be one of {SEVERITIES}")
        if self.kind == "ratio" and not self.total_metric:
            raise ValueError("ratio specs need a total_metric denominator")
        if len(self.windows_s) != 2 or self.windows_s[0] > self.windows_s[1]:
            raise ValueError("windows_s must be (short, long) with short <= long")

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "metric": self.metric,
            "objective": self.objective,
            "kind": self.kind,
            "comparison": self.comparison,
            "labels": dict(self.labels) if self.labels else None,
            "total_metric": self.total_metric,
            "total_labels": dict(self.total_labels) if self.total_labels else None,
            "percentile": self.percentile,
            "windows_s": list(self.windows_s),
            "burn_rate": self.burn_rate,
            "severity": self.severity,
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, row: dict) -> "SloSpec":
        row = dict(row)
        if "windows_s" in row and row["windows_s"] is not None:
            row["windows_s"] = tuple(row["windows_s"])
        return cls(**{k: v for k, v in row.items() if v is not None or k in
                      ("labels", "total_metric", "total_labels")})


def load_slo_specs(path: str) -> list[SloSpec]:
    """Read specs from a JSON file: either a list of spec rows or an
    object with a ``"slos"`` list (the ``--slo-config`` flag)."""
    with open(path, encoding="utf-8") as handle:
        doc = json.load(handle)
    rows = doc["slos"] if isinstance(doc, dict) else doc
    return [SloSpec.from_dict(row) for row in rows]


def default_slo_specs() -> list[SloSpec]:
    """The out-of-the-box objectives every replay/campaign is held to.

    Chosen so a healthy run never breaches: failure/crash budgets a clean
    run never spends, a queue-wait ceiling far above normal scheduling
    delay, and informational floors operators tighten via ``--slo-config``.
    """
    return [
        SloSpec(
            name="job_failure_ratio",
            metric="broker_jobs_finished_total",
            labels={"state": "failed"},
            total_metric="broker_jobs_finished_total",
            kind="ratio",
            objective=0.1,
            severity="page",
            description="failed jobs / finished jobs; a crash-looping worker "
                        "or broken pipeline burns this budget immediately",
        ),
        SloSpec(
            name="worker_crash_rate",
            metric="backend_respawns",
            total_metric="broker_jobs_finished_total",
            kind="ratio",
            objective=0.5,
            severity="page",
            description="worker-process respawns per finished job",
        ),
        SloSpec(
            name="queue_wait_p95_band0",
            metric="scheduler_queue_wait_seconds",
            labels={"band": "0"},
            kind="percentile",
            percentile=0.95,
            objective=5.0,
            severity="ticket",
            description="p95 scheduler queue wait for priority band 0",
        ),
        SloSpec(
            name="alert_verdict_latency_p95",
            metric="forensic_verdict_latency_seconds",
            kind="percentile",
            percentile=0.95,
            objective=60.0,
            severity="ticket",
            description="p95 alert-to-verdict latency of the forensic loop",
        ),
        SloSpec(
            name="warm_cache_hit_rate",
            metric="cache_hit_rate",
            labels={"scope": "broker"},
            kind="gauge",
            comparison=">=",
            objective=0.0,
            severity="ticket",
            description="broker artifact-cache hit rate floor (0.0 = "
                        "informational; raise it via --slo-config once warm)",
        ),
    ]


@dataclass
class SloStatus:
    """One spec's verdict over the current windows."""

    spec: SloSpec
    healthy: bool = True
    #: ``False`` while the windows hold too little data to judge (fewer
    #: than two samples, an empty histogram, a zero denominator).  No-data
    #: objectives are healthy — silence is not an incident.
    has_data: bool = False
    value_short: float | None = None
    value_long: float | None = None
    breached_since: float | None = None

    def to_dict(self) -> dict:
        return {
            "name": self.spec.name,
            "healthy": self.healthy,
            "has_data": self.has_data,
            "kind": self.spec.kind,
            "severity": self.spec.severity,
            "objective": self.spec.objective,
            "comparison": self.spec.comparison,
            "value_short": self.value_short,
            "value_long": self.value_long,
            "windows_s": list(self.spec.windows_s),
            "breached_since": self.breached_since,
            "description": self.spec.description,
        }


class _Sample:
    """One registry snapshot flattened for window math."""

    __slots__ = ("ts", "series", "histograms")

    def __init__(self, ts: float, snapshot: dict):
        self.ts = ts
        # Counters and gauges share one numeric namespace: monotonic gauges
        # (backend_respawns) are legitimate rate/ratio numerators.
        self.series: dict[str, float] = {}
        self.series.update(snapshot.get("counters", {}))
        self.series.update(snapshot.get("gauges", {}))
        self.histograms: dict[str, dict] = snapshot.get("histograms", {})


class SloEngine:
    """Evaluates :class:`SloSpec` objectives over registry samples.

    Thread-safe: the live driver evaluates per epoch while the httpd
    evaluates per ``/healthz`` request.  ``bus`` (optional, duck-typed:
    needs ``publish(topic, dict)``) receives breach/recovery events;
    ``flight`` (optional) gets a postmortem dump on page-severity breaches.
    """

    def __init__(self, registry, specs: list[SloSpec] | None = None,
                 bus=None, flight=None, max_samples: int = 720,
                 clock=time.time):
        self.registry = registry
        self.specs = list(specs) if specs is not None else default_slo_specs()
        self.bus = bus
        self.flight = flight
        self._samples: deque[_Sample] = deque(maxlen=max_samples)
        self._statuses: dict[str, SloStatus] = {
            spec.name: SloStatus(spec=spec) for spec in self.specs
        }
        self._lock = threading.Lock()
        self._clock = clock
        self._evaluations = 0
        self._breaches = 0

    # -- window math -------------------------------------------------------

    def _window(self, now: float, window_s: float) -> tuple[_Sample, _Sample] | None:
        """(first, last) samples spanning at least ``window_s`` when the
        history allows it: the newest sample at or before ``now - window_s``,
        falling back to the oldest sample held."""
        if len(self._samples) < 2:
            return None
        cutoff = now - window_s
        first = self._samples[0]
        for sample in self._samples:
            if sample.ts <= cutoff:
                first = sample
            else:
                break
        last = self._samples[-1]
        if first is last:
            first = self._samples[0]
        return (first, last)

    @staticmethod
    def _sum_series(sample: _Sample, name: str, labels: dict | None) -> float:
        return sum(v for k, v in sample.series.items()
                   if _matches(k, name, labels))

    @staticmethod
    def _sum_buckets(sample: _Sample, name: str,
                     labels: dict | None) -> tuple[dict, int]:
        buckets: dict[str, int] = {}
        count = 0
        for key, snap in sample.histograms.items():
            if not _matches(key, name, labels):
                continue
            count += snap.get("count", 0)
            for bound, cumulative in snap.get("buckets", {}).items():
                buckets[bound] = buckets.get(bound, 0) + cumulative
        return buckets, count

    def _value(self, spec: SloSpec, now: float,
               window_s: float) -> float | None:
        """The spec's measured value over one window; ``None`` = no data."""
        span = self._window(now, window_s)
        if span is None:
            return None
        first, last = span
        if spec.kind == "gauge":
            cutoff = now - window_s
            values = [
                self._sum_series(s, spec.metric, spec.labels)
                for s in self._samples if s.ts >= cutoff
            ]
            if not values:
                values = [self._sum_series(last, spec.metric, spec.labels)]
            return sum(values) / len(values)
        if spec.kind == "rate":
            dt = last.ts - first.ts
            if dt <= 0:
                return None
            delta = (self._sum_series(last, spec.metric, spec.labels)
                     - self._sum_series(first, spec.metric, spec.labels))
            return max(0.0, delta) / dt
        if spec.kind == "ratio":
            num = (self._sum_series(last, spec.metric, spec.labels)
                   - self._sum_series(first, spec.metric, spec.labels))
            den = (self._sum_series(last, spec.total_metric, spec.total_labels)
                   - self._sum_series(first, spec.total_metric, spec.total_labels))
            if den <= 0:
                return None
            return max(0.0, num) / den
        # percentile: cumulative-bucket deltas over the window.
        first_buckets, first_count = self._sum_buckets(first, spec.metric,
                                                       spec.labels)
        last_buckets, last_count = self._sum_buckets(last, spec.metric,
                                                     spec.labels)
        total = last_count - first_count
        if total <= 0:
            return None
        target = spec.percentile * total
        bounds = sorted(
            (b for b in last_buckets if b != "+Inf"), key=float
        )
        for bound in bounds:
            delta = last_buckets[bound] - first_buckets.get(bound, 0)
            if delta >= target:
                return float(bound)
        return math.inf

    def _threshold(self, spec: SloSpec) -> float:
        if spec.kind == "ratio":
            return spec.objective * spec.burn_rate
        return spec.objective

    def _violated(self, spec: SloSpec, value: float) -> bool:
        threshold = self._threshold(spec)
        if spec.comparison == "<=":
            return value > threshold
        return value < threshold

    # -- evaluation --------------------------------------------------------

    def evaluate(self, now: float | None = None) -> list[SloStatus]:
        """Sample the registry, slide the windows, judge every spec.

        Breach/recovery *transitions* publish on :data:`HEALTH_TOPIC` and
        count into ``slo_breaches_total``; a page-severity breach also
        dumps the flight recorder.  Returns the current statuses.
        """
        snapshot = self.registry.snapshot(refresh=True)
        events: list[dict] = []
        page_breaches: list[str] = []
        with self._lock:
            ts = now if now is not None else self._clock()
            self._samples.append(_Sample(ts, snapshot))
            self._evaluations += 1
            for spec in self.specs:
                status = self._statuses[spec.name]
                short = self._value(spec, ts, spec.windows_s[0])
                long = self._value(spec, ts, spec.windows_s[1])
                status.value_short = short
                status.value_long = long
                status.has_data = short is not None and long is not None
                breached = (
                    status.has_data
                    and self._violated(spec, short)
                    and self._violated(spec, long)
                )
                if breached and status.healthy:
                    status.healthy = False
                    status.breached_since = ts
                    self._breaches += 1
                    events.append(self._event("slo_breach", status, ts))
                    if spec.severity == "page":
                        page_breaches.append(spec.name)
                elif not breached and not status.healthy:
                    status.healthy = True
                    status.breached_since = None
                    events.append(self._event("slo_recovered", status, ts))
            statuses = list(self._statuses.values())
        for event in events:
            self.registry.counter(
                "slo_transitions_total",
                {"slo": event["slo"], "kind": event["kind"]},
            ).inc()
            if event["kind"] == "slo_breach":
                self.registry.counter(
                    "slo_breaches_total",
                    {"slo": event["slo"], "severity": event["severity"]},
                ).inc()
            if self.bus is not None:
                self.bus.publish(HEALTH_TOPIC, event)
        self.registry.gauge("slo_healthy").set(
            0.0 if any(not s.healthy for s in statuses) else 1.0
        )
        if page_breaches and self.flight is not None:
            self.flight.record("slo_page", {"slos": page_breaches})
            self.flight.dump("slo_page", extra={"slos": page_breaches})
        return statuses

    def _event(self, kind: str, status: SloStatus, ts: float) -> dict:
        spec = status.spec
        return {
            "kind": kind,
            "slo": spec.name,
            "severity": spec.severity,
            "metric": spec.metric,
            "objective": spec.objective,
            "threshold": self._threshold(spec),
            "value_short": status.value_short,
            "value_long": status.value_long,
            "windows_s": list(spec.windows_s),
            "ts": ts,
            "description": spec.description,
        }

    # -- verdicts ----------------------------------------------------------

    def healthy(self) -> bool:
        with self._lock:
            return all(s.healthy for s in self._statuses.values())

    def verdict(self) -> dict:
        """The aggregate answer ``/healthz`` serves: overall health plus
        per-SLO detail, from the most recent evaluation."""
        with self._lock:
            statuses = [s.to_dict() for s in self._statuses.values()]
            evaluations = self._evaluations
            breaches = self._breaches
        return {
            "healthy": all(s["healthy"] for s in statuses),
            "evaluations": evaluations,
            "breaches_total": breaches,
            "slos": statuses,
        }

    def stats(self) -> dict:
        with self._lock:
            return {
                "specs": len(self.specs),
                "samples": len(self._samples),
                "evaluations": self._evaluations,
                "breaches_total": self._breaches,
                "healthy": all(s.healthy for s in self._statuses.values()),
            }
