"""Registry-facing BGP functions.

Like real BGP dumps, ``fetch_updates`` returns plain dict rows — downstream
workflows must parse and adapt them, which is exactly the format-translation
work SolutionWeaver automates.  ``incidents`` is the ambient ground truth of
the measurement context; agents never see it directly, only its observable
consequences in the update stream.
"""

from __future__ import annotations

from repro.bgp.anomaly import detect_update_anomalies, update_rate_series
from repro.bgp.collector import CollectorConfig, shared_collector
from repro.bgp.messages import BGPUpdate, UpdateKind, path_edit_distance
from repro.synth.world import SyntheticWorld


def fetch_updates(
    world: SyntheticWorld,
    window_start: float,
    window_end: float,
    incidents: list | None = None,
    collector_seed: int = 11,
) -> list[dict]:
    """BGP updates recorded over a window, as JSON-able rows sorted by time.

    The collector is shared per (world, seed): repeated queries reuse its
    memoized incremental route tables, so only the first question about an
    incident pays for re-convergence.
    """
    sim = shared_collector(world, CollectorConfig(seed=collector_seed))
    updates = sim.generate_updates(window_start, window_end, incidents or [])
    return [u.to_dict() for u in updates]


def detect_routing_anomalies(
    update_rows: list[dict],
    window_start: float,
    window_end: float,
    bin_seconds: float = 3600.0,
    z_threshold: float = 3.0,
) -> list[dict]:
    """Anomalous update-volume windows from raw update rows."""
    updates = [BGPUpdate.from_dict(row) for row in update_rows]
    anomalies = detect_update_anomalies(
        updates, window_start, window_end, bin_seconds, z_threshold
    )
    return [a.to_dict() for a in anomalies]


def update_volume_series(
    update_rows: list[dict],
    window_start: float,
    window_end: float,
    bin_seconds: float = 3600.0,
) -> list[dict]:
    """Binned update volume from raw update rows."""
    updates = [BGPUpdate.from_dict(row) for row in update_rows]
    return update_rate_series(updates, window_start, window_end, bin_seconds)


def summarize_path_changes(update_rows: list[dict]) -> dict:
    """Summary of path dynamics in an update stream.

    Tracks, per (peer, prefix), the first and last announced path, counting
    prefixes whose path changed, path-length inflation, and withdrawals that
    were never re-announced (lost reachability).
    """
    first_path: dict[tuple[int, str], tuple[int, ...]] = {}
    last_path: dict[tuple[int, str], tuple[int, ...]] = {}
    withdrawn: set[tuple[int, str]] = set()
    for row in sorted(update_rows, key=lambda r: r["ts"]):
        update = BGPUpdate.from_dict(row)
        key = (update.peer_asn, update.prefix)
        if update.kind is UpdateKind.WITHDRAW:
            withdrawn.add(key)
            last_path.pop(key, None)
            continue
        withdrawn.discard(key)
        first_path.setdefault(key, update.as_path)
        last_path[key] = update.as_path

    changed: list[dict] = []
    inflations: list[int] = []
    for key, first in first_path.items():
        last = last_path.get(key)
        if last is None or last == first:
            continue
        delta = len(last) - len(first)
        inflations.append(delta)
        changed.append(
            {
                "peer_asn": key[0],
                "prefix": key[1],
                "first_path": list(first),
                "last_path": list(last),
                "length_delta": delta,
                "edit_distance": path_edit_distance(first, last),
            }
        )
    return {
        "changed_count": len(changed),
        "lost_count": len(withdrawn),
        "mean_length_delta": (sum(inflations) / len(inflations)) if inflations else 0.0,
        "changes": changed[:200],
        "lost": [{"peer_asn": k[0], "prefix": k[1]} for k in sorted(withdrawn)][:200],
    }


def correlate_updates_with_window(
    update_rows: list[dict],
    anomaly_start: float,
    anomaly_end: float,
    margin_seconds: float = 7200.0,
) -> dict:
    """How strongly routing activity concentrates around an anomaly window.

    Compares the update rate inside ``[start - margin, end + margin]`` with
    the rate outside it.  A ratio well above 1 is independent routing-layer
    confirmation that something physical happened at that time.
    """
    if not update_rows or anomaly_start is None or anomaly_end is None:
        # No updates, or no anomaly window to correlate against (a healthy
        # world gives the forensic workflow nothing to anchor on).
        return {"inside_rate": 0.0, "outside_rate": 0.0, "rate_ratio": 0.0, "correlated": False}
    lo = anomaly_start - margin_seconds
    hi = anomaly_end + margin_seconds
    ts_values = [float(r["ts"]) for r in update_rows]
    t_min, t_max = min(ts_values), max(ts_values)
    inside = sum(1 for t in ts_values if lo <= t <= hi)
    outside = len(ts_values) - inside
    inside_span = max(1.0, min(hi, t_max) - max(lo, t_min))
    outside_span = max(1.0, (t_max - t_min) - inside_span)
    inside_rate = inside / inside_span
    outside_rate = outside / outside_span
    ratio = inside_rate / outside_rate if outside_rate > 0 else float("inf")
    return {
        "inside_rate": round(inside_rate, 6),
        "outside_rate": round(outside_rate, 6),
        "rate_ratio": round(ratio, 3) if ratio != float("inf") else -1.0,
        "correlated": ratio > 2.0,
    }
