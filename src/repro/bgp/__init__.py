"""BGP substrate: update streams, RIBs, collectors, anomaly detection.

Replaces RouteViews/RIS feeds with a collector simulation driven by the
world's policy routing.  Steady state produces low-rate background churn;
injected incidents (cable failures) trigger the withdrawal bursts, path
exploration and re-convergence that the forensic case study correlates with
latency anomalies.
"""

from repro.bgp.messages import BGPUpdate, RouteRecord, UpdateKind
from repro.bgp.rib import RoutingTable
from repro.bgp.collector import BGPCollectorSim, CollectorConfig, shared_collector
from repro.bgp.anomaly import RoutingAnomaly, detect_update_anomalies, update_rate_series
from repro.bgp.api import (
    correlate_updates_with_window,
    detect_routing_anomalies,
    fetch_updates,
    summarize_path_changes,
)

__all__ = [
    "BGPUpdate",
    "RouteRecord",
    "UpdateKind",
    "RoutingTable",
    "BGPCollectorSim",
    "CollectorConfig",
    "RoutingAnomaly",
    "detect_update_anomalies",
    "update_rate_series",
    "correlate_updates_with_window",
    "detect_routing_anomalies",
    "fetch_updates",
    "shared_collector",
    "summarize_path_changes",
]
