"""Routing anomaly detection over update streams.

Bins updates into fixed windows and flags bins whose volume is a robust
outlier (median/MAD z-score).  Withdrawal-heavy bins get an extra severity
bump — mass withdrawals are the classic infrastructure-failure signature.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bgp.messages import BGPUpdate, UpdateKind


@dataclass(frozen=True)
class RoutingAnomaly:
    """One anomalous time bin in the update stream."""

    window_start: float
    window_end: float
    update_count: int
    withdrawal_count: int
    zscore: float
    prefixes: tuple[str, ...]

    @property
    def withdrawal_fraction(self) -> float:
        return self.withdrawal_count / self.update_count if self.update_count else 0.0

    def to_dict(self) -> dict:
        return {
            "window_start": self.window_start,
            "window_end": self.window_end,
            "update_count": self.update_count,
            "withdrawal_count": self.withdrawal_count,
            "zscore": round(self.zscore, 3),
            "withdrawal_fraction": round(self.withdrawal_fraction, 4),
            "prefixes": list(self.prefixes[:50]),
        }


def update_rate_series(
    updates: list[BGPUpdate], window_start: float, window_end: float, bin_seconds: float = 3600.0
) -> list[dict]:
    """Binned update volume: ``[{bin_start, count, withdrawals}]``."""
    if bin_seconds <= 0:
        raise ValueError("bin_seconds must be positive")
    n_bins = max(1, int((window_end - window_start) / bin_seconds))
    bins = [
        {"bin_start": window_start + i * bin_seconds, "count": 0, "withdrawals": 0}
        for i in range(n_bins)
    ]
    for update in updates:
        idx = int((update.ts - window_start) / bin_seconds)
        if update.ts == window_end:
            idx = n_bins - 1  # the window is closed on the right
        if 0 <= idx < n_bins:
            bins[idx]["count"] += 1
            if update.kind is UpdateKind.WITHDRAW:
                bins[idx]["withdrawals"] += 1
    return bins


def _robust_zscores(counts: list[int]) -> list[float]:
    ordered = sorted(counts)
    n = len(ordered)
    median = ordered[n // 2] if n % 2 == 1 else (ordered[n // 2 - 1] + ordered[n // 2]) / 2.0
    deviations = sorted(abs(c - median) for c in counts)
    mad = deviations[n // 2] if n % 2 == 1 else (deviations[n // 2 - 1] + deviations[n // 2]) / 2.0
    scale = 1.4826 * mad if mad > 0 else 1.0
    return [(c - median) / scale for c in counts]


def detect_update_anomalies(
    updates: list[BGPUpdate],
    window_start: float,
    window_end: float,
    bin_seconds: float = 3600.0,
    z_threshold: float = 3.0,
) -> list[RoutingAnomaly]:
    """Anomalous bins in the update stream, most severe first."""
    bins = update_rate_series(updates, window_start, window_end, bin_seconds)
    if not bins:
        return []
    zscores = _robust_zscores([b["count"] for b in bins])
    anomalies: list[RoutingAnomaly] = []
    for b, z in zip(bins, zscores):
        if z < z_threshold:
            continue
        lo, hi = b["bin_start"], b["bin_start"] + bin_seconds
        touched = tuple(
            sorted({u.prefix for u in updates if lo <= u.ts < hi})
        )
        anomalies.append(
            RoutingAnomaly(
                window_start=lo,
                window_end=hi,
                update_count=b["count"],
                withdrawal_count=b["withdrawals"],
                zscore=z,
                prefixes=touched,
            )
        )
    anomalies.sort(key=lambda a: a.zscore, reverse=True)
    return anomalies
