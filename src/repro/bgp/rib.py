"""Routing-table reconstruction from update streams."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bgp.messages import BGPUpdate, RouteRecord, UpdateKind


@dataclass
class RoutingTable:
    """Per-(peer, prefix) routing state rebuilt by replaying updates."""

    collector: str
    routes: dict[tuple[int, str], RouteRecord] = field(default_factory=dict)
    last_ts: float = 0.0

    def apply(self, update: BGPUpdate) -> None:
        """Apply one update (must belong to this collector)."""
        if update.collector != self.collector:
            raise ValueError(
                f"update for collector {update.collector!r} applied to {self.collector!r}"
            )
        if update.ts < self.last_ts:
            raise ValueError("updates must be applied in timestamp order")
        self.last_ts = update.ts
        key = (update.peer_asn, update.prefix)
        if update.kind is UpdateKind.WITHDRAW:
            self.routes.pop(key, None)
        else:
            self.routes[key] = RouteRecord(
                collector=self.collector,
                peer_asn=update.peer_asn,
                prefix=update.prefix,
                as_path=update.as_path,
                ts=update.ts,
            )

    def apply_all(self, updates: list[BGPUpdate]) -> None:
        for update in sorted(updates, key=lambda u: u.ts):
            self.apply(update)

    def best_route(self, prefix: str) -> RouteRecord | None:
        """Best route across peers: shortest AS path, then lowest peer ASN."""
        candidates = [
            record for (peer, pfx), record in self.routes.items() if pfx == prefix
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda r: (len(r.as_path), r.peer_asn))

    def prefixes(self) -> set[str]:
        return {prefix for _, prefix in self.routes.keys()}

    def routes_for_prefix(self, prefix: str) -> list[RouteRecord]:
        return [r for (peer, pfx), r in sorted(self.routes.items()) if pfx == prefix]

    def diff(self, other: "RoutingTable") -> dict:
        """Route changes from ``self`` (before) to ``other`` (after).

        Returns prefixes lost entirely, prefixes whose best path changed, and
        the mean path-length delta over changed prefixes.
        """
        lost: list[str] = []
        changed: list[dict] = []
        deltas: list[int] = []
        for prefix in sorted(self.prefixes()):
            before = self.best_route(prefix)
            after = other.best_route(prefix)
            if before is None:
                continue
            if after is None:
                lost.append(prefix)
                continue
            if before.as_path != after.as_path:
                delta = len(after.as_path) - len(before.as_path)
                deltas.append(delta)
                changed.append(
                    {
                        "prefix": prefix,
                        "before": list(before.as_path),
                        "after": list(after.as_path),
                        "length_delta": delta,
                    }
                )
        return {
            "lost_prefixes": lost,
            "changed_paths": changed,
            "mean_length_delta": (sum(deltas) / len(deltas)) if deltas else 0.0,
        }
