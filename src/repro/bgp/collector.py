"""BGP collector simulation: steady-state churn plus incident dynamics.

The simulator stands in for RouteViews/RIS.  Vantage points (peers) are
transit ASes; for every (peer, prefix) pair the baseline route is the
valley-free path from peer to origin.  Background churn emits low-rate
flaps.  When an incident kills a cable, every route whose path crossed a
severed adjacency re-converges: withdrawn if no policy path survives,
re-announced with the new (usually longer) path otherwise, spread over a
convergence window with optional path exploration — the update-burst
signature the forensic workflow hunts for.

Convergence itself runs on the raw-speed core from
:mod:`repro.topology.routing`: ASNs are interned once per world, SPF runs
over int-indexed CSR rows, and route slices are emitted through per-peer
precomputed ``(peer, cidr)`` key arrays so the flat table costs C-speed
dict construction, not per-row tuple hashing in Python.  On top of that
sit two incremental layers:

* **Per-origin repair** — a new failure set diffs against its nearest
  cached ancestor; only peers whose routes crossed a newly severed
  adjacency re-run SPF, and within those peers only the (peer, prefix)
  rows whose recorded path actually crossed are reassigned (the rest of
  the slice is carried over by a C-speed dict copy).  The row→adjacency
  inverted index (:meth:`BGPCollectorSim._entry_pair_keys`) is the
  localized-failure catalog: built lazily once per ancestor entry, it
  turns the dominant single-cable disaster into a handful of row fixes.
* **Route-delta streams** — :meth:`BGPCollectorSim.deltas_since` emits
  the (changed, withdrawn) diff between any two failure states, and
  :class:`RouteDeltaStream` is the cross-epoch cursor the live plane's
  feeds consume instead of comparing full tables.  A stream pins its
  baseline entry in the route cache (mirroring EpochShardPool's pin
  semantics) so eviction can never tear the diff basis out from under a
  long replay.
"""

from __future__ import annotations

import random
import threading
from collections import Counter, OrderedDict
from dataclasses import dataclass, field

from repro.bgp.messages import BGPUpdate, UpdateKind
from repro.topology.relations import AdjacencyIndex, ASGraph, failed_as_pairs
from repro.topology.routing import (
    LegacyValleyFreeRouter,
    ValleyFreeRouter,
    path_adjacencies,
    path_crosses,
    shared_index,
)
from repro.synth.scenarios import LatencyIncident
from repro.synth.world import SyntheticWorld


@dataclass(frozen=True)
class CollectorConfig:
    """Collector behaviour knobs."""

    name: str = "rrc-sim"
    peer_count: int = 8
    churn_per_hour: float = 12.0
    convergence_window_s: float = 300.0
    exploration_prob: float = 0.3
    seed: int = 11
    #: LRU bound on memoized route tables; long live timelines revisit a few
    #: failure states, so a small bound keeps memory flat without thrashing.
    route_cache_entries: int = 64


@dataclass(frozen=True)
class CableIncident:
    """A cable failure visible to the routing system."""

    cable_name: str
    onset: float

    @classmethod
    def coerce(cls, item: "CableIncident | LatencyIncident | dict") -> "CableIncident":
        if isinstance(item, CableIncident):
            return item
        if isinstance(item, LatencyIncident):
            return cls(cable_name=item.cable_name, onset=item.onset)
        return cls(cable_name=item["cable_name"], onset=float(item["onset"]))


@dataclass(frozen=True)
class RouteDelta:
    """The route-table diff between two failure states.

    ``changed`` maps (peer, prefix) → new AS path (announcements, including
    keys absent from the baseline — repairs re-announce recovered routes);
    ``withdrawn`` holds keys present in the baseline with no surviving
    policy path.  Applied onto the baseline table, the delta reconstructs
    the target table byte-identically (property-tested).
    """

    baseline_key: frozenset[str]
    target_key: frozenset[str]
    changed: dict[tuple[int, str], tuple[int, ...]]
    withdrawn: frozenset[tuple[int, str]]

    @property
    def empty(self) -> bool:
        return not self.changed and not self.withdrawn

    @property
    def route_count(self) -> int:
        return len(self.changed) + len(self.withdrawn)

    @property
    def nbytes(self) -> int:
        """Deterministic wire-size estimate: what shipping this diff costs
        versus a full table (8 bytes per path hop, prefix string, small
        per-row framing).  An estimate, not an encoding."""
        total = 0
        for (_, prefix), path in self.changed.items():
            total += 24 + len(prefix) + 8 * len(path)
        for _, prefix in self.withdrawn:
            total += 16 + len(prefix)
        return total

    def apply(
        self, table: dict[tuple[int, str], tuple[int, ...]]
    ) -> dict[tuple[int, str], tuple[int, ...]]:
        """Replay the delta onto ``table`` (the baseline), returning the
        target-state table."""
        out = dict(table)
        out.update(self.changed)
        for key in self.withdrawn:
            out.pop(key, None)
        return out


class RouteDeltaStream:
    """Cross-epoch route-delta cursor over one collector.

    Holds a position (a failure-set key) and emits the diff to each next
    state via :meth:`advance`; the live BGP feed and standing-query plane
    ride this instead of comparing full tables.  The stream's current
    position is pinned in the collector's route cache for its lifetime —
    mirroring :class:`~repro.live.standing.EpochShardPool` pin semantics —
    so cache eviction can never drop the entry a future diff is based on.
    Close (or use as a context manager) to release the pin.
    """

    def __init__(self, sim: "BGPCollectorSim",
                 baseline_key: frozenset[str] = frozenset()):
        self._sim = sim
        self._position = frozenset(baseline_key)
        self._closed = False
        sim.pin(self._position)
        self.deltas_emitted = 0
        self.routes_emitted = 0
        self.bytes_emitted = 0
        self.last_delta: RouteDelta | None = None

    @property
    def position(self) -> frozenset[str]:
        return self._position

    @property
    def closed(self) -> bool:
        return self._closed

    def advance(self, failed_link_ids: frozenset[str]) -> RouteDelta:
        """Diff from the current position to ``failed_link_ids`` and rebase
        the stream (and its pin) there."""
        if self._closed:
            raise RuntimeError("delta stream is closed")
        target = frozenset(failed_link_ids)
        delta = self._sim.deltas_since(self._position, target)
        self._sim.pin(target)
        self._sim.unpin(self._position)
        self._position = target
        self.deltas_emitted += 1
        self.routes_emitted += delta.route_count
        self.bytes_emitted += delta.nbytes
        self.last_delta = delta
        return delta

    def close(self) -> None:
        if not self._closed:
            self._sim.unpin(self._position)
            self._closed = True

    def stats(self) -> dict:
        return {
            "deltas_emitted": self.deltas_emitted,
            "routes_emitted": self.routes_emitted,
            "bytes_emitted": self.bytes_emitted,
            "closed": self._closed,
        }

    def __enter__(self) -> "RouteDeltaStream":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


#: ``_stats`` keys that are monotonic totals — synced to MetricsRegistry
#: counters by :meth:`BGPCollectorSim.sync_metrics`.
_COUNTER_STATS = (
    "hits", "misses", "evictions",
    "full_recomputes", "incremental_recomputes", "shared_full_tables",
    "peers_recomputed", "peers_shared",
    "pairs_repaired", "pairs_shared",
    "delta_emits", "delta_routes", "delta_bytes",
)


@dataclass
class BGPCollectorSim:
    """Generates update streams for a time window."""

    world: SyntheticWorld
    config: CollectorConfig = field(default_factory=CollectorConfig)

    def __post_init__(self) -> None:
        self._graph = ASGraph.shared(self.world)
        # The interned CSR routing core, shared with every router over this
        # world's graph (PathResolver, forensics) — built once per world.
        self._index = shared_index(self._graph)
        self._peers = self._select_peers()
        # (frozen failed-link set) -> cache entry; the live feed diffs epoch
        # route tables and a replay revisits the same few failure states.
        # LRU-bounded (baseline and pinned entries exempt) so long timelines
        # keep memory flat.  Each entry carries the flat route table plus the
        # per-peer slices, per-peer traversed-adjacency sets and the lazily
        # built row→adjacency inverted index that later failure states diff
        # and repair against (see _compute_routes).
        self._route_cache: OrderedDict[frozenset[str], dict] = OrderedDict()
        # Delta streams pin their baseline entry; pinned entries are exempt
        # from LRU eviction (EpochShardPool semantics).
        self._pins: Counter[frozenset[str]] = Counter()
        # Serve workers share one collector per world (see shared_collector);
        # RLock because computing one entry consults others (the ancestor).
        self._cache_lock = threading.RLock()
        # Prebuilt link→pair indexes: severed adjacencies per failure set in
        # O(|failed links|), sharing the one redundancy-rule definition with
        # failed_as_pairs (which routes_under_full still calls).
        self._adjacency_index = AdjacencyIndex.shared(self.world)
        # Per-peer static slice templates: the (peer, cidr) key tuples and
        # origin-ASN arrays are world-constant, so every convergence emits
        # its slices through C-speed dict(zip(keys, map(...))) instead of
        # hashing freshly allocated tuples per row.
        prefixes = self.world.all_prefixes()
        self._origin_of = {p.cidr: p.asn for p in prefixes}
        self._peer_static: dict[int, tuple[list, list, tuple]] = {}
        for peer in self._peers:
            rows = tuple(((peer, p.cidr), p.asn) for p in prefixes)
            self._peer_static[peer] = (
                [key for key, _ in rows], [asn for _, asn in rows], rows,
            )
        self._stats = {
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "full_recomputes": 0,
            "incremental_recomputes": 0,
            "shared_full_tables": 0,
            "peers_recomputed": 0,
            "peers_shared": 0,
            "pairs_repaired": 0,
            "pairs_shared": 0,
            "repair_frontier_peak": 0,
            "delta_emits": 0,
            "delta_routes": 0,
            "delta_bytes": 0,
        }
        # Per-registry high-water marks for sync_metrics (keyed by registry
        # identity + label set, so double-attach never double-counts).
        self._metrics_marks: dict[tuple[int, tuple], dict] = {}

    def _select_peers(self) -> list[int]:
        """Deterministic vantage points: tier-1s first, then tier-2s."""
        tier1 = sorted(a.asn for a in self.world.ases.values() if a.tier == 1)
        tier2 = sorted(a.asn for a in self.world.ases.values() if a.tier == 2)
        return (tier1 + tier2)[: self.config.peer_count]

    @property
    def peers(self) -> list[int]:
        return list(self._peers)

    def baseline_routes(self) -> dict[tuple[int, str], tuple[int, ...]]:
        """(peer, prefix) → AS path at steady state."""
        return dict(self.routes_under(frozenset()))

    def routes_under(
        self, failed_link_ids: frozenset[str] = frozenset()
    ) -> dict[tuple[int, str], tuple[int, ...]]:
        """(peer, prefix) → AS path with the given links out of service.

        Memoized per failure set (LRU-bounded; the baseline and any
        delta-stream-pinned entries are exempt) and computed *incrementally*:
        only peers whose cached routes crossed a newly severed adjacency
        re-run SPF, and within them only the crossing (peer, prefix) rows
        are repaired.  Callers must not mutate the returned dict.
        """
        return self._entry_for(frozenset(failed_link_ids))["routes"]

    def _entry_for(self, key: frozenset[str]) -> dict:
        with self._cache_lock:
            cached = self._route_cache.get(key)
            if cached is not None:
                self._stats["hits"] += 1
                self._route_cache.move_to_end(key)
                return cached
            self._stats["misses"] += 1
            entry = self._compute_routes(key)
            self._route_cache[key] = entry
            self._evict_route_cache()
            return entry

    def routes_under_full(
        self, failed_link_ids: frozenset[str] = frozenset()
    ) -> dict[tuple[int, str], tuple[int, ...]]:
        """The same table computed from scratch on the *legacy* engine —
        per-peer dict-walk SPF over a materialised pruned graph, no interning,
        no cache, no structural sharing.  This is the reference oracle the
        fast core, the per-origin repair and the delta streams are tested
        and benchmarked against."""
        graph = self._graph
        if failed_link_ids:
            dead = failed_as_pairs(self.world, sorted(failed_link_ids))
            graph = graph.without_pairs(dead)
        router = LegacyValleyFreeRouter(graph)
        prefixes = self.world.all_prefixes()
        routes: dict[tuple[int, str], tuple[int, ...]] = {}
        for peer in self._peers:
            routes.update(self._peer_slice(router, peer, prefixes))
        return routes

    def converge_full(
        self, failed_link_ids: frozenset[str] = frozenset()
    ) -> dict[tuple[int, str], tuple[int, ...]]:
        """Cold full convergence on the fast engine: batched multi-origin
        SPF over the interned rows, slices emitted through the static key
        templates.  No cache, no structural sharing — the same table as
        :meth:`routes_under_full` at raw-core speed (the benchmark's engine
        section times exactly this pair)."""
        key = frozenset(failed_link_ids)
        index = self._index
        dead_idx = index.intern_pairs(self._dead_pairs(key)) if key else None
        adjacency = index.filtered_rows(dead_idx)
        full_reach = index.n
        routes: dict[tuple[int, str], tuple[int, ...]] = {}
        update = routes.update
        prune = False
        for peer in self._peers:
            paths = index.paths_over(peer, adjacency)
            keys, origins, _ = self._peer_static[peer]
            update(zip(keys, map(paths.get, origins)))
            prune = prune or len(paths) != full_reach
        if prune:
            # Unreachable origins left None rows; one scan clears them all.
            for k in [k for k, v in routes.items() if v is None]:
                del routes[k]
        return routes

    def cache_info(self) -> dict:
        """Route-cache economics: hit/miss counters, eviction and pin counts
        and how much convergence work the incremental path avoided —
        including the per-origin repair and delta-stream tallies."""
        return {
            "entries": len(self._route_cache),
            "max_entries": self.config.route_cache_entries,
            "pinned": len(self._pins),
            **self._stats,
        }

    # -- incremental convergence ---------------------------------------------

    def _peer_slice(
        self, router, peer: int, prefixes: list
    ) -> dict[tuple[int, str], tuple[int, ...]]:
        """One peer's (peer, prefix) → path rows under the router's graph."""
        paths = router.paths_from(peer)
        slice_: dict[tuple[int, str], tuple[int, ...]] = {}
        for prefix in prefixes:
            path = paths.get(prefix.asn)
            if path is not None:
                slice_[(peer, prefix.cidr)] = path
        return slice_

    def _fast_slice(
        self, peer: int, paths: dict[int, tuple[int, ...]]
    ) -> dict[tuple[int, str], tuple[int, ...]]:
        """One peer's slice from a fast-engine path table, via the static
        key templates: a C-speed zip/map build, then (only when some origin
        is unreachable) a prune of the ``None`` rows it left behind."""
        keys, origins, _ = self._peer_static[peer]
        slice_ = dict(zip(keys, map(paths.get, origins)))
        if len(paths) != self._index.n:
            for k in [k for k, v in slice_.items() if v is None]:
                del slice_[k]
        return slice_

    def _dead_pairs(self, failed_link_ids: frozenset[str]) -> set[tuple[int, int]]:
        return self._adjacency_index.dead_pairs(failed_link_ids)

    @staticmethod
    def _slice_pairs(slice_: dict) -> frozenset[tuple[int, int]]:
        """Every AS adjacency one peer's route slice traverses.

        Rows with the same origin AS share one path object (structural
        sharing), so paths are deduped by identity before the pair scan —
        the ``id()`` keys are safe because ``slice_`` keeps every path
        alive for the duration.
        """
        if not slice_:
            return frozenset()
        distinct = {id(p): p for p in slice_.values()}
        return frozenset().union(*map(path_adjacencies, distinct.values()))

    def _build_entry(
        self,
        dead: frozenset[tuple[int, int]],
        slices: dict[int, dict],
        pairs: dict[int, frozenset],
    ) -> dict:
        """``pairs`` may be partial — :meth:`_entry_pairs` fills it lazily,
        so entries that never become diff ancestors skip the pair scan.
        ``by_pair`` (the row→adjacency inverted index) is likewise built on
        first repair against the entry (:meth:`_entry_pair_keys`)."""
        routes: dict[tuple[int, str], tuple[int, ...]] = {}
        for peer in self._peers:
            routes.update(slices[peer])
        return {"routes": routes, "slices": slices, "pairs": pairs,
                "dead": dead, "by_pair": {}}

    def _entry_pairs(self, entry: dict) -> dict[int, frozenset]:
        pairs = entry["pairs"]
        for peer in self._peers:
            if peer not in pairs:
                pairs[peer] = self._slice_pairs(entry["slices"][peer])
        return pairs

    def _entry_pair_keys(self, entry: dict) -> dict[tuple[int, int], list]:
        """The entry's localized-failure catalog: adjacency pair → the route
        keys whose recorded path crosses it.  Built once per entry on first
        repair; for the pinned baseline it then serves every single-cable
        disaster in the timeline with an O(|delta|) lookup."""
        by_pair = entry["by_pair"]
        if not by_pair and entry["routes"]:
            # Dedup the adjacency scan by path identity (rows sharing an
            # origin share one path object, kept alive by the entry).
            memo: dict[int, tuple] = {}
            for key, path in entry["routes"].items():
                pairs = memo.get(id(path))
                if pairs is None:
                    pairs = memo[id(path)] = tuple(path_adjacencies(path))
                for pair in pairs:
                    rows = by_pair.get(pair)
                    if rows is None:
                        by_pair[pair] = [key]
                    else:
                        rows.append(key)
        return by_pair

    def _best_ancestor(self, key: frozenset[str]) -> dict:
        """The cached entry of the largest failure set contained in ``key``.

        Timeline states mostly grow by one event (and heal back to states
        already seen), so diffing against the nearest ancestor — rather than
        always the baseline — shrinks the affected frontier to the peers the
        *new* severed adjacencies touch.  The baseline is pinned in the
        cache, so there is always at least one ancestor.
        """
        best_key = frozenset()
        for cached_key in self._route_cache:
            if cached_key != key and len(cached_key) > len(best_key) and cached_key < key:
                best_key = cached_key
        self._route_cache.move_to_end(best_key)  # keep shared ancestors warm
        return self._route_cache[best_key]

    def _compute_routes(self, key: frozenset[str]) -> dict:
        if not key:
            index = self._index
            rows = index.rows
            slices = {
                peer: self._fast_slice(peer, index.paths_over(peer, rows))
                for peer in self._peers
            }
            self._stats["full_recomputes"] += 1
            return self._build_entry(frozenset(), slices, {})

        if frozenset() not in self._route_cache:
            self._entry_for(frozenset())  # pin the baseline first
        dead = frozenset(self._dead_pairs(key))
        ancestor = self._best_ancestor(key)
        delta = dead - ancestor["dead"]
        if not delta:
            # Redundant parallel links absorbed every new failure: no further
            # adjacency died, so the table is the ancestor's — share it
            # wholesale (structurally, the whole entry).
            self._stats["shared_full_tables"] += 1
            return ancestor

        # The peer frontier: peers whose ancestor routes traverse a newly
        # severed adjacency.  Everyone else's table cannot change (edge
        # removal never creates paths and tie-breaks are deterministic), so
        # it is shared.  Within a frontier peer, the same argument holds
        # per row: only the (peer, prefix) rows whose recorded path crossed
        # a delta pair can differ, so the slice is repaired row by row over
        # a C-speed copy instead of rebuilt.
        ancestor_pairs = self._entry_pairs(ancestor)
        # Affected-row discovery: the pinned baseline serves the whole
        # timeline, so its pair→keys catalog amortizes (built once, every
        # localized disaster then costs O(|delta|) lookups).  A chained
        # ancestor is typically consulted once — a direct crossing scan of
        # its frontier slices is cheaper than building its full catalog.
        affected: dict[int, set] | None = None
        if ancestor["by_pair"] or not ancestor["dead"]:
            by_pair = self._entry_pair_keys(ancestor)
            affected = {}
            for pair in delta:
                for route_key in by_pair.get(pair, ()):
                    affected.setdefault(route_key[0], set()).add(route_key)
        index = self._index
        filtered = index.filtered_rows(index.intern_pairs(dead))
        origin_of = self._origin_of
        slices: dict[int, dict] = {}
        pairs: dict[int, frozenset] = {}
        repaired = 0
        for peer in self._peers:
            if ancestor_pairs[peer] & delta:
                paths = index.paths_over(peer, filtered)
                old_slice = ancestor["slices"][peer]
                if affected is not None:
                    hit_keys = affected.get(peer, ())
                else:
                    # Crossing test deduped by path identity (rows sharing
                    # an origin share one path object, alive via old_slice).
                    verdicts: dict[int, bool] = {}
                    hit_keys = []
                    for route_key, path in old_slice.items():
                        crossed = verdicts.get(id(path))
                        if crossed is None:
                            crossed = verdicts[id(path)] = path_crosses(
                                path, delta)
                        if crossed:
                            hit_keys.append(route_key)
                slice_ = dict(old_slice)
                fresh: dict[int, tuple] = {}
                for route_key in hit_keys:
                    new_path = paths.get(origin_of[route_key[1]])
                    if new_path is None:
                        slice_.pop(route_key, None)
                    else:
                        slice_[route_key] = new_path
                        fresh[id(new_path)] = new_path
                    repaired += 1
                slices[peer] = slice_
                # Carry the pair set forward as a superset (old pairs plus
                # the replacement paths'): a superset can only enlarge a
                # future frontier, never wrongly share — and it spares the
                # next repair a lazy full-slice rescan.
                pairs[peer] = (
                    ancestor_pairs[peer].union(
                        *map(path_adjacencies, fresh.values()))
                    if fresh else ancestor_pairs[peer]
                )
                self._stats["peers_recomputed"] += 1
            else:
                slices[peer] = ancestor["slices"][peer]
                pairs[peer] = ancestor_pairs[peer]
                self._stats["peers_shared"] += 1
        self._stats["incremental_recomputes"] += 1
        self._stats["pairs_repaired"] += repaired
        total_rows = sum(len(s) for s in slices.values())
        self._stats["pairs_shared"] += max(0, total_rows - repaired)
        if repaired > self._stats["repair_frontier_peak"]:
            self._stats["repair_frontier_peak"] = repaired
        return self._build_entry(dead, slices, pairs)

    def _evict_route_cache(self) -> None:
        overflow = len(self._route_cache) - self.config.route_cache_entries
        while overflow > 0:
            victim = next(
                (k for k in self._route_cache if k and k not in self._pins),
                None,
            )
            if victim is None:
                break  # only the baseline and pinned entries remain
            del self._route_cache[victim]
            self._stats["evictions"] += 1
            overflow -= 1

    # -- route-delta streams --------------------------------------------------

    def pin(self, failed_link_ids: frozenset[str] = frozenset()) -> frozenset[str]:
        """Exempt one failure state's entry from LRU eviction (refcounted;
        the entry is materialised if not yet cached)."""
        key = frozenset(failed_link_ids)
        with self._cache_lock:
            self._entry_for(key)
            self._pins[key] += 1
        return key

    def unpin(self, failed_link_ids: frozenset[str] = frozenset()) -> None:
        key = frozenset(failed_link_ids)
        with self._cache_lock:
            count = self._pins.get(key, 0)
            if count <= 1:
                self._pins.pop(key, None)
            else:
                self._pins[key] = count - 1

    def deltas_since(
        self,
        baseline_key: frozenset[str],
        failed_link_ids: frozenset[str],
    ) -> RouteDelta:
        """The route diff from one failure state to another.

        Computed slice-by-slice with structural-sharing shortcuts: peers
        whose slices are the same object (the common case — per-origin
        repair carries unaffected slices over by reference) cost one
        identity check, and within differing slices unchanged rows are
        skipped by row identity before value comparison.
        """
        bkey = frozenset(baseline_key)
        tkey = frozenset(failed_link_ids)
        with self._cache_lock:
            before = self._entry_for(bkey)
            after = self._entry_for(tkey)
            changed, withdrawn = self._entry_delta(before, after)
            delta = RouteDelta(bkey, tkey, changed, frozenset(withdrawn))
            self._stats["delta_emits"] += 1
            self._stats["delta_routes"] += delta.route_count
            self._stats["delta_bytes"] += delta.nbytes
            return delta

    def delta_stream(
        self, baseline_key: frozenset[str] = frozenset()
    ) -> RouteDeltaStream:
        """A cross-epoch delta cursor starting at ``baseline_key`` (which is
        pinned against eviction until the stream is closed)."""
        return RouteDeltaStream(self, baseline_key)

    def _entry_delta(
        self, before: dict, after: dict
    ) -> tuple[dict, list]:
        changed: dict = {}
        withdrawn: list = []
        if before is after:
            return changed, withdrawn
        for peer in self._peers:
            before_slice = before["slices"][peer]
            after_slice = after["slices"][peer]
            if before_slice is after_slice:
                continue
            for route_key, path in after_slice.items():
                old = before_slice.get(route_key)
                if old is not path and old != path:
                    changed[route_key] = path
            for route_key in before_slice:
                if route_key not in after_slice:
                    withdrawn.append(route_key)
        return changed, withdrawn

    # -- metrics -------------------------------------------------------------

    def sync_metrics(self, registry, labels: dict | None = None) -> None:
        """Fold :meth:`cache_info` into a MetricsRegistry: monotonic stats
        become ``routing_*_total`` counters (delta-synced against a
        per-registry high-water mark, so repeated scrapes and double
        attachment never double-count), levels become gauges."""
        labels = dict(labels or {})
        mark_key = (id(registry), tuple(sorted(labels.items())))
        marks = self._metrics_marks.setdefault(mark_key, {})
        info = self.cache_info()
        for stat in _COUNTER_STATS:
            value = info[stat]
            previous = marks.get(stat, 0)
            if value > previous:
                registry.counter(f"routing_{stat}_total", labels).inc(value - previous)
            marks[stat] = value
        registry.gauge("routing_route_cache_entries", labels).set(info["entries"])
        registry.gauge("routing_route_cache_pinned", labels).set(info["pinned"])
        registry.gauge("routing_repair_frontier_peak", labels).set(
            info["repair_frontier_peak"]
        )

    def attach_metrics(self, registry, labels: dict | None = None) -> None:
        """Register a scrape-time collector (Prometheus custom-collector
        style) that keeps the registry's ``routing_*`` series current —
        ``/metrics`` and ``--metrics-dump`` then cover the routing core
        without the hot path ever touching an instrument."""
        registry.register_collector(
            lambda reg, sim=self, lb=labels: sim.sync_metrics(reg, lb)
        )

    # -- update generation ----------------------------------------------------

    def delta_updates(
        self,
        ts: float,
        failed_before: frozenset[str],
        failed_after: frozenset[str],
        window_end: float | None = None,
        delta: RouteDelta | None = None,
    ) -> list[BGPUpdate]:
        """The re-convergence burst when the failure set changes at ``ts``.

        Symmetric in direction: a cable cut (links joining the failed set)
        withdraws or re-announces the routes that crossed it, and a repair
        (links leaving the set) announces recovered routes back — which is
        what lets a live timeline *heal* events, not just fire them.

        Rides the route-delta machinery: only the diffed (changed or
        withdrawn) keys are visited, in the same sorted order the old
        full-table comparison produced, so the emitted update stream is
        byte-identical at a fraction of the comparison cost.  Pass a
        precomputed ``delta`` (e.g. from a :class:`RouteDeltaStream`) to
        skip even the diff.
        """
        if delta is None:
            delta = self.deltas_since(failed_before, failed_after)
        if delta.empty:
            return []
        before = self.routes_under(failed_before)
        horizon = window_end if window_end is not None else ts + self.config.convergence_window_s
        rng = random.Random(f"{self.config.seed}:{ts:.3f}")
        updates: list[BGPUpdate] = []
        for key in sorted(list(delta.changed) + list(delta.withdrawn)):
            old_path = before.get(key)
            new_path = delta.changed.get(key)
            peer, prefix = key
            update_ts = min(
                horizon, ts + rng.uniform(1.0, self.config.convergence_window_s)
            )
            if new_path is None:
                updates.append(
                    BGPUpdate(update_ts, self.config.name, peer, UpdateKind.WITHDRAW, prefix)
                )
                continue
            if (
                old_path is not None
                and rng.random() < self.config.exploration_prob
                and len(new_path) >= 2
            ):
                explore_ts = min(horizon, ts + rng.uniform(1.0, 60.0))
                padded = new_path[:1] + new_path[1:2] + new_path[1:]
                updates.append(
                    BGPUpdate(explore_ts, self.config.name, peer,
                              UpdateKind.ANNOUNCE, prefix, padded)
                )
            updates.append(
                BGPUpdate(update_ts, self.config.name, peer,
                          UpdateKind.ANNOUNCE, prefix, new_path)
            )
        updates.sort(key=lambda u: (u.ts, u.peer_asn, u.prefix, u.kind.value))
        return updates

    def churn_updates(self, window_start: float, window_end: float) -> list[BGPUpdate]:
        """Background churn alone for one window, seeded per window start so
        successive epochs draw independent (but reproducible) flaps."""
        if window_end <= window_start:
            raise ValueError("window_end must be after window_start")
        rng = random.Random(f"{self.config.seed}:churn:{window_start:.3f}")
        updates = self._background_churn(rng, window_start, window_end)
        updates.sort(key=lambda u: (u.ts, u.peer_asn, u.prefix, u.kind.value))
        return updates

    def generate_updates(
        self,
        window_start: float,
        window_end: float,
        incidents: list[CableIncident | LatencyIncident | dict] | None = None,
    ) -> list[BGPUpdate]:
        """The update stream a collector records over the window."""
        if window_end <= window_start:
            raise ValueError("window_end must be after window_start")
        rng = random.Random(self.config.seed)
        updates: list[BGPUpdate] = []
        updates.extend(self._background_churn(rng, window_start, window_end))
        failed_links: set[str] = set()
        for item in sorted(
            (CableIncident.coerce(i) for i in (incidents or [])), key=lambda c: c.onset
        ):
            if not window_start <= item.onset <= window_end:
                continue
            cable = self.world.cable_named(item.cable_name)
            failed_links |= {link.id for link in self.world.links_on_cable(cable.id)}
            updates.extend(
                self._incident_burst(rng, item.onset, failed_links, window_end)
            )
        updates.sort(key=lambda u: (u.ts, u.peer_asn, u.prefix, u.kind.value))
        return updates

    # -- internals -----------------------------------------------------------

    def _background_churn(
        self, rng: random.Random, start: float, end: float
    ) -> list[BGPUpdate]:
        """Low-rate flaps of random prefixes, uniform over the window."""
        duration_h = (end - start) / 3600.0
        count = max(0, int(round(self.config.churn_per_hour * duration_h)))
        baseline = self.routes_under(frozenset())  # shared table, read-only
        keys = sorted(baseline.keys())
        updates: list[BGPUpdate] = []
        if not keys:
            return updates
        for _ in range(count):
            peer, prefix = keys[rng.randrange(len(keys))]
            ts = rng.uniform(start, end)
            path = baseline[(peer, prefix)]
            if rng.random() < 0.5:
                # A quick flap: withdraw then re-announce the same route.
                updates.append(
                    BGPUpdate(ts, self.config.name, peer, UpdateKind.WITHDRAW, prefix)
                )
                updates.append(
                    BGPUpdate(
                        min(end, ts + rng.uniform(5.0, 60.0)),
                        self.config.name,
                        peer,
                        UpdateKind.ANNOUNCE,
                        prefix,
                        path,
                    )
                )
            else:
                updates.append(
                    BGPUpdate(ts, self.config.name, peer, UpdateKind.ANNOUNCE, prefix, path)
                )
        return updates

    def _incident_burst(
        self,
        rng: random.Random,
        onset: float,
        failed_links: set[str],
        window_end: float,
    ) -> list[BGPUpdate]:
        """Re-convergence burst after the given link set dies.

        Rides the incremental route machinery: the post-failure table comes
        from :meth:`routes_under` (per-origin repair, memoized), not a
        from-scratch SPF sweep per burst — which is what keeps repeated
        forensic queries over the same incident cheap.
        """
        dead_pairs = self._dead_pairs(frozenset(failed_links))
        if not dead_pairs:
            return []
        after = self.routes_under(frozenset(failed_links))
        baseline = self.routes_under(frozenset())

        updates: list[BGPUpdate] = []
        for (peer, prefix), old_path in sorted(baseline.items()):
            if not path_crosses(old_path, dead_pairs):
                continue
            new_path = after.get((peer, prefix))
            ts = min(window_end, onset + rng.uniform(1.0, self.config.convergence_window_s))
            if new_path is None:
                updates.append(
                    BGPUpdate(ts, self.config.name, peer, UpdateKind.WITHDRAW, prefix)
                )
                continue
            if rng.random() < self.config.exploration_prob and len(new_path) >= 2:
                # Path exploration: briefly announce a detour one hop longer.
                explore_ts = min(window_end, onset + rng.uniform(1.0, 60.0))
                padded = new_path[:1] + new_path[1:2] + new_path[1:]
                updates.append(
                    BGPUpdate(
                        explore_ts,
                        self.config.name,
                        peer,
                        UpdateKind.ANNOUNCE,
                        prefix,
                        padded,
                    )
                )
            updates.append(
                BGPUpdate(ts, self.config.name, peer, UpdateKind.ANNOUNCE, prefix, new_path)
            )
        return updates


def shared_collector(
    world: SyntheticWorld, config: CollectorConfig | None = None
) -> BGPCollectorSim:
    """One collector per (world, config), memoized on the world object.

    The registry-facing BGP functions run once per served query; sharing the
    collector means its graph, vantage points and — critically — the
    incremental route cache survive across queries, so repeated forensic
    questions about the same incident skip re-convergence entirely.  Safe
    across worker threads: the route cache is lock-guarded, and everything
    else is immutable after construction.
    """
    cfg = config or CollectorConfig()
    with _SHARED_COLLECTOR_LOCK:
        cache = getattr(world, "_collector_cache", None)
        if cache is None:
            cache = {}
            world._collector_cache = cache
        sim = cache.get(cfg)
        if sim is None:
            sim = cache[cfg] = BGPCollectorSim(world, cfg)
    return sim


_SHARED_COLLECTOR_LOCK = threading.Lock()
