"""BGP collector simulation: steady-state churn plus incident dynamics.

The simulator stands in for RouteViews/RIS.  Vantage points (peers) are
transit ASes; for every (peer, prefix) pair the baseline route is the
valley-free path from peer to origin.  Background churn emits low-rate
flaps.  When an incident kills a cable, every route whose path crossed a
severed adjacency re-converges: withdrawn if no policy path survives,
re-announced with the new (usually longer) path otherwise, spread over a
convergence window with optional path exploration — the update-burst
signature the forensic workflow hunts for.
"""

from __future__ import annotations

import random
import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.bgp.messages import BGPUpdate, UpdateKind
from repro.topology.relations import AdjacencyIndex, ASGraph, failed_as_pairs
from repro.topology.routing import ValleyFreeRouter, path_adjacencies, path_crosses
from repro.synth.scenarios import LatencyIncident
from repro.synth.world import SyntheticWorld


@dataclass(frozen=True)
class CollectorConfig:
    """Collector behaviour knobs."""

    name: str = "rrc-sim"
    peer_count: int = 8
    churn_per_hour: float = 12.0
    convergence_window_s: float = 300.0
    exploration_prob: float = 0.3
    seed: int = 11
    #: LRU bound on memoized route tables; long live timelines revisit a few
    #: failure states, so a small bound keeps memory flat without thrashing.
    route_cache_entries: int = 64


@dataclass(frozen=True)
class CableIncident:
    """A cable failure visible to the routing system."""

    cable_name: str
    onset: float

    @classmethod
    def coerce(cls, item: "CableIncident | LatencyIncident | dict") -> "CableIncident":
        if isinstance(item, CableIncident):
            return item
        if isinstance(item, LatencyIncident):
            return cls(cable_name=item.cable_name, onset=item.onset)
        return cls(cable_name=item["cable_name"], onset=float(item["onset"]))


@dataclass
class BGPCollectorSim:
    """Generates update streams for a time window."""

    world: SyntheticWorld
    config: CollectorConfig = field(default_factory=CollectorConfig)

    def __post_init__(self) -> None:
        self._graph = ASGraph.from_world(self.world)
        self._peers = self._select_peers()
        # (frozen failed-link set) -> cache entry; the live feed diffs epoch
        # route tables and a replay revisits the same few failure states.
        # LRU-bounded (baseline pinned) so long timelines keep memory flat.
        # Each entry carries the flat route table plus the per-peer slices
        # and per-peer traversed-adjacency sets that later failure states
        # diff against (see _compute_routes).
        self._route_cache: OrderedDict[frozenset[str], dict] = OrderedDict()
        # Serve workers share one collector per world (see shared_collector);
        # RLock because computing one entry consults others (the ancestor).
        self._cache_lock = threading.RLock()
        # Prebuilt link→pair indexes: severed adjacencies per failure set in
        # O(|failed links|), sharing the one redundancy-rule definition with
        # failed_as_pairs (which routes_under_full still calls).
        self._adjacency_index = AdjacencyIndex(self.world)
        self._stats = {
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "full_recomputes": 0,
            "incremental_recomputes": 0,
            "shared_full_tables": 0,
            "peers_recomputed": 0,
            "peers_shared": 0,
        }

    def _select_peers(self) -> list[int]:
        """Deterministic vantage points: tier-1s first, then tier-2s."""
        tier1 = sorted(a.asn for a in self.world.ases.values() if a.tier == 1)
        tier2 = sorted(a.asn for a in self.world.ases.values() if a.tier == 2)
        return (tier1 + tier2)[: self.config.peer_count]

    @property
    def peers(self) -> list[int]:
        return list(self._peers)

    def baseline_routes(self) -> dict[tuple[int, str], tuple[int, ...]]:
        """(peer, prefix) → AS path at steady state."""
        return dict(self.routes_under(frozenset()))

    def routes_under(
        self, failed_link_ids: frozenset[str] = frozenset()
    ) -> dict[tuple[int, str], tuple[int, ...]]:
        """(peer, prefix) → AS path with the given links out of service.

        Memoized per failure set (LRU-bounded, baseline pinned) and computed
        *incrementally*: only peers whose baseline routes crossed a severed
        adjacency re-run SPF; everyone else shares the baseline table
        structurally.  Callers must not mutate the returned dict.
        """
        return self._entry_for(frozenset(failed_link_ids))["routes"]

    def _entry_for(self, key: frozenset[str]) -> dict:
        with self._cache_lock:
            cached = self._route_cache.get(key)
            if cached is not None:
                self._stats["hits"] += 1
                self._route_cache.move_to_end(key)
                return cached
            self._stats["misses"] += 1
            entry = self._compute_routes(key)
            self._route_cache[key] = entry
            self._evict_route_cache()
            return entry

    def routes_under_full(
        self, failed_link_ids: frozenset[str] = frozenset()
    ) -> dict[tuple[int, str], tuple[int, ...]]:
        """The same table computed from scratch — full SPF for every peer,
        no cache, no structural sharing.  This is the reference the
        incremental path is tested and benchmarked against."""
        graph = self._graph
        if failed_link_ids:
            dead = failed_as_pairs(self.world, sorted(failed_link_ids))
            graph = graph.without_pairs(dead)
        router = ValleyFreeRouter(graph)
        prefixes = self.world.all_prefixes()
        routes: dict[tuple[int, str], tuple[int, ...]] = {}
        for peer in self._peers:
            routes.update(self._peer_slice(router, peer, prefixes))
        return routes

    def cache_info(self) -> dict:
        """Route-cache economics: hit/miss counters, eviction count and how
        much convergence work the incremental path avoided."""
        return {
            "entries": len(self._route_cache),
            "max_entries": self.config.route_cache_entries,
            **self._stats,
        }

    # -- incremental convergence ---------------------------------------------

    def _peer_slice(
        self, router: ValleyFreeRouter, peer: int, prefixes: list
    ) -> dict[tuple[int, str], tuple[int, ...]]:
        """One peer's (peer, prefix) → path rows under the router's graph."""
        paths = router.paths_from(peer)
        slice_: dict[tuple[int, str], tuple[int, ...]] = {}
        for prefix in prefixes:
            path = paths.get(prefix.asn)
            if path is not None:
                slice_[(peer, prefix.cidr)] = path
        return slice_

    def _dead_pairs(self, failed_link_ids: frozenset[str]) -> set[tuple[int, int]]:
        return self._adjacency_index.dead_pairs(failed_link_ids)

    @staticmethod
    def _slice_pairs(slice_: dict) -> frozenset[tuple[int, int]]:
        """Every AS adjacency one peer's route slice traverses."""
        if not slice_:
            return frozenset()
        return frozenset().union(*(path_adjacencies(p) for p in slice_.values()))

    def _build_entry(
        self,
        dead: frozenset[tuple[int, int]],
        slices: dict[int, dict],
        pairs: dict[int, frozenset],
    ) -> dict:
        """``pairs`` may be partial — :meth:`_entry_pairs` fills it lazily,
        so entries that never become diff ancestors skip the pair scan."""
        routes: dict[tuple[int, str], tuple[int, ...]] = {}
        for peer in self._peers:
            routes.update(slices[peer])
        return {"routes": routes, "slices": slices, "pairs": pairs, "dead": dead}

    def _entry_pairs(self, entry: dict) -> dict[int, frozenset]:
        pairs = entry["pairs"]
        for peer in self._peers:
            if peer not in pairs:
                pairs[peer] = self._slice_pairs(entry["slices"][peer])
        return pairs

    def _best_ancestor(self, key: frozenset[str]) -> dict:
        """The cached entry of the largest failure set contained in ``key``.

        Timeline states mostly grow by one event (and heal back to states
        already seen), so diffing against the nearest ancestor — rather than
        always the baseline — shrinks the affected frontier to the peers the
        *new* severed adjacencies touch.  The baseline is pinned in the
        cache, so there is always at least one ancestor.
        """
        best_key = frozenset()
        for cached_key in self._route_cache:
            if cached_key != key and len(cached_key) > len(best_key) and cached_key < key:
                best_key = cached_key
        self._route_cache.move_to_end(best_key)  # keep shared ancestors warm
        return self._route_cache[best_key]

    def _compute_routes(self, key: frozenset[str]) -> dict:
        prefixes = self.world.all_prefixes()  # hoisted: one call per table
        if not key:
            router = ValleyFreeRouter(self._graph)
            slices = {
                peer: self._peer_slice(router, peer, prefixes) for peer in self._peers
            }
            self._stats["full_recomputes"] += 1
            return self._build_entry(frozenset(), slices, {})

        if frozenset() not in self._route_cache:
            self._entry_for(frozenset())  # pin the baseline first
        dead = frozenset(self._dead_pairs(key))
        ancestor = self._best_ancestor(key)
        delta = dead - ancestor["dead"]
        if not delta:
            # Redundant parallel links absorbed every new failure: no further
            # adjacency died, so the table is the ancestor's — share it
            # wholesale (structurally, the whole entry).
            self._stats["shared_full_tables"] += 1
            return ancestor

        # The frontier: peers whose ancestor routes traverse a newly severed
        # adjacency.  Everyone else's table cannot change (edge removal never
        # creates paths and tie-breaks are deterministic), so it is shared.
        ancestor_pairs = self._entry_pairs(ancestor)
        router = ValleyFreeRouter(self._graph, dead_pairs=dead)
        slices = {}
        pairs = {}
        for peer in self._peers:
            if ancestor_pairs[peer] & delta:
                slices[peer] = self._peer_slice(router, peer, prefixes)
                self._stats["peers_recomputed"] += 1
            else:
                slices[peer] = ancestor["slices"][peer]
                pairs[peer] = ancestor_pairs[peer]
                self._stats["peers_shared"] += 1
        self._stats["incremental_recomputes"] += 1
        return self._build_entry(dead, slices, pairs)

    def _evict_route_cache(self) -> None:
        while len(self._route_cache) > self.config.route_cache_entries:
            for key in self._route_cache:
                if key:  # the baseline (empty set) is pinned: incremental
                    del self._route_cache[key]  # tables diff against it
                    self._stats["evictions"] += 1
                    break
            else:
                break  # only the baseline remains; nothing evictable

    def delta_updates(
        self,
        ts: float,
        failed_before: frozenset[str],
        failed_after: frozenset[str],
        window_end: float | None = None,
    ) -> list[BGPUpdate]:
        """The re-convergence burst when the failure set changes at ``ts``.

        Symmetric in direction: a cable cut (links joining the failed set)
        withdraws or re-announces the routes that crossed it, and a repair
        (links leaving the set) announces recovered routes back — which is
        what lets a live timeline *heal* events, not just fire them.
        """
        before = self.routes_under(failed_before)
        after = self.routes_under(failed_after)
        if before == after:
            return []
        horizon = window_end if window_end is not None else ts + self.config.convergence_window_s
        rng = random.Random(f"{self.config.seed}:{ts:.3f}")
        updates: list[BGPUpdate] = []
        for key in sorted(set(before) | set(after)):
            old_path = before.get(key)
            new_path = after.get(key)
            if old_path == new_path:
                continue
            peer, prefix = key
            update_ts = min(
                horizon, ts + rng.uniform(1.0, self.config.convergence_window_s)
            )
            if new_path is None:
                updates.append(
                    BGPUpdate(update_ts, self.config.name, peer, UpdateKind.WITHDRAW, prefix)
                )
                continue
            if (
                old_path is not None
                and rng.random() < self.config.exploration_prob
                and len(new_path) >= 2
            ):
                explore_ts = min(horizon, ts + rng.uniform(1.0, 60.0))
                padded = new_path[:1] + new_path[1:2] + new_path[1:]
                updates.append(
                    BGPUpdate(explore_ts, self.config.name, peer,
                              UpdateKind.ANNOUNCE, prefix, padded)
                )
            updates.append(
                BGPUpdate(update_ts, self.config.name, peer,
                          UpdateKind.ANNOUNCE, prefix, new_path)
            )
        updates.sort(key=lambda u: (u.ts, u.peer_asn, u.prefix, u.kind.value))
        return updates

    def churn_updates(self, window_start: float, window_end: float) -> list[BGPUpdate]:
        """Background churn alone for one window, seeded per window start so
        successive epochs draw independent (but reproducible) flaps."""
        if window_end <= window_start:
            raise ValueError("window_end must be after window_start")
        rng = random.Random(f"{self.config.seed}:churn:{window_start:.3f}")
        updates = self._background_churn(rng, window_start, window_end)
        updates.sort(key=lambda u: (u.ts, u.peer_asn, u.prefix, u.kind.value))
        return updates

    def generate_updates(
        self,
        window_start: float,
        window_end: float,
        incidents: list[CableIncident | LatencyIncident | dict] | None = None,
    ) -> list[BGPUpdate]:
        """The update stream a collector records over the window."""
        if window_end <= window_start:
            raise ValueError("window_end must be after window_start")
        rng = random.Random(self.config.seed)
        updates: list[BGPUpdate] = []
        updates.extend(self._background_churn(rng, window_start, window_end))
        failed_links: set[str] = set()
        for item in sorted(
            (CableIncident.coerce(i) for i in (incidents or [])), key=lambda c: c.onset
        ):
            if not window_start <= item.onset <= window_end:
                continue
            cable = self.world.cable_named(item.cable_name)
            failed_links |= {link.id for link in self.world.links_on_cable(cable.id)}
            updates.extend(
                self._incident_burst(rng, item.onset, failed_links, window_end)
            )
        updates.sort(key=lambda u: (u.ts, u.peer_asn, u.prefix, u.kind.value))
        return updates

    # -- internals -----------------------------------------------------------

    def _background_churn(
        self, rng: random.Random, start: float, end: float
    ) -> list[BGPUpdate]:
        """Low-rate flaps of random prefixes, uniform over the window."""
        duration_h = (end - start) / 3600.0
        count = max(0, int(round(self.config.churn_per_hour * duration_h)))
        baseline = self.routes_under(frozenset())  # shared table, read-only
        keys = sorted(baseline.keys())
        updates: list[BGPUpdate] = []
        if not keys:
            return updates
        for _ in range(count):
            peer, prefix = keys[rng.randrange(len(keys))]
            ts = rng.uniform(start, end)
            path = baseline[(peer, prefix)]
            if rng.random() < 0.5:
                # A quick flap: withdraw then re-announce the same route.
                updates.append(
                    BGPUpdate(ts, self.config.name, peer, UpdateKind.WITHDRAW, prefix)
                )
                updates.append(
                    BGPUpdate(
                        min(end, ts + rng.uniform(5.0, 60.0)),
                        self.config.name,
                        peer,
                        UpdateKind.ANNOUNCE,
                        prefix,
                        path,
                    )
                )
            else:
                updates.append(
                    BGPUpdate(ts, self.config.name, peer, UpdateKind.ANNOUNCE, prefix, path)
                )
        return updates

    def _incident_burst(
        self,
        rng: random.Random,
        onset: float,
        failed_links: set[str],
        window_end: float,
    ) -> list[BGPUpdate]:
        """Re-convergence burst after the given link set dies.

        Rides the incremental route machinery: the post-failure table comes
        from :meth:`routes_under` (affected-frontier recompute, memoized),
        not a from-scratch SPF sweep per burst — which is what keeps
        repeated forensic queries over the same incident cheap.
        """
        dead_pairs = self._dead_pairs(frozenset(failed_links))
        if not dead_pairs:
            return []
        after = self.routes_under(frozenset(failed_links))
        baseline = self.routes_under(frozenset())

        updates: list[BGPUpdate] = []
        for (peer, prefix), old_path in sorted(baseline.items()):
            if not path_crosses(old_path, dead_pairs):
                continue
            new_path = after.get((peer, prefix))
            ts = min(window_end, onset + rng.uniform(1.0, self.config.convergence_window_s))
            if new_path is None:
                updates.append(
                    BGPUpdate(ts, self.config.name, peer, UpdateKind.WITHDRAW, prefix)
                )
                continue
            if rng.random() < self.config.exploration_prob and len(new_path) >= 2:
                # Path exploration: briefly announce a detour one hop longer.
                explore_ts = min(window_end, onset + rng.uniform(1.0, 60.0))
                padded = new_path[:1] + new_path[1:2] + new_path[1:]
                updates.append(
                    BGPUpdate(
                        explore_ts,
                        self.config.name,
                        peer,
                        UpdateKind.ANNOUNCE,
                        prefix,
                        padded,
                    )
                )
            updates.append(
                BGPUpdate(ts, self.config.name, peer, UpdateKind.ANNOUNCE, prefix, new_path)
            )
        return updates


def shared_collector(
    world: SyntheticWorld, config: CollectorConfig | None = None
) -> BGPCollectorSim:
    """One collector per (world, config), memoized on the world object.

    The registry-facing BGP functions run once per served query; sharing the
    collector means its graph, vantage points and — critically — the
    incremental route cache survive across queries, so repeated forensic
    questions about the same incident skip re-convergence entirely.  Safe
    across worker threads: the route cache is lock-guarded, and everything
    else is immutable after construction.
    """
    cfg = config or CollectorConfig()
    with _SHARED_COLLECTOR_LOCK:
        cache = getattr(world, "_collector_cache", None)
        if cache is None:
            cache = {}
            world._collector_cache = cache
        sim = cache.get(cfg)
        if sim is None:
            sim = cache[cfg] = BGPCollectorSim(world, cfg)
    return sim


_SHARED_COLLECTOR_LOCK = threading.Lock()
