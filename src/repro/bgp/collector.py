"""BGP collector simulation: steady-state churn plus incident dynamics.

The simulator stands in for RouteViews/RIS.  Vantage points (peers) are
transit ASes; for every (peer, prefix) pair the baseline route is the
valley-free path from peer to origin.  Background churn emits low-rate
flaps.  When an incident kills a cable, every route whose path crossed a
severed adjacency re-converges: withdrawn if no policy path survives,
re-announced with the new (usually longer) path otherwise, spread over a
convergence window with optional path exploration — the update-burst
signature the forensic workflow hunts for.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.bgp.messages import BGPUpdate, UpdateKind
from repro.topology.relations import ASGraph, failed_as_pairs
from repro.topology.routing import ValleyFreeRouter
from repro.synth.scenarios import LatencyIncident
from repro.synth.world import SyntheticWorld


@dataclass(frozen=True)
class CollectorConfig:
    """Collector behaviour knobs."""

    name: str = "rrc-sim"
    peer_count: int = 8
    churn_per_hour: float = 12.0
    convergence_window_s: float = 300.0
    exploration_prob: float = 0.3
    seed: int = 11


@dataclass(frozen=True)
class CableIncident:
    """A cable failure visible to the routing system."""

    cable_name: str
    onset: float

    @classmethod
    def coerce(cls, item: "CableIncident | LatencyIncident | dict") -> "CableIncident":
        if isinstance(item, CableIncident):
            return item
        if isinstance(item, LatencyIncident):
            return cls(cable_name=item.cable_name, onset=item.onset)
        return cls(cable_name=item["cable_name"], onset=float(item["onset"]))


@dataclass
class BGPCollectorSim:
    """Generates update streams for a time window."""

    world: SyntheticWorld
    config: CollectorConfig = field(default_factory=CollectorConfig)

    def __post_init__(self) -> None:
        self._graph = ASGraph.from_world(self.world)
        self._peers = self._select_peers()
        # (frozen failed-link set) -> route table; the live feed diffs epoch
        # route tables and a replay revisits the same few failure states.
        self._route_cache: dict[frozenset[str], dict[tuple[int, str], tuple[int, ...]]] = {}

    def _select_peers(self) -> list[int]:
        """Deterministic vantage points: tier-1s first, then tier-2s."""
        tier1 = sorted(a.asn for a in self.world.ases.values() if a.tier == 1)
        tier2 = sorted(a.asn for a in self.world.ases.values() if a.tier == 2)
        return (tier1 + tier2)[: self.config.peer_count]

    @property
    def peers(self) -> list[int]:
        return list(self._peers)

    def baseline_routes(self) -> dict[tuple[int, str], tuple[int, ...]]:
        """(peer, prefix) → AS path at steady state."""
        return dict(self.routes_under(frozenset()))

    def routes_under(
        self, failed_link_ids: frozenset[str] = frozenset()
    ) -> dict[tuple[int, str], tuple[int, ...]]:
        """(peer, prefix) → AS path with the given links out of service.

        Memoized per failure set; callers must not mutate the returned dict.
        """
        if failed_link_ids not in self._route_cache:
            graph = self._graph
            if failed_link_ids:
                dead = failed_as_pairs(self.world, sorted(failed_link_ids))
                graph = graph.without_pairs(dead)
            router = ValleyFreeRouter(graph)
            routes: dict[tuple[int, str], tuple[int, ...]] = {}
            for peer in self._peers:
                paths = router.paths_from(peer)
                for prefix in self.world.all_prefixes():
                    path = paths.get(prefix.asn)
                    if path is not None:
                        routes[(peer, prefix.cidr)] = path
            self._route_cache[failed_link_ids] = routes
        return self._route_cache[failed_link_ids]

    def delta_updates(
        self,
        ts: float,
        failed_before: frozenset[str],
        failed_after: frozenset[str],
        window_end: float | None = None,
    ) -> list[BGPUpdate]:
        """The re-convergence burst when the failure set changes at ``ts``.

        Symmetric in direction: a cable cut (links joining the failed set)
        withdraws or re-announces the routes that crossed it, and a repair
        (links leaving the set) announces recovered routes back — which is
        what lets a live timeline *heal* events, not just fire them.
        """
        before = self.routes_under(failed_before)
        after = self.routes_under(failed_after)
        if before == after:
            return []
        horizon = window_end if window_end is not None else ts + self.config.convergence_window_s
        rng = random.Random(f"{self.config.seed}:{ts:.3f}")
        updates: list[BGPUpdate] = []
        for key in sorted(set(before) | set(after)):
            old_path = before.get(key)
            new_path = after.get(key)
            if old_path == new_path:
                continue
            peer, prefix = key
            update_ts = min(
                horizon, ts + rng.uniform(1.0, self.config.convergence_window_s)
            )
            if new_path is None:
                updates.append(
                    BGPUpdate(update_ts, self.config.name, peer, UpdateKind.WITHDRAW, prefix)
                )
                continue
            if (
                old_path is not None
                and rng.random() < self.config.exploration_prob
                and len(new_path) >= 2
            ):
                explore_ts = min(horizon, ts + rng.uniform(1.0, 60.0))
                padded = new_path[:1] + new_path[1:2] + new_path[1:]
                updates.append(
                    BGPUpdate(explore_ts, self.config.name, peer,
                              UpdateKind.ANNOUNCE, prefix, padded)
                )
            updates.append(
                BGPUpdate(update_ts, self.config.name, peer,
                          UpdateKind.ANNOUNCE, prefix, new_path)
            )
        updates.sort(key=lambda u: (u.ts, u.peer_asn, u.prefix, u.kind.value))
        return updates

    def churn_updates(self, window_start: float, window_end: float) -> list[BGPUpdate]:
        """Background churn alone for one window, seeded per window start so
        successive epochs draw independent (but reproducible) flaps."""
        if window_end <= window_start:
            raise ValueError("window_end must be after window_start")
        rng = random.Random(f"{self.config.seed}:churn:{window_start:.3f}")
        updates = self._background_churn(rng, window_start, window_end)
        updates.sort(key=lambda u: (u.ts, u.peer_asn, u.prefix, u.kind.value))
        return updates

    def generate_updates(
        self,
        window_start: float,
        window_end: float,
        incidents: list[CableIncident | LatencyIncident | dict] | None = None,
    ) -> list[BGPUpdate]:
        """The update stream a collector records over the window."""
        if window_end <= window_start:
            raise ValueError("window_end must be after window_start")
        rng = random.Random(self.config.seed)
        updates: list[BGPUpdate] = []
        updates.extend(self._background_churn(rng, window_start, window_end))
        failed_links: set[str] = set()
        for item in sorted(
            (CableIncident.coerce(i) for i in (incidents or [])), key=lambda c: c.onset
        ):
            if not window_start <= item.onset <= window_end:
                continue
            cable = self.world.cable_named(item.cable_name)
            failed_links |= {link.id for link in self.world.links_on_cable(cable.id)}
            updates.extend(
                self._incident_burst(rng, item.onset, failed_links, window_end)
            )
        updates.sort(key=lambda u: (u.ts, u.peer_asn, u.prefix, u.kind.value))
        return updates

    # -- internals -----------------------------------------------------------

    def _background_churn(
        self, rng: random.Random, start: float, end: float
    ) -> list[BGPUpdate]:
        """Low-rate flaps of random prefixes, uniform over the window."""
        duration_h = (end - start) / 3600.0
        count = max(0, int(round(self.config.churn_per_hour * duration_h)))
        baseline = self.baseline_routes()
        keys = sorted(baseline.keys())
        updates: list[BGPUpdate] = []
        if not keys:
            return updates
        for _ in range(count):
            peer, prefix = keys[rng.randrange(len(keys))]
            ts = rng.uniform(start, end)
            path = baseline[(peer, prefix)]
            if rng.random() < 0.5:
                # A quick flap: withdraw then re-announce the same route.
                updates.append(
                    BGPUpdate(ts, self.config.name, peer, UpdateKind.WITHDRAW, prefix)
                )
                updates.append(
                    BGPUpdate(
                        min(end, ts + rng.uniform(5.0, 60.0)),
                        self.config.name,
                        peer,
                        UpdateKind.ANNOUNCE,
                        prefix,
                        path,
                    )
                )
            else:
                updates.append(
                    BGPUpdate(ts, self.config.name, peer, UpdateKind.ANNOUNCE, prefix, path)
                )
        return updates

    def _incident_burst(
        self,
        rng: random.Random,
        onset: float,
        failed_links: set[str],
        window_end: float,
    ) -> list[BGPUpdate]:
        """Re-convergence burst after the given link set dies."""
        dead_pairs = failed_as_pairs(self.world, sorted(failed_links))
        if not dead_pairs:
            return []
        pruned = self._graph.without_pairs(dead_pairs)
        router_after = ValleyFreeRouter(pruned)
        baseline = self.baseline_routes()

        updates: list[BGPUpdate] = []
        for (peer, prefix), old_path in sorted(baseline.items()):
            crossed = any(
                (min(a, b), max(a, b)) in dead_pairs for a, b in zip(old_path, old_path[1:])
            )
            if not crossed:
                continue
            origin = old_path[-1]
            new_paths = router_after.paths_from(peer)
            new_path = new_paths.get(origin)
            ts = min(window_end, onset + rng.uniform(1.0, self.config.convergence_window_s))
            if new_path is None:
                updates.append(
                    BGPUpdate(ts, self.config.name, peer, UpdateKind.WITHDRAW, prefix)
                )
                continue
            if rng.random() < self.config.exploration_prob and len(new_path) >= 2:
                # Path exploration: briefly announce a detour one hop longer.
                explore_ts = min(window_end, onset + rng.uniform(1.0, 60.0))
                padded = new_path[:1] + new_path[1:2] + new_path[1:]
                updates.append(
                    BGPUpdate(
                        explore_ts,
                        self.config.name,
                        peer,
                        UpdateKind.ANNOUNCE,
                        prefix,
                        padded,
                    )
                )
            updates.append(
                BGPUpdate(ts, self.config.name, peer, UpdateKind.ANNOUNCE, prefix, new_path)
            )
        return updates
