"""BGP message and route-record models (MRT-shaped, minus the bytes)."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class UpdateKind(str, Enum):
    ANNOUNCE = "A"
    WITHDRAW = "W"


@dataclass(frozen=True)
class BGPUpdate:
    """One update as a collector records it."""

    ts: float
    collector: str
    peer_asn: int
    kind: UpdateKind
    prefix: str
    as_path: tuple[int, ...] = ()

    @property
    def origin_asn(self) -> int | None:
        return self.as_path[-1] if self.as_path else None

    def to_dict(self) -> dict:
        return {
            "ts": self.ts,
            "collector": self.collector,
            "peer_asn": self.peer_asn,
            "kind": self.kind.value,
            "prefix": self.prefix,
            "as_path": list(self.as_path),
        }

    @classmethod
    def from_dict(cls, row: dict) -> "BGPUpdate":
        return cls(
            ts=float(row["ts"]),
            collector=row["collector"],
            peer_asn=int(row["peer_asn"]),
            kind=UpdateKind(row["kind"]),
            prefix=row["prefix"],
            as_path=tuple(int(a) for a in row.get("as_path", ())),
        )


@dataclass(frozen=True)
class RouteRecord:
    """A RIB entry: the route one peer currently gives for one prefix."""

    collector: str
    peer_asn: int
    prefix: str
    as_path: tuple[int, ...]
    ts: float

    @property
    def origin_asn(self) -> int | None:
        return self.as_path[-1] if self.as_path else None

    def to_dict(self) -> dict:
        return {
            "collector": self.collector,
            "peer_asn": self.peer_asn,
            "prefix": self.prefix,
            "as_path": list(self.as_path),
            "ts": self.ts,
        }


def path_edit_distance(a: tuple[int, ...], b: tuple[int, ...]) -> int:
    """Levenshtein distance between two AS paths (path-churn metric)."""
    if not a:
        return len(b)
    if not b:
        return len(a)
    prev = list(range(len(b) + 1))
    for i, asn_a in enumerate(a, start=1):
        row = [i]
        for j, asn_b in enumerate(b, start=1):
            cost = 0 if asn_a == asn_b else 1
            row.append(min(prev[j] + 1, row[j - 1] + 1, prev[j - 1] + cost))
        prev = row
    return prev[-1]
