"""The LLM client protocol: string prompts in, string completions out.

Agents never see backend internals; they format a prompt, call
:func:`complete_json`, and get parsed JSON with bounded retries on malformed
output — the same control flow a production deployment would run against a
hosted model.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Protocol


@dataclass(frozen=True)
class LLMRequest:
    """One completion request."""

    agent: str  # "querymind" | "workflowscout" | "solutionweaver" | "registrycurator"
    system: str
    user: str
    attempt: int = 1
    metadata: dict = field(default_factory=dict, hash=False, compare=False)

    @property
    def full_prompt(self) -> str:
        return f"{self.system}\n\n{self.user}"


@dataclass(frozen=True)
class LLMResponse:
    """One completion."""

    text: str
    model: str = "simulated-expert-v1"


class LLMError(RuntimeError):
    """The backend failed to produce any completion."""


class LLMParseError(LLMError):
    """The completion did not contain valid JSON after all retries."""


class LLMClient(Protocol):
    """Anything that can complete a prompt."""

    def complete(self, request: LLMRequest) -> LLMResponse:  # pragma: no cover - protocol
        ...


_JSON_FENCE = re.compile(r"```(?:json)?\s*(.*?)```", re.DOTALL)


def extract_json(text: str) -> dict | list:
    """Pull the first JSON object out of a completion.

    Accepts fenced blocks (```json ... ```), bare JSON, or JSON embedded in
    prose (first ``{``/``[`` to the matching close) — the defensive parsing
    any LLM integration needs.
    """
    fenced = _JSON_FENCE.search(text)
    candidates: list[str] = []
    if fenced:
        candidates.append(fenced.group(1))
    stripped = text.strip()
    candidates.append(stripped)
    for opener, closer in (("{", "}"), ("[", "]")):
        start = stripped.find(opener)
        end = stripped.rfind(closer)
        if start != -1 and end > start:
            candidates.append(stripped[start : end + 1])
    for candidate in candidates:
        try:
            return json.loads(candidate)
        except json.JSONDecodeError:
            continue
    raise LLMParseError(f"no JSON found in completion: {text[:200]!r}")


def complete_json(
    client: LLMClient,
    request: LLMRequest,
    validator=None,
    max_attempts: int = 3,
) -> dict | list:
    """Complete with JSON parsing and bounded retries.

    On a parse or validation failure the request is retried with the error
    appended to the prompt (so a real model can self-correct); after
    ``max_attempts`` the last error propagates.
    """
    if max_attempts < 1:
        raise ValueError("max_attempts must be at least 1")
    last_error: Exception | None = None
    user = request.user
    for attempt in range(1, max_attempts + 1):
        attempt_request = LLMRequest(
            agent=request.agent,
            system=request.system,
            user=user,
            attempt=attempt,
            metadata=request.metadata,
        )
        response = client.complete(attempt_request)
        try:
            payload = extract_json(response.text)
            if validator is not None:
                validator(payload)
            return payload
        except (LLMParseError, ValueError, KeyError, TypeError) as exc:
            last_error = exc
            user = (
                request.user
                + f"\n\n## PREVIOUS ATTEMPT FAILED\nYour attempt {attempt} failed with: {exc}."
                + " Return only valid JSON matching the schema."
            )
    raise LLMParseError(f"agent {request.agent!r} failed after {max_attempts} attempts: {last_error}")
