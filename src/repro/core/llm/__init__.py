"""LLM substrate: the client protocol and its offline backends.

The paper's prototype runs Claude Sonnet 4 behind four agent prompts.  This
package keeps the same seam — agents build prompt strings, send them through
an :class:`~repro.core.llm.client.LLMClient`, and parse structured JSON out
of the reply — while shipping two offline backends:

* :class:`~repro.core.llm.simulated.SimulatedLLM` — a deterministic
  expert-system backend that encodes the same measurement reasoning the
  paper's prompt engineering distilled from human experts.
* :class:`~repro.core.llm.scripted.ScriptedLLM` — canned replies for tests
  (including malformed ones, to exercise retry paths).

A real API client can be dropped in by implementing ``complete``.
"""

from repro.core.llm.client import (
    LLMClient,
    LLMError,
    LLMParseError,
    LLMRequest,
    LLMResponse,
    complete_json,
    extract_json,
)
from repro.core.llm.simulated import SimulatedLLM
from repro.core.llm.scripted import ScriptedLLM

__all__ = [
    "LLMClient",
    "LLMError",
    "LLMParseError",
    "LLMRequest",
    "LLMResponse",
    "complete_json",
    "extract_json",
    "SimulatedLLM",
    "ScriptedLLM",
]
