"""The deterministic expert-system LLM backend.

``SimulatedLLM`` honours the exact same interface a hosted model would: it
receives a prompt *string*, locates the delimited sections the agent
embedded (query, registry rendering, context payloads), applies the
measurement-expertise rules in :mod:`repro.core.llm.knowledge`, and returns
its answer as a fenced JSON completion.  Nothing outside the prompt text
reaches the backend — the substitution for Claude Sonnet 4 is contained
entirely behind the ``LLMClient`` seam.
"""

from __future__ import annotations

import json
import threading
import time

from repro.core.llm import knowledge
from repro.core.llm.client import LLMRequest, LLMResponse
from repro.core.llm.prompts import section, section_json


class SimulatedLLM:
    """Deterministic offline backend for the four ArachNet agents."""

    model_name = "simulated-expert-v1"

    def __init__(self, fail_first_attempts: int = 0):
        # ``fail_first_attempts`` deliberately garbles early completions so
        # tests can exercise the agents' parse-retry loop.
        self._fail_first_attempts = fail_first_attempts
        self._calls = 0
        # The serve worker pool drives one backend from many threads; the
        # counter must not under-count (it feeds cache-savings accounting).
        self._count_lock = threading.Lock()

    @property
    def call_count(self) -> int:
        return self._calls

    def complete(self, request: LLMRequest) -> LLMResponse:
        with self._count_lock:
            self._calls += 1
            calls = self._calls
        if calls <= self._fail_first_attempts:
            return LLMResponse(text="I think the answer might involve cables…",
                               model=self.model_name)
        handler = {
            "querymind": self._querymind,
            "workflowscout": self._workflowscout,
            "solutionweaver": self._solutionweaver,
            "registrycurator": self._registrycurator,
        }.get(request.agent)
        if handler is None:
            raise ValueError(f"unknown agent {request.agent!r}")
        payload = handler(request.user)
        text = "```json\n" + json.dumps(payload, indent=1) + "\n```"
        return LLMResponse(text=text, model=self.model_name)

    # -- per-agent reasoning ---------------------------------------------------

    def _registry_index(self, prompt: str) -> dict:
        rows = section_json(prompt, "REGISTRY")
        return {row["name"]: row for row in rows}

    def _querymind(self, prompt: str) -> dict:
        query = section(prompt, "QUERY").strip()
        registry_index = self._registry_index(prompt)
        data_context = section_json(prompt, "DATA CONTEXT")
        intent = knowledge.detect_intent(query)
        entities = knowledge.extract_entities(query, data_context)
        return knowledge.decompose(intent, query, entities, registry_index)

    def _workflowscout(self, prompt: str) -> dict:
        analysis = section_json(prompt, "PROBLEM ANALYSIS")
        registry_index = self._registry_index(prompt)
        return knowledge.design(analysis, registry_index)

    def _solutionweaver(self, prompt: str) -> dict:
        design_payload = section_json(prompt, "WORKFLOW DESIGN")
        intent = design_payload.get("intent", "")
        if not intent:
            # The design payload carries the analysis intent through a
            # top-level hint the agent includes; fall back to inspecting
            # step targets when absent.
            steps = (
                design_payload.get("workflow", {}).get("steps")
                or design_payload.get("chosen", {}).get("steps")
                or []
            )
            targets = {s["target"] for s in steps}
            if "synthesize_forensic_evidence" in targets:
                intent = "latency_forensics"
            elif "build_cascade_timeline" in targets:
                intent = "cascading_failure"
            elif "split_events_by_kind" in targets:
                intent = "multi_disaster_impact"
            elif "aggregate_impact_by_country" in targets or any(
                t.startswith("xaminer.country_impact") for t in targets
            ):
                intent = "cable_failure_impact"
            else:
                intent = "generic_impact"
        return knowledge.plan_implementation(design_payload, intent)

    def _registrycurator(self, prompt: str) -> dict:
        design_payload = section_json(prompt, "EXECUTED WORKFLOW")
        execution_payload = section_json(prompt, "EXECUTION OUTCOME")
        return knowledge.curator_candidates(design_payload, execution_payload)


class SimulatedHostedLLM(SimulatedLLM):
    """The simulated expert behind a modeled network round trip.

    A hosted model's completion latency — not local compute — dominates
    pipeline wall time in the real deployment, and it is what a thread-based
    worker pool overlaps.  This backend sleeps ``latency_s`` per completion
    so serve-layer throughput experiments exercise the same bottleneck
    profile without network access.
    """

    model_name = "simulated-expert-v1-hosted"

    def __init__(self, latency_s: float = 0.05, fail_first_attempts: int = 0):
        super().__init__(fail_first_attempts=fail_first_attempts)
        if latency_s < 0:
            raise ValueError("latency_s must be >= 0")
        self.latency_s = latency_s

    def complete(self, request: LLMRequest) -> LLMResponse:
        if self.latency_s:
            time.sleep(self.latency_s)
        return super().complete(request)
