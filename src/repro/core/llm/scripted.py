"""Scripted LLM backend: canned completions for tests.

Feed it a list of reply strings; each ``complete`` call pops the next one.
Useful for exercising parse-retry behaviour (malformed replies), agent
validation failures (well-formed but wrong JSON), and recording/replay
scenarios.
"""

from __future__ import annotations

from repro.core.llm.client import LLMError, LLMRequest, LLMResponse


class ScriptedLLM:
    """Replays a fixed sequence of completions."""

    def __init__(self, replies: list[str]):
        self._replies = list(replies)
        self._log: list[LLMRequest] = []

    @property
    def requests(self) -> list[LLMRequest]:
        """Every request received, for assertions on prompt construction."""
        return list(self._log)

    @property
    def remaining(self) -> int:
        return len(self._replies)

    def complete(self, request: LLMRequest) -> LLMResponse:
        self._log.append(request)
        if not self._replies:
            raise LLMError("scripted backend exhausted its replies")
        return LLMResponse(text=self._replies.pop(0), model="scripted")
