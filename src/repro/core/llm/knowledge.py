"""The measurement-expertise knowledge base behind the simulated LLM.

The paper's prompt engineering "embedded the generalized reasoning a human
expert would naturally apply" (§4).  This module *is* that embedded
reasoning, written as deterministic rules: intent recognition, entity
grounding, per-intent problem decomposition, and per-intent workflow design
over whatever registry happens to be available.  The design functions
degrade gracefully: when a preferred capability is missing (as in case
study 1, where Xaminer is withheld) they fall back to composing the analysis
from lower-level functions plus inline transforms — the "direct processing
pipeline" behaviour the paper reports.
"""

from __future__ import annotations

import re

# ---------------------------------------------------------------------------
# Intent recognition
# ---------------------------------------------------------------------------

INTENTS = (
    "cascading_failure",
    "latency_forensics",
    "multi_disaster_impact",
    "cable_failure_impact",
    "risk_assessment",
    "generic_impact",
)

_INTENT_RULES: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("cascading_failure", (r"cascad", r"knock[- ]on", r"ripple effect")),
    (
        "latency_forensics",
        (
            r"latency .*(increase|spike|jump|anomal)",
            r"(increase|spike) in latency",
            r"root cause",
            r"caused this",
            r"determine if .* caused",
            r"identify the specific",
        ),
    ),
    (
        "multi_disaster_impact",
        (
            r"earthquake.*hurricane",
            r"hurricane.*earthquake",
            r"(severe|major) (disasters|events)",
            r"natural disaster",
        ),
    ),
    (
        "risk_assessment",
        (r"\brisk\b", r"how exposed", r"dependenc(y|e) profile", r"single point of failure"),
    ),
    (
        "cable_failure_impact",
        (
            r"cable (failure|cut|fault|break)",
            r"impact .*cable",
            r"losing .*cable",
            r"cable .*(outage|down)",
        ),
    ),
)


def detect_intent(query: str) -> str:
    """Classify a query into one of the known intents (rule order matters)."""
    lowered = query.lower()
    for intent, patterns in _INTENT_RULES:
        for pattern in patterns:
            if re.search(pattern, lowered):
                return intent
    return "generic_impact"


# ---------------------------------------------------------------------------
# Entity extraction
# ---------------------------------------------------------------------------

_WORD_NUMBERS = {
    "one": 1, "two": 2, "three": 3, "four": 4, "five": 5,
    "six": 6, "seven": 7, "eight": 8, "nine": 9, "ten": 10,
}

_REGION_WORDS = {
    "europe": "europe",
    "european": "europe",
    "asia": "asia",
    "asian": "asia",
    "middle east": "middle_east",
    "africa": "africa",
    "african": "africa",
    "north america": "north_america",
    "american": "north_america",
    "south america": "south_america",
    "oceania": "oceania",
}


def extract_entities(query: str, data_context: dict) -> dict:
    """Ground query phrases against the deployment's known-world facts.

    ``data_context`` carries the grounding material: known cable names,
    region names and the country→region map.  Extraction is conservative —
    only names that actually exist in the context are emitted.
    """
    lowered = query.lower()
    entities: dict = {}

    known_cables = data_context.get("cable_names", [])
    mentioned = [name for name in known_cables if name.lower() in lowered]
    if mentioned:
        entities["cable_names"] = mentioned

    regions: list[str] = []
    for phrase, region in _REGION_WORDS.items():
        if phrase in lowered and region not in regions:
            regions.append(region)
    if regions:
        entities["regions"] = regions

    pct = re.search(r"(\d+(?:\.\d+)?)\s*%", lowered)
    if pct:
        entities["failure_probability"] = float(pct.group(1)) / 100.0

    days_ago = re.search(r"(\w+)\s+days?\s+ago", lowered)
    if days_ago:
        token = days_ago.group(1)
        days = _WORD_NUMBERS.get(token)
        if days is None and token.isdigit():
            days = int(token)
        if days is not None:
            entities["days_since_onset"] = days

    kinds = []
    if "earthquake" in lowered:
        kinds.append("earthquake")
    if "hurricane" in lowered or "typhoon" in lowered:
        kinds.append("hurricane")
    if kinds:
        entities["disaster_kinds"] = kinds

    if "severe" in lowered or "major" in lowered:
        entities["severity_filter"] = "severe"

    if "country level" in lowered or "country-level" in lowered or "per country" in lowered:
        entities["aggregation_level"] = "country"
    elif re.search(r"\bas[- ]level\b", lowered) or "autonomous system" in lowered:
        entities["aggregation_level"] = "as"

    if "global" in lowered or "worldwide" in lowered:
        entities["scope"] = "global"

    if "region_country_map" in data_context:
        entities["region_country_map"] = data_context["region_country_map"]
    return entities


# ---------------------------------------------------------------------------
# Decomposition templates
# ---------------------------------------------------------------------------


def _sp(sp_id, title, description, kind, capabilities, depends_on=()):
    return {
        "id": sp_id,
        "title": title,
        "description": description,
        "kind": kind,
        "required_capabilities": list(capabilities),
        "depends_on": list(depends_on),
    }


def _constraint(kind, description, blocking=False):
    return {"kind": kind, "description": description, "blocking": blocking}


def _risk(description, likelihood="medium", mitigation=""):
    return {"description": description, "likelihood": likelihood, "mitigation": mitigation}


def _criterion(description, metric=""):
    return {"description": description, "metric": metric}


def decompose(intent: str, query: str, entities: dict, registry_index: dict) -> dict:
    """Build the full QueryMind output payload for one query."""
    builder = _DECOMPOSERS.get(intent, _decompose_generic)
    payload = builder(query, entities, registry_index)
    payload["intent"] = intent
    payload["entities"] = entities
    return payload


def _availability_constraints(registry_index: dict, wanted_tags: list[str]) -> list[dict]:
    """Flag capability gaps the registry cannot cover."""
    have: set[str] = set()
    for entry in registry_index.values():
        have.update(entry.get("capabilities", []))
    constraints = []
    for tag in wanted_tags:
        if tag not in have:
            constraints.append(
                _constraint(
                    "technical",
                    f"no registry function provides capability {tag!r}; "
                    "the workflow must derive it from lower-level functions",
                )
            )
    return constraints


def _decompose_cable_failure(query: str, entities: dict, registry_index: dict) -> dict:
    cable = (entities.get("cable_names") or ["<unspecified>"])[0]
    level = entities.get("aggregation_level", "country")
    sub_problems = [
        _sp(
            "sp1",
            "Resolve cable and its dependency set",
            f"Identify {cable}, the IP links riding it, affected addresses and ASes.",
            "mapping",
            ["cable_dependencies", "cross_layer_mapping"],
        ),
        _sp(
            "sp2",
            "Geolocate affected infrastructure",
            "Map affected IPs and links to countries for spatial attribution.",
            "mapping",
            ["geolocation", "geographic_mapping"],
            depends_on=["sp1"],
        ),
        _sp(
            "sp3",
            f"Aggregate impact at {level} level",
            f"Compute per-{level} impact metrics (IPs, links, ASes, capacity).",
            "aggregation",
            ["impact_analysis", f"{level}_aggregation"],
            depends_on=["sp1", "sp2"],
        ),
        _sp(
            "sp4",
            "Assemble impact report",
            "Ranked impacts with per-metric breakdowns and caveats.",
            "synthesis",
            ["report_combination"],
            depends_on=["sp3"],
        ),
    ]
    constraints = [
        _constraint("data", "cross-layer mapping confidence is probabilistic; "
                            "parallel cable systems can be ambiguous"),
        _constraint(
            "methodological",
            "impact counts double-attribute links touching two countries; "
            "normalised fractions avoid inflating small countries",
        ),
    ]
    constraints += _availability_constraints(
        registry_index, ["impact_analysis", "country_aggregation"]
    )
    if not entities.get("cable_names"):
        constraints.append(
            _constraint("data", "query names no cable known to the registry", blocking=True)
        )
    risks = [
        _risk("geolocation noise shifts border-adjacent endpoints between countries",
              "medium", "carry uncertainty_km into the aggregation and report it"),
        _risk("dependency extraction over-attributes links on ambiguous corridors",
              "medium", "use candidate-set membership with a relative-score threshold"),
    ]
    criteria = [
        _criterion("every affected country appears with normalised impact metrics",
                   "country ranking non-empty and scores within [0,1]"),
        _criterion("impact derivation is explainable back to specific links",
                   "link ids traceable from report"),
    ]
    return {
        "complexity": "moderate",
        "classification": {"spatial": f"{level}-level", "temporal": "static snapshot",
                           "causal": "single-cause failure"},
        "sub_problems": sub_problems,
        "constraints": constraints,
        "risks": risks,
        "success_criteria": criteria,
    }


def _decompose_multi_disaster(query: str, entities: dict, registry_index: dict) -> dict:
    kinds = entities.get("disaster_kinds", ["earthquake", "hurricane"])
    prob = entities.get("failure_probability", 1.0)
    sub_problems = [
        _sp(
            "sp1",
            "Enumerate qualifying disaster events",
            f"Collect {'severe ' if entities.get('severity_filter') else ''}"
            f"{' and '.join(kinds)} scenarios with footprints.",
            "catalog",
            ["disaster_catalog"],
        ),
        _sp(
            "sp2",
            "Process each event with probabilistic failures",
            f"Apply failure probability {prob} per event footprint; compute impact.",
            "impact",
            ["event_processing", "failure_simulation", "impact_analysis"],
            depends_on=["sp1"],
        ),
        _sp(
            "sp3",
            "Combine per-event results into global metrics",
            "Merge rankings and failure sets across all events and kinds.",
            "synthesis",
            ["report_combination"],
            depends_on=["sp2"],
        ),
    ]
    constraints = [
        _constraint("methodological",
                    "events are processed independently; compound (overlapping) "
                    "footprints are combined additively"),
        _constraint("technical",
                    "the event-processing function takes one event per call; "
                    "multi-event analysis iterates rather than integrating new frameworks"),
    ]
    risks = [
        _risk("sampled failures under-represent tail outcomes at low probability",
              "medium", "fix seeds per event and report per-event failure draws"),
        _risk("over-engineering: pulling in extra frameworks adds integration "
              "surface without improving the estimate", "low",
              "scope the solution to the single versatile function"),
    ]
    criteria = [
        _criterion("every severe event contributes a processed impact report",
                   "reports count equals severe event count"),
        _criterion("global ranking merges all event kinds", "combined ranking present"),
    ]
    return {
        "complexity": "moderate",
        "classification": {"spatial": "global", "temporal": "scenario sweep",
                           "causal": "independent multi-cause"},
        "sub_problems": sub_problems,
        "constraints": constraints,
        "risks": risks,
        "success_criteria": criteria,
    }


def _decompose_cascading(query: str, entities: dict, registry_index: dict) -> dict:
    regions = entities.get("regions", ["europe", "asia"])
    region_label = " and ".join(regions)
    sub_problems = [
        _sp("sp1", "Scope corridor infrastructure",
            f"Identify submarine cables connecting {region_label} and the IP links on them.",
            "mapping", ["cable_inventory", "cross_layer_mapping"]),
        _sp("sp2", "Primary impact analysis",
            "Per-cable failure impact for the scoped corridor cables.",
            "impact", ["event_processing", "impact_analysis"], depends_on=["sp1"]),
        _sp("sp3", "Cascade propagation modeling",
            "Trace load redistribution and secondary failures across rounds "
            "using dependency graphs.",
            "cascade", ["cascade_modeling", "failure_propagation"], depends_on=["sp1", "sp2"]),
        _sp("sp4", "Temporal evolution analysis",
            "Track how failures manifest in routing (BGP) and performance "
            "(traceroute) over the observation window.",
            "temporal", ["bgp_updates", "latency_measurement"], depends_on=["sp1"]),
        _sp("sp5", "Cross-layer synthesis",
            "Integrate impact, cascade and temporal outputs into a unified "
            "cable/IP/AS timeline.",
            "synthesis", ["report_combination"], depends_on=["sp2", "sp3", "sp4"]),
    ]
    constraints = [
        _constraint("methodological", "cascade load model is an approximation; "
                                      "report rounds and thresholds explicitly"),
        _constraint("data", "BGP and traceroute views observe different layers; "
                            "timestamps must be aligned before correlation"),
        _constraint("technical", "multi-framework outputs use heterogeneous "
                                 "formats; adapters required at every boundary"),
    ]
    risks = [
        _risk("cascade model overestimates propagation when parallel capacity "
              "is underrepresented", "medium", "bound rounds; report shed load"),
        _risk("temporal correlation confounds background churn with "
              "failure-driven updates", "medium", "use robust baselines"),
    ]
    criteria = [
        _criterion("timeline spans cable, IP and AS layers", "all three layers present"),
        _criterion("each secondary failure is attributed to a propagation round",
                   "round index on every cascade event"),
    ]
    return {
        "complexity": "complex",
        "classification": {"spatial": region_label, "temporal": "multi-round evolution",
                           "causal": "cascading multi-order"},
        "sub_problems": sub_problems,
        "constraints": constraints,
        "risks": risks,
        "success_criteria": criteria,
    }


def _decompose_forensics(query: str, entities: dict, registry_index: dict) -> dict:
    days = entities.get("days_since_onset", 3)
    regions = entities.get("regions", ["europe", "asia"])
    sub_problems = [
        _sp("sp1", "Quantify the latency anomaly",
            f"Collect {regions[0]}→{regions[-1]} latency over a window covering "
            f"{days} days before and after the reported onset; detect level "
            "shifts with significance testing.",
            "statistical", ["latency_measurement", "latency_anomaly_detection"]),
        _sp("sp2", "Identify suspect infrastructure",
            "Map anomalous paths to the submarine cables they rode; score "
            "cables by likelihood of involvement.",
            "scoring", ["cross_layer_mapping", "infrastructure_correlation"],
            depends_on=["sp1"]),
        _sp("sp3", "Validate against routing data",
            "Check BGP for temporally correlated withdrawal/update bursts as "
            "independent confirmation.",
            "validation", ["bgp_updates", "routing_anomaly_detection",
                           "temporal_correlation"],
            depends_on=["sp1"]),
        _sp("sp4", "Establish causation and identify the cable",
            "Synthesize statistical, infrastructure and routing evidence into "
            "a confidence-scored verdict naming the specific cable.",
            "synthesis", ["report_combination"], depends_on=["sp1", "sp2", "sp3"]),
    ]
    constraints = [
        _constraint("data", "only measurements within the retention window are "
                            "available; the baseline must come from the same window"),
        _constraint("methodological",
                    "correlation alone does not establish causation; require "
                    "independent evidence strands to agree in time"),
        _constraint("methodological",
                    "significance testing must precede any causal claim"),
    ]
    risks = [
        _risk("an unrelated routing event inside the window could masquerade "
              "as confirmation", "medium",
              "require the BGP burst to align with the latency onset, not "
              "merely exist"),
        _risk("parallel cables on the corridor dilute suspect scoring", "medium",
              "score with mapping candidate weights and report the margin"),
    ]
    criteria = [
        _criterion("anomaly onset estimated with significance assessment",
                   "p-value below alpha on before/after comparison"),
        _criterion("a single cable is named with a confidence score and margin",
                   "top suspect + score gap reported"),
        _criterion("three independent evidence strands synthesized",
                   "statistical, infrastructure, routing all present"),
    ]
    return {
        "complexity": "complex",
        "classification": {"spatial": "->".join(regions), "temporal":
                           f"forensic window, onset ~{days} days ago",
                           "causal": "causation establishment"},
        "sub_problems": sub_problems,
        "constraints": constraints,
        "risks": risks,
        "success_criteria": criteria,
    }


def _decompose_risk(query: str, entities: dict, registry_index: dict) -> dict:
    sub_problems = [
        _sp("sp1", "Build exposure profile",
            "Quantify cable dependency per country: capacity shares, "
            "concentration, dominant systems.",
            "aggregation", ["risk_assessment", "exposure_analysis"]),
        _sp("sp2", "Report", "Ranked exposure with structural explanations.",
            "synthesis", ["report_combination"], depends_on=["sp1"]),
    ]
    return {
        "complexity": "simple",
        "classification": {"spatial": "per-country", "temporal": "static",
                           "causal": "structural"},
        "sub_problems": sub_problems,
        "constraints": [_constraint("methodological",
                                    "structural exposure is not outage prediction")],
        "risks": [_risk("capacity data may lag real provisioning", "low")],
        "success_criteria": [_criterion("every coastal country profiled",
                                        "profiles cover all cable-landing countries")],
    }


def _decompose_generic(query: str, entities: dict, registry_index: dict) -> dict:
    sub_problems = [
        _sp("sp1", "Collect relevant measurements",
            "Gather the measurement data the query implies.",
            "temporal", ["latency_measurement", "bgp_updates"]),
        _sp("sp2", "Analyze", "Apply anomaly detection / impact analysis as applicable.",
            "impact", ["impact_analysis", "anomaly_detection"], depends_on=["sp1"]),
        _sp("sp3", "Report", "Summarize findings.", "synthesis",
            ["report_combination"], depends_on=["sp2"]),
    ]
    return {
        "complexity": "simple",
        "classification": {"spatial": "unspecified", "temporal": "unspecified",
                           "causal": "unspecified"},
        "sub_problems": sub_problems,
        "constraints": [_constraint("data", "query underspecifies scope; defaults applied")],
        "risks": [_risk("intent ambiguity may misdirect the workflow", "high",
                        "expert-mode review recommended")],
        "success_criteria": [_criterion("a structured report is produced")],
    }


_DECOMPOSERS = {
    "cable_failure_impact": _decompose_cable_failure,
    "multi_disaster_impact": _decompose_multi_disaster,
    "cascading_failure": _decompose_cascading,
    "latency_forensics": _decompose_forensics,
    "risk_assessment": _decompose_risk,
    "generic_impact": _decompose_generic,
}


# ---------------------------------------------------------------------------
# Workflow design
# ---------------------------------------------------------------------------


def find_entry(registry_index: dict, tags: list[str], prefer: str | None = None) -> str | None:
    """Best-matching registry entry name for a capability tag set."""
    if prefer is not None and prefer in registry_index:
        return prefer
    best_name = None
    best_score = 0
    for name in sorted(registry_index):
        capabilities = set(registry_index[name].get("capabilities", []))
        score = sum(1 for tag in tags if tag in capabilities)
        if score > best_score:
            best_score = score
            best_name = name
    return best_name


def _step(step_id, step_type, target, inputs, sub_problem_id="", note="", foreach=""):
    return {
        "id": step_id,
        "step_type": step_type,
        "target": target,
        "inputs": inputs,
        "sub_problem_id": sub_problem_id,
        "note": note,
        "foreach": foreach,
    }


def design(analysis: dict, registry_index: dict) -> dict:
    """Build the full WorkflowScout output payload for one analysis."""
    intent = analysis.get("intent", "generic_impact")
    builder = _DESIGNERS.get(intent, _design_generic)
    return builder(analysis, registry_index)


def _design_cable_failure(analysis: dict, registry_index: dict) -> dict:
    entities = analysis.get("entities", {})
    cable = (entities.get("cable_names") or ["SeaMeWe-5"])[0]
    steps = [
        _step("s1", "registry", "nautilus.get_cable_info",
              {"cable_name": "workflow:cable_name"}, "sp1",
              note="validates the cable name and pins metadata"),
        _step("s2", "registry", "nautilus.get_cable_dependencies",
              {"cable_name": "workflow:cable_name"}, "sp1"),
    ]
    impact_entry = find_entry(registry_index, ["impact_analysis", "country_aggregation"],
                              prefer="xaminer.country_impact")
    direct_available = impact_entry is not None and impact_entry.startswith("xaminer.")
    if direct_available:
        steps += [
            _step("s3", "registry", impact_entry,
                  {"failed_link_ids": "step:s2.link_ids"}, "sp3"),
            _step("s4", "transform", "build_report",
                  {"ranking": "step:s3", "dependencies": "step:s2",
                   "title": 'const:"Country-level impact of cable failure"'},
                  "sp4"),
        ]
        mode = "direct"
        rationale = (
            "A dedicated country-impact function exists; dependency extraction "
            "feeds it directly. No alternative wiring improves on this."
        )
        alternatives = []
    else:
        # Case study 1 setup: Xaminer withheld. Derive the impact pipeline
        # from Nautilus primitives plus inline aggregation transforms.  The
        # full cross-layer map supplies per-country denominators so that
        # impact is normalised per country, as resilience analyses require.
        steps += [
            _step("s3", "registry", "nautilus.geolocate_ips",
                  {"ips": "step:s2.ips"}, "sp2"),
            _step("s4", "registry", "nautilus.map_ip_links_to_cables", {}, "sp2",
                  note="full mapping provides per-country infrastructure totals"),
            _step("s5", "transform", "aggregate_impact_by_country",
                  {"dependencies": "step:s2", "locations": "step:s3",
                   "all_links": "step:s4"}, "sp3",
                  note="direct processing pipeline replacing the missing "
                       "impact framework"),
            _step("s6", "transform", "rank_countries_by_impact",
                  {"impacts": "step:s5"}, "sp3"),
            _step("s7", "transform", "build_report",
                  {"ranking": "step:s6", "dependencies": "step:s2",
                   "title": 'const:"Country-level impact of cable failure"'},
                  "sp4"),
        ]
        mode = "comparative"
        rationale = (
            "No registry function aggregates impact at country level, so the "
            "workflow derives it: dependency extraction → geolocation → "
            "direct per-country aggregation of affected links, IPs and "
            "capacity, normalised by each country's total mapped "
            "infrastructure."
        )
        alternatives = [
            {
                "rationale": "Map every submarine link first, then filter to "
                             "the target cable before aggregating.",
                "tradeoffs": {"data_requirements": "full-world mapping",
                              "computational_complexity": "higher",
                              "reliability": "equal"},
                "steps": [],
            }
        ]
    return {
        "exploration_mode": mode,
        "workflow": {"steps": steps},
        "workflow_inputs": {"cable_name": "human name of the failed cable"},
        "param_defaults": {"cable_name": cable},
        "rationale": rationale,
        "tradeoffs": {"data_requirements": "single-cable dependency set",
                      "computational_complexity": "low",
                      "reliability": "bounded by mapping confidence"},
        "alternatives": alternatives,
    }


def _design_multi_disaster(analysis: dict, registry_index: dict) -> dict:
    entities = analysis.get("entities", {})
    prob = entities.get("failure_probability", 1.0)
    severe = entities.get("severity_filter") == "severe"
    kinds = entities.get("disaster_kinds", ["earthquake", "hurricane"])
    steps = [
        _step("s1", "registry", "xaminer.list_disasters",
              {"severe_only": f"const:{str(severe).lower()}"}, "sp1"),
        _step("s2", "transform", "split_events_by_kind",
              {"events": "step:s1"}, "sp1"),
    ]
    collect_steps = []
    for i, kind in enumerate(kinds):
        sid = f"s{3 + i}"
        steps.append(
            _step(sid, "registry", "xaminer.process_event",
                  {"event_spec": "item",
                   "failure_probability": "workflow:failure_probability",
                   "seed": "workflow:seed"},
                  "sp2", foreach=f"step:s2.{kind}",
                  note=f"one call per {kind} event")
        )
        collect_steps.append(sid)
    combine_inputs = {"reports_a": f"step:{collect_steps[0]}"}
    if len(collect_steps) > 1:
        combine_inputs["reports_b"] = f"step:{collect_steps[1]}"
    next_id = 3 + len(kinds)
    steps.append(_step(f"s{next_id}", "transform", "combine_reports",
                       combine_inputs, "sp3"))
    steps.append(_step(f"s{next_id + 1}", "transform", "build_report",
                       {"ranking": f"step:s{next_id}",
                        "dependencies": f"step:s{next_id}",
                        "title": 'const:"Global multi-disaster impact"'},
                       "sp3"))
    return {
        "exploration_mode": "comparative",
        "workflow": {"steps": steps},
        "workflow_inputs": {"failure_probability": "per-event infrastructure "
                                                   "failure probability",
                            "seed": "failure sampling seed"},
        "param_defaults": {"failure_probability": prob, "seed": 0},
        "rationale": (
            "The event-processing function is versatile enough to handle "
            "every disaster kind; the multi-disaster requirement needs "
            "iteration over events, not integration of additional "
            "frameworks. Cross-framework alternatives were considered and "
            "rejected as over-engineering."
        ),
        "tradeoffs": {"data_requirements": "disaster catalog only",
                      "computational_complexity": "linear in event count",
                      "reliability": "high — single well-tested function"},
        "alternatives": [
            {
                "rationale": "Cross-framework integration: per-event cable "
                             "mapping via the cartography framework, then "
                             "custom impact synthesis.",
                "tradeoffs": {"data_requirements": "much larger",
                              "computational_complexity": "high",
                              "reliability": "lower — more integration surface"},
                "steps": [],
            }
        ],
    }


def _design_cascading(analysis: dict, registry_index: dict) -> dict:
    entities = analysis.get("entities", {})
    regions = entities.get("regions", ["europe", "asia"])
    region_map = entities.get("region_country_map", {})
    import json as _json

    steps = [
        _step("s1", "registry", "nautilus.list_cables", {}, "sp1"),
        _step("s2", "transform", "filter_cables_by_regions",
              {"cables": "step:s1",
               "region_a": "workflow:src_region",
               "region_b": "workflow:dst_region",
               "region_country_map": "const:" + _json.dumps(region_map)},
              "sp1"),
        _step("s3", "registry", "nautilus.map_ip_links_to_cables", {}, "sp1"),
        _step("s4", "transform", "derive_initial_failures",
              {"mappings": "step:s3", "scoped": "step:s2"}, "sp1"),
        _step("s5", "registry", "xaminer.process_event",
              {"event_spec": "item",
               "failure_probability": "const:1.0",
               "seed": "workflow:seed"},
              "sp2", foreach="step:s4.cable_events"),
        _step("s6", "transform", "combine_reports", {"reports_a": "step:s5"}, "sp2"),
        _step("s7", "transform", "propagate_cascade_rounds",
              {"initial": "step:s4", "mappings": "step:s3",
               "impact": "step:s6"}, "sp3",
              note="graph propagation over shared-AS bridges between cables"),
        _step("s8", "registry", "bgp.fetch_updates",
              {"window_start": "workflow:window_start",
               "window_end": "workflow:window_end"}, "sp4"),
        _step("s9", "registry", "bgp.summarize_path_changes",
              {"update_rows": "step:s8"}, "sp4"),
        _step("s10", "registry", "traceroute.run_campaign",
              {"src_region": "workflow:src_region",
               "dst_region": "workflow:dst_region",
               "window_start": "workflow:window_start",
               "window_end": "workflow:window_end",
               "interval_s": "const:21600"}, "sp4"),
        _step("s11", "registry", "traceroute.latency_series",
              {"measurement_rows": "step:s10"}, "sp4"),
        _step("s12", "transform", "build_cascade_timeline",
              {"impact": "step:s6", "cascade": "step:s7",
               "path_changes": "step:s9", "latency_series": "step:s11",
               "scoped": "step:s2"}, "sp5"),
    ]
    return {
        "exploration_mode": "comparative",
        "workflow": {"steps": steps},
        "workflow_inputs": {
            "src_region": "first corridor region",
            "dst_region": "second corridor region",
            "window_start": "observation window start (s)",
            "window_end": "observation window end (s)",
            "seed": "failure sampling seed",
        },
        "param_defaults": {"src_region": regions[0],
                           "dst_region": regions[-1] if len(regions) > 1 else "asia",
                           "seed": 0},
        "rationale": (
            "Four frameworks integrate: cartography scopes the corridor and "
            "maps links; resilience analysis quantifies primary impact per "
            "cable; a generated graph algorithm propagates the cascade over "
            "shared-AS bridges; BGP and traceroute track temporal evolution; "
            "a synthesis stage unifies everything into one cross-layer "
            "timeline."
        ),
        "tradeoffs": {"data_requirements": "corridor-wide, multi-layer",
                      "computational_complexity": "high (bounded rounds)",
                      "reliability": "depends on adapter correctness at four "
                                     "framework boundaries"},
        "alternatives": [
            {
                "rationale": "Impact-only analysis without cascade modeling "
                             "(first-order effects only).",
                "tradeoffs": {"data_requirements": "lower",
                              "computational_complexity": "low",
                              "reliability": "misses the question being asked"},
                "steps": [],
            },
            {
                "rationale": "Full dynamic simulation per failure combination "
                             "(exponential sweep).",
                "tradeoffs": {"data_requirements": "same",
                              "computational_complexity": "exponential",
                              "reliability": "intractable"},
                "steps": [],
            },
        ],
    }


def _design_forensics(analysis: dict, registry_index: dict) -> dict:
    entities = analysis.get("entities", {})
    regions = entities.get("regions", ["europe", "asia"])
    steps = [
        _step("s1", "registry", "traceroute.run_campaign",
              {"src_region": "workflow:src_region",
               "dst_region": "workflow:dst_region",
               "window_start": "workflow:window_start",
               "window_end": "workflow:window_end",
               "interval_s": "const:3600"}, "sp1"),
        _step("s2", "registry", "traceroute.latency_series",
              {"measurement_rows": "step:s1", "group_by": 'const:"pair"'}, "sp1"),
        _step("s3", "registry", "traceroute.detect_latency_anomalies",
              {"series_rows": "step:s2"}, "sp1"),
        _step("s4", "transform", "summarize_latency_anomalies",
              {"anomalies": "step:s3"}, "sp1",
              note="baseline vs elevated medians, onset consensus, significance"),
        _step("s5", "registry", "nautilus.map_ip_links_to_cables", {}, "sp2"),
        _step("s6", "transform", "score_suspect_cables",
              {"anomaly_summary": "step:s4", "measurements": "step:s1",
               "mappings": "step:s5"}, "sp2",
              note="vanished-link evidence weighted by mapping confidence"),
        _step("s7", "registry", "bgp.fetch_updates",
              {"window_start": "workflow:window_start",
               "window_end": "workflow:window_end"}, "sp3"),
        _step("s8", "registry", "bgp.detect_routing_anomalies",
              {"update_rows": "step:s7",
               "window_start": "workflow:window_start",
               "window_end": "workflow:window_end"}, "sp3"),
        _step("s9", "registry", "bgp.correlate_updates_with_window",
              {"update_rows": "step:s7",
               "anomaly_start": "step:s4.onset_estimate",
               "anomaly_end": "step:s4.onset_end"}, "sp3"),
        _step("s10", "transform", "synthesize_forensic_evidence",
              {"latency_summary": "step:s4", "suspects": "step:s6",
               "bgp_anomalies": "step:s8", "bgp_correlation": "step:s9"},
              "sp4"),
    ]
    return {
        "exploration_mode": "comparative",
        "workflow": {"steps": steps},
        "workflow_inputs": {
            "src_region": "probe region", "dst_region": "target region",
            "window_start": "forensic window start (s)",
            "window_end": "forensic window end (s)",
        },
        "param_defaults": {"src_region": regions[0],
                           "dst_region": regions[-1] if len(regions) > 1 else "asia"},
        "rationale": (
            "Three independent evidence strands: statistical anomaly "
            "detection on latency series establishes the effect; "
            "cross-layer mapping plus vanished-link scoring identifies the "
            "suspect cable; BGP correlation independently confirms the "
            "timing. Synthesis requires agreement before claiming causation."
        ),
        "tradeoffs": {"data_requirements": "full forensic window, two feeds",
                      "computational_complexity": "moderate",
                      "reliability": "high — strands are independent"},
        "alternatives": [
            {
                "rationale": "Latency-only attribution (skip BGP validation).",
                "tradeoffs": {"data_requirements": "lower",
                              "computational_complexity": "lower",
                              "reliability": "cannot establish causation"},
                "steps": [],
            }
        ],
    }


def _design_risk(analysis: dict, registry_index: dict) -> dict:
    steps = [
        _step("s1", "registry", "xaminer.risk_profile",
              {"country_code": "workflow:country_code"}, "sp1"),
        _step("s2", "transform", "build_report",
              {"ranking": "step:s1", "dependencies": "step:s1",
               "title": 'const:"Cable dependency risk profile"'}, "sp2"),
    ]
    return {
        "exploration_mode": "direct",
        "workflow": {"steps": steps},
        "workflow_inputs": {"country_code": "ISO-2 country or null for global"},
        "param_defaults": {"country_code": None},
        "rationale": "A single registry function answers structural exposure.",
        "tradeoffs": {"data_requirements": "static world view",
                      "computational_complexity": "trivial",
                      "reliability": "high"},
        "alternatives": [],
    }


def _design_generic(analysis: dict, registry_index: dict) -> dict:
    steps = [
        _step("s1", "registry", "traceroute.run_campaign",
              {"src_region": "workflow:src_region",
               "dst_region": "workflow:dst_region",
               "window_start": "workflow:window_start",
               "window_end": "workflow:window_end",
               "interval_s": "const:21600"}, "sp1"),
        _step("s2", "registry", "traceroute.latency_series",
              {"measurement_rows": "step:s1"}, "sp2"),
        _step("s3", "registry", "traceroute.detect_latency_anomalies",
              {"series_rows": "step:s2"}, "sp2"),
        _step("s4", "transform", "build_report",
              {"ranking": "step:s3", "dependencies": "step:s2",
               "title": 'const:"Measurement summary"'}, "sp3"),
    ]
    return {
        "exploration_mode": "direct",
        "workflow": {"steps": steps},
        "workflow_inputs": {"src_region": "source region",
                            "dst_region": "destination region",
                            "window_start": "window start",
                            "window_end": "window end"},
        "param_defaults": {"src_region": "europe", "dst_region": "asia"},
        "rationale": "Fallback measurement sweep for an underspecified query.",
        "tradeoffs": {},
        "alternatives": [],
    }


_DESIGNERS = {
    "cable_failure_impact": _design_cable_failure,
    "multi_disaster_impact": _design_multi_disaster,
    "cascading_failure": _design_cascading,
    "latency_forensics": _design_forensics,
    "risk_assessment": _design_risk,
    "generic_impact": _design_generic,
}


# ---------------------------------------------------------------------------
# Implementation planning (SolutionWeaver) and curation
# ---------------------------------------------------------------------------

_QA_BY_INTENT = {
    "cable_failure_impact": ["consistency_cross_source", "sanity_bounds",
                             "uncertainty_quantification"],
    "multi_disaster_impact": ["sanity_bounds", "coverage_check"],
    "cascading_failure": ["consistency_cross_source", "sanity_bounds",
                          "coverage_check"],
    "latency_forensics": ["significance_assessment", "consistency_cross_source",
                          "sanity_bounds", "uncertainty_quantification"],
    "risk_assessment": ["sanity_bounds"],
    "generic_impact": ["sanity_bounds", "coverage_check"],
}


def plan_implementation(design_payload: dict, intent: str) -> dict:
    """Build the SolutionWeaver output payload: ordering, adapters, QA."""
    steps = (
        design_payload.get("workflow", {}).get("steps")
        or design_payload.get("chosen", {}).get("steps")
        or []
    )
    adapters = []
    for step in steps:
        for param, binding in step.get("inputs", {}).items():
            if isinstance(binding, str) and binding.startswith("step:") and "." in binding.split(":", 1)[1]:
                src = binding.split(":", 1)[1].split(".", 1)[0]
                field = binding.split(".", 1)[1]
                adapters.append({
                    "from_step": src,
                    "to_step": step["id"],
                    "description": f"extract field {field!r} from {src} output "
                                   f"for parameter {param!r}",
                })
    qa = list(_QA_BY_INTENT.get(intent, ["sanity_bounds"]))
    return {
        "step_order": [s["id"] for s in steps],
        "adapters": adapters,
        "qa_checks": qa,
        "result_keys": [s["id"] for s in steps],
        "notes": f"{len(adapters)} format adapters; QA: {', '.join(qa)}",
    }


#: Chains the curator recognises as promotable composite capabilities.
CURATOR_PATTERNS = (
    {
        "sequence": ("nautilus.get_cable_dependencies", "aggregate_impact_by_country",
                     "rank_countries_by_impact"),
        "name": "composite.cable_country_impact",
        "summary": "Country-level impact assessment of a single cable failure "
                   "derived from dependency extraction plus direct aggregation.",
        "capabilities": ["impact_analysis", "country_aggregation",
                         "cable_dependencies"],
    },
    {
        "sequence": ("traceroute.detect_latency_anomalies", "score_suspect_cables",
                     "synthesize_forensic_evidence"),
        "name": "composite.latency_root_cause",
        "summary": "Forensic root-cause pipeline: latency anomaly to ranked "
                   "cable suspects with evidence synthesis.",
        "capabilities": ["latency_anomaly_detection", "infrastructure_correlation",
                         "evidence_synthesis"],
    },
    {
        "sequence": ("xaminer.process_event", "combine_reports"),
        "name": "composite.multi_event_impact",
        "summary": "Iterate event processing over a scenario list and merge "
                   "into global impact metrics.",
        "capabilities": ["event_processing", "impact_analysis",
                         "report_combination"],
    },
)


def curator_candidates(design_payload: dict, execution_payload: dict) -> dict:
    """Extract promotable patterns from a successful execution."""
    if not execution_payload.get("succeeded", False):
        return {"candidates": []}
    steps = (
        design_payload.get("workflow", {}).get("steps")
        or design_payload.get("chosen", {}).get("steps")
        or []
    )
    targets = [s["target"] for s in steps]
    target_set = set(targets)
    candidates = []
    for pattern in CURATOR_PATTERNS:
        if set(pattern["sequence"]).issubset(target_set):
            candidates.append({
                "name": pattern["name"],
                "summary": pattern["summary"],
                "capabilities": list(pattern["capabilities"]),
                "composed_of": list(pattern["sequence"]),
            })
    return {"candidates": candidates}
