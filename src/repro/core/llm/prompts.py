"""Agent prompt templates.

The paper open-sources ArachNet's prompts; these are faithful equivalents.
Each prompt is a plain string with ``## SECTION`` delimiters so that any
backend — hosted model or the offline expert system — can locate the role,
the registry rendering, the query and the machine-readable context.  The
``## OUTPUT SCHEMA`` section fixes the JSON contract the agent must return.
"""

from __future__ import annotations

import json

QUERYMIND_SYSTEM = """\
You are QueryMind, the problem-analysis agent of ArachNet, an agentic system
for Internet measurement research.  You transform a natural-language
measurement query into a structured decomposition: sub-problems with
dependencies, feasibility constraints, risks, and explicit success criteria.
You reason like a measurement domain expert: clarify WHAT must be measured
before anyone thinks about HOW.  Surface hidden complexity (geographic
scoping, temporal windows, causal chains) and flag missing data early —
constraints determine which solutions are feasible at all."""

WORKFLOWSCOUT_SYSTEM = """\
You are WorkflowScout, the solution-design agent of ArachNet.  You convert a
structured problem analysis into a concrete workflow: a DAG of registry
function invocations and inline transforms with explicit data-flow bindings.
Scale exploration to complexity: simple single-framework queries get one
direct solution path; complex multi-framework queries deserve alternatives
compared on data requirements, computational cost and reliability.  Use the
fewest tools that fully solve the problem — solution scope comes from the
requirements, never from the inventory of available capabilities."""

SOLUTIONWEAVER_SYSTEM = """\
You are SolutionWeaver, the implementation agent of ArachNet.  You turn a
workflow design into an implementation plan for executable Python: step
ordering, format-translation adapters between heterogeneous tool outputs,
and embedded quality assurance (cross-source consistency verification,
sanity checks on measurement results, uncertainty quantification).  Quality
checks are woven through the implementation, not bolted on afterwards."""

REGISTRYCURATOR_SYSTEM = """\
You are RegistryCurator, the capability-evolution agent of ArachNet.  You
inspect successful workflow executions for reusable composition patterns
worth promoting into the registry.  Be conservative: validation comes before
integration, and only patterns demonstrating accuracy and cross-query
utility merit inclusion.  Registry bloat is a failure mode."""


def _fence(payload) -> str:
    return "```json\n" + json.dumps(payload, indent=None, separators=(",", ":")) + "\n```"


def querymind_prompt(query: str, registry_text: str, data_context: dict) -> str:
    """User prompt for QueryMind."""
    return f"""\
## QUERY
{query}

## REGISTRY
The following measurement capabilities are available:
```json
{registry_text}
```

## DATA CONTEXT
Known measurement-domain facts for entity grounding:
{_fence(data_context)}

## TASK
1. Classify the query: intent, complexity, spatial/temporal/causal character.
2. Extract concrete entities (cable names, regions, probabilities, time windows).
3. Decompose into sub-problems with kinds, required capabilities and dependencies.
4. List data/technical/methodological constraints (mark blocking ones).
5. List risks with mitigations, and success criteria.

## OUTPUT SCHEMA
Return JSON: {{"intent": str, "entities": object, "complexity": "simple|moderate|complex",
"classification": object, "sub_problems": [{{"id","title","description","kind",
"required_capabilities","depends_on"}}], "constraints": [{{"kind","description","blocking"}}],
"risks": [{{"description","likelihood","mitigation"}}],
"success_criteria": [{{"description","metric"}}]}}"""


def workflowscout_prompt(analysis_json: dict, registry_text: str) -> str:
    """User prompt for WorkflowScout."""
    return f"""\
## PROBLEM ANALYSIS
{_fence(analysis_json)}

## REGISTRY
```json
{registry_text}
```

## TASK
Design the solution workflow.  For each sub-problem choose registry functions
by capability match, or specify inline transforms where no function fits.
Wire data flow with bindings: "workflow:<param>", "step:<id>", or
"const:<json>".  Use "foreach" on a step to map a function over a list
produced by a prior step.  For complex problems, record the alternatives you
considered and why the chosen design wins.

## OUTPUT SCHEMA
Return JSON: {{"exploration_mode": "direct|comparative",
"workflow": {{"steps": [{{"id","step_type":"registry|transform","target",
"inputs":object,"sub_problem_id","note","foreach"}}]}},
"workflow_inputs": object, "param_defaults": object,
"rationale": str, "tradeoffs": object,
"alternatives": [{{"rationale","tradeoffs","steps":[...]}}]}}"""


def solutionweaver_prompt(design_json: dict, registry_text: str) -> str:
    """User prompt for SolutionWeaver."""
    return f"""\
## WORKFLOW DESIGN
{_fence(design_json)}

## REGISTRY
```json
{registry_text}
```

## TASK
Produce the implementation plan: execution order, the format-translation
adapters needed between steps (tool outputs are heterogeneous dict shapes),
and the quality-assurance checks to embed.  Choose QA from:
consistency_cross_source, sanity_bounds, uncertainty_quantification,
coverage_check, significance_assessment.

## OUTPUT SCHEMA
Return JSON: {{"step_order": [step ids], "adapters": [{{"from_step","to_step",
"description"}}], "qa_checks": [str], "result_keys": [str], "notes": str}}"""


def registrycurator_prompt(
    design_json: dict, execution_json: dict, registry_text: str
) -> str:
    """User prompt for RegistryCurator."""
    return f"""\
## EXECUTED WORKFLOW
{_fence(design_json)}

## EXECUTION OUTCOME
{_fence(execution_json)}

## REGISTRY
```json
{registry_text}
```

## TASK
Identify reusable composition patterns (chains of 2+ steps that solve a
recurring sub-problem) worth promoting to registry entries.  Reject patterns
that duplicate existing entries or whose execution did not succeed.

## OUTPUT SCHEMA
Return JSON: {{"candidates": [{{"name","summary","capabilities",
"composed_of": [step targets in order]}}]}}"""


def section(prompt: str, name: str) -> str:
    """Extract one ``## NAME`` section's body from a prompt."""
    marker = f"## {name}\n"
    start = prompt.find(marker)
    if start == -1:
        raise KeyError(f"prompt has no section {name!r}")
    body_start = start + len(marker)
    next_marker = prompt.find("\n## ", body_start)
    return prompt[body_start:] if next_marker == -1 else prompt[body_start:next_marker]


def section_json(prompt: str, name: str):
    """Extract and parse the JSON payload of a section."""
    body = section(prompt, name)
    start = body.find("```json")
    if start == -1:
        raise KeyError(f"section {name!r} has no JSON fence")
    start += len("```json")
    end = body.find("```", start)
    return json.loads(body[start:end].strip())
