"""Tool catalog: binds registry entries to executable callables.

The registry describes *what* tools do; the catalog is the runtime that
resolves each entry's ``callable_ref`` and injects the measurement context
(the world plus any ambient incidents).  Generated code never imports
measurement frameworks directly — it calls ``catalog.call(entry_name, ...)``,
which is also the seam where argument validation happens.
"""

from __future__ import annotations

import importlib
import inspect
from dataclasses import dataclass, field

from repro.core.registry import Registry, RegistryEntry
from repro.synth.scenarios import LatencyIncident
from repro.synth.world import SyntheticWorld


@dataclass
class MeasurementContext:
    """The ambient world a deployment measures.

    ``incidents`` is ground truth that only manifests through observables
    (latency shifts, BGP bursts); tools receive it, agents do not.
    """

    world: SyntheticWorld
    incidents: list[LatencyIncident] = field(default_factory=list)


class CatalogError(RuntimeError):
    """Raised when an entry cannot be resolved or called."""


def resolve_callable(ref: str):
    """Resolve ``"module.path:function"`` to the callable it names."""
    if ":" not in ref:
        raise CatalogError(f"callable_ref must look like 'module:function', got {ref!r}")
    module_name, func_name = ref.split(":", 1)
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise CatalogError(f"cannot import {module_name!r} for {ref!r}: {exc}") from exc
    try:
        return getattr(module, func_name)
    except AttributeError as exc:
        raise CatalogError(f"{module_name!r} has no attribute {func_name!r}") from exc


class ToolCatalog:
    """Executable view of a registry over one measurement context."""

    def __init__(self, registry: Registry, context: MeasurementContext):
        self._registry = registry
        self._context = context
        self._resolved: dict[str, object] = {}

    @property
    def registry(self) -> Registry:
        return self._registry

    @property
    def context(self) -> MeasurementContext:
        return self._context

    def validate(self) -> list[str]:
        """Resolve every entry eagerly; returns the list of broken entries."""
        broken: list[str] = []
        for name in self._registry.names():
            entry = self._registry.get(name)
            if not entry.callable_ref:
                broken.append(name)
                continue
            try:
                resolve_callable(entry.callable_ref)
            except CatalogError:
                broken.append(name)
        return broken

    def call(self, entry_name: str, **kwargs):
        """Invoke a registry entry with context injection.

        The world is always passed as the first positional argument; an
        ``incidents`` keyword is injected when the target function accepts
        one and the caller did not supply it.
        """
        entry: RegistryEntry = self._registry.get(entry_name)
        func = self._resolved.get(entry_name)
        if func is None:
            func = resolve_callable(entry.callable_ref)
            self._resolved[entry_name] = func
        signature = inspect.signature(func)
        params = signature.parameters
        if "incidents" in params and "incidents" not in kwargs:
            kwargs["incidents"] = list(self._context.incidents)
        try:
            if "world" in params:
                return func(self._context.world, **kwargs)
            return func(**kwargs)
        except TypeError as exc:
            raise CatalogError(
                f"bad arguments for {entry_name!r} ({entry.callable_ref}): {exc}"
            ) from exc


def cascade_adapter(
    world: SyntheticWorld,
    initial_failed_link_ids: list[str],
    initial_cable_ids: list[str] | None = None,
) -> dict:
    """Registry-facing wrapper for cascade propagation (returns JSON).

    Lives here rather than in :mod:`repro.topology.cascade` because the
    topology layer returns rich dataclasses while registry functions speak
    dicts.
    """
    from repro.topology.cascade import propagate_cascade

    result = propagate_cascade(
        world,
        initial_failed_link_ids=initial_failed_link_ids,
        initial_cable_ids=initial_cable_ids,
    )
    return result.to_dict()


def composite_placeholder(world, **params):
    """Runner stub for curator-promoted composite entries.

    Composite entries are *design-time* capabilities: WorkflowScout expands
    them into their underlying step chains when designing future workflows.
    Calling one directly is a wiring error, reported as such.
    """
    raise CatalogError(
        "composite registry entries are expanded at design time and cannot "
        "be invoked directly"
    )


def build_catalog(
    registry: Registry,
    world: SyntheticWorld,
    incidents: list[LatencyIncident] | None = None,
) -> ToolCatalog:
    """Convenience constructor for the common case."""
    return ToolCatalog(registry, MeasurementContext(world=world, incidents=list(incidents or [])))
