"""Inter-agent artifacts: the typed hand-offs between pipeline stages.

Each agent consumes the previous stage's artifact and produces the next
(Figure 1 of the paper): ``ProblemAnalysis`` → ``WorkflowDesign`` →
``GeneratedSolution`` → ``ExecutionOutcome`` → ``CuratorReport``.  All
artifacts serialise to JSON — in expert mode they are what the human
reviews and may edit between stages.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from enum import Enum


class ProblemKind(str, Enum):
    """The reasoning category of a sub-problem (drives capability matching)."""

    MAPPING = "mapping"  # cross-layer / infrastructure resolution
    IMPACT = "impact"  # failure impact computation
    AGGREGATION = "aggregation"  # spatial / administrative rollups
    CATALOG = "catalog"  # enumerate events / inventory
    DEPENDENCY = "dependency"  # dependency graph construction
    CASCADE = "cascade"  # failure propagation modeling
    TEMPORAL = "temporal"  # time-windowed measurement collection
    STATISTICAL = "statistical"  # anomaly detection / significance
    SCORING = "scoring"  # suspect ranking
    VALIDATION = "validation"  # independent cross-checks
    SYNTHESIS = "synthesis"  # combining results into the answer


class Complexity(str, Enum):
    SIMPLE = "simple"
    MODERATE = "moderate"
    COMPLEX = "complex"


@dataclass
class SubProblem:
    """One decomposed piece of the user's query."""

    id: str
    title: str
    description: str
    kind: ProblemKind
    required_capabilities: list[str] = field(default_factory=list)
    depends_on: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "id": self.id,
            "title": self.title,
            "description": self.description,
            "kind": self.kind.value,
            "required_capabilities": list(self.required_capabilities),
            "depends_on": list(self.depends_on),
        }

    @classmethod
    def from_dict(cls, row: dict) -> "SubProblem":
        return cls(
            id=row["id"],
            title=row["title"],
            description=row.get("description", ""),
            kind=ProblemKind(row["kind"]),
            required_capabilities=list(row.get("required_capabilities", [])),
            depends_on=list(row.get("depends_on", [])),
        )


@dataclass
class Constraint:
    """A feasibility constraint QueryMind surfaces early."""

    kind: str  # "data" | "technical" | "methodological"
    description: str
    blocking: bool = False

    def to_dict(self) -> dict:
        return {"kind": self.kind, "description": self.description, "blocking": self.blocking}

    @classmethod
    def from_dict(cls, row: dict) -> "Constraint":
        return cls(
            kind=row["kind"],
            description=row["description"],
            blocking=bool(row.get("blocking", False)),
        )


@dataclass
class Risk:
    """A failure mode that could compromise results."""

    description: str
    likelihood: str = "medium"  # "low" | "medium" | "high"
    mitigation: str = ""

    def to_dict(self) -> dict:
        return {
            "description": self.description,
            "likelihood": self.likelihood,
            "mitigation": self.mitigation,
        }

    @classmethod
    def from_dict(cls, row: dict) -> "Risk":
        return cls(
            description=row["description"],
            likelihood=row.get("likelihood", "medium"),
            mitigation=row.get("mitigation", ""),
        )


@dataclass
class SuccessCriterion:
    """When is the query sufficiently answered."""

    description: str
    metric: str = ""

    def to_dict(self) -> dict:
        return {"description": self.description, "metric": self.metric}

    @classmethod
    def from_dict(cls, row: dict) -> "SuccessCriterion":
        return cls(description=row["description"], metric=row.get("metric", ""))


@dataclass
class ProblemAnalysis:
    """QueryMind's output: the structured understanding of the query."""

    query: str
    intent: str
    entities: dict = field(default_factory=dict)
    complexity: Complexity = Complexity.MODERATE
    classification: dict = field(default_factory=dict)
    sub_problems: list[SubProblem] = field(default_factory=list)
    constraints: list[Constraint] = field(default_factory=list)
    risks: list[Risk] = field(default_factory=list)
    success_criteria: list[SuccessCriterion] = field(default_factory=list)

    def sub_problem(self, sp_id: str) -> SubProblem:
        for sp in self.sub_problems:
            if sp.id == sp_id:
                return sp
        raise KeyError(f"unknown sub-problem {sp_id!r}")

    def blocking_constraints(self) -> list[Constraint]:
        return [c for c in self.constraints if c.blocking]

    def to_dict(self) -> dict:
        return {
            "query": self.query,
            "intent": self.intent,
            "entities": dict(self.entities),
            "complexity": self.complexity.value,
            "classification": dict(self.classification),
            "sub_problems": [sp.to_dict() for sp in self.sub_problems],
            "constraints": [c.to_dict() for c in self.constraints],
            "risks": [r.to_dict() for r in self.risks],
            "success_criteria": [s.to_dict() for s in self.success_criteria],
        }

    @classmethod
    def from_dict(cls, row: dict) -> "ProblemAnalysis":
        return cls(
            query=row["query"],
            intent=row["intent"],
            entities=dict(row.get("entities", {})),
            complexity=Complexity(row.get("complexity", "moderate")),
            classification=dict(row.get("classification", {})),
            sub_problems=[SubProblem.from_dict(r) for r in row.get("sub_problems", [])],
            constraints=[Constraint.from_dict(r) for r in row.get("constraints", [])],
            risks=[Risk.from_dict(r) for r in row.get("risks", [])],
            success_criteria=[
                SuccessCriterion.from_dict(r) for r in row.get("success_criteria", [])
            ],
        )


class StepType(str, Enum):
    REGISTRY = "registry"  # invoke a registry function
    TRANSFORM = "transform"  # inline data transformation generated as code


@dataclass
class WorkflowStep:
    """One node of the workflow DAG.

    ``inputs`` maps parameter names to bindings: ``"workflow:<name>"`` (an
    external workflow input), ``"step:<id>"`` (the full output of a prior
    step) or ``"const:<json>"`` (an inline literal).
    """

    id: str
    step_type: StepType
    target: str  # registry entry name, or transform name
    inputs: dict[str, str] = field(default_factory=dict)
    sub_problem_id: str = ""
    note: str = ""
    foreach: str = ""  # optional "step:<id>" binding; call once per item

    def binding_step_ids(self) -> list[str]:
        out = []
        bindings = list(self.inputs.values())
        if self.foreach:
            bindings.append(self.foreach)
        for binding in bindings:
            if binding.startswith("step:"):
                out.append(binding.split(":", 1)[1].split(".", 1)[0])
        return out

    def to_dict(self) -> dict:
        return {
            "id": self.id,
            "step_type": self.step_type.value,
            "target": self.target,
            "inputs": dict(self.inputs),
            "sub_problem_id": self.sub_problem_id,
            "note": self.note,
            "foreach": self.foreach,
        }

    @classmethod
    def from_dict(cls, row: dict) -> "WorkflowStep":
        return cls(
            id=row["id"],
            step_type=StepType(row["step_type"]),
            target=row["target"],
            inputs=dict(row.get("inputs", {})),
            sub_problem_id=row.get("sub_problem_id", ""),
            note=row.get("note", ""),
            foreach=row.get("foreach", ""),
        )


@dataclass
class CandidateWorkflow:
    """One explored solution: steps plus the trade-off assessment."""

    steps: list[WorkflowStep] = field(default_factory=list)
    rationale: str = ""
    tradeoffs: dict = field(default_factory=dict)
    score: float = 0.0

    def step(self, step_id: str) -> WorkflowStep:
        for s in self.steps:
            if s.id == step_id:
                return s
        raise KeyError(f"unknown step {step_id!r}")

    def frameworks_used(self) -> list[str]:
        """Distinct frameworks the registry steps touch (e.g. 'nautilus')."""
        frameworks = {
            step.target.split(".", 1)[0]
            for step in self.steps
            if step.step_type is StepType.REGISTRY and "." in step.target
        }
        return sorted(frameworks)

    def to_dict(self) -> dict:
        return {
            "steps": [s.to_dict() for s in self.steps],
            "rationale": self.rationale,
            "tradeoffs": dict(self.tradeoffs),
            "score": self.score,
        }

    @classmethod
    def from_dict(cls, row: dict) -> "CandidateWorkflow":
        return cls(
            steps=[WorkflowStep.from_dict(r) for r in row.get("steps", [])],
            rationale=row.get("rationale", ""),
            tradeoffs=dict(row.get("tradeoffs", {})),
            score=float(row.get("score", 0.0)),
        )


@dataclass
class WorkflowDesign:
    """WorkflowScout's output: the chosen workflow plus exploration record."""

    chosen: CandidateWorkflow
    exploration_mode: str = "direct"  # "direct" | "comparative"
    alternatives: list[CandidateWorkflow] = field(default_factory=list)
    workflow_inputs: dict[str, str] = field(default_factory=dict)  # name -> description
    param_defaults: dict = field(default_factory=dict)  # name -> default value

    def to_dict(self) -> dict:
        return {
            "chosen": self.chosen.to_dict(),
            "exploration_mode": self.exploration_mode,
            "alternatives": [c.to_dict() for c in self.alternatives],
            "workflow_inputs": dict(self.workflow_inputs),
            "param_defaults": dict(self.param_defaults),
        }

    @classmethod
    def from_dict(cls, row: dict) -> "WorkflowDesign":
        return cls(
            chosen=CandidateWorkflow.from_dict(row["chosen"]),
            exploration_mode=row.get("exploration_mode", "direct"),
            alternatives=[CandidateWorkflow.from_dict(r) for r in row.get("alternatives", [])],
            workflow_inputs=dict(row.get("workflow_inputs", {})),
            param_defaults=dict(row.get("param_defaults", {})),
        )


@dataclass
class GeneratedSolution:
    """SolutionWeaver's output: executable code plus quality metadata."""

    source_code: str
    entrypoint: str = "run"
    qa_checks: list[str] = field(default_factory=list)
    adapters: list[str] = field(default_factory=list)
    loc: int = 0
    notes: str = ""

    def to_dict(self) -> dict:
        return {
            "source_code": self.source_code,
            "entrypoint": self.entrypoint,
            "qa_checks": list(self.qa_checks),
            "adapters": list(self.adapters),
            "loc": self.loc,
            "notes": self.notes,
        }

    @classmethod
    def from_dict(cls, row: dict) -> "GeneratedSolution":
        return cls(
            source_code=row["source_code"],
            entrypoint=row.get("entrypoint", "run"),
            qa_checks=list(row.get("qa_checks", [])),
            adapters=list(row.get("adapters", [])),
            loc=int(row.get("loc", 0)),
            notes=row.get("notes", ""),
        )


@dataclass
class ExecutionOutcome:
    """Result of actually running the generated solution."""

    succeeded: bool
    outputs: dict = field(default_factory=dict)
    quality_report: dict = field(default_factory=dict)
    error: str = ""

    def to_dict(self) -> dict:
        return {
            "succeeded": self.succeeded,
            "outputs": self.outputs,
            "quality_report": dict(self.quality_report),
            "error": self.error,
        }


@dataclass
class CuratorCandidate:
    """A reusable pattern the curator extracted from a workflow."""

    name: str
    summary: str
    capabilities: list[str] = field(default_factory=list)
    composed_of: list[str] = field(default_factory=list)  # step targets, in order
    validated: bool = False
    rejection_reason: str = ""

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "summary": self.summary,
            "capabilities": list(self.capabilities),
            "composed_of": list(self.composed_of),
            "validated": self.validated,
            "rejection_reason": self.rejection_reason,
        }


@dataclass
class CuratorReport:
    """RegistryCurator's output: what was learned and what was added."""

    candidates: list[CuratorCandidate] = field(default_factory=list)
    added_entries: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "candidates": [c.to_dict() for c in self.candidates],
            "added_entries": list(self.added_entries),
        }


@dataclass
class StageTrace:
    """One pipeline stage as recorded for the Figure-1 trace."""

    agent: str
    artifact_kind: str
    expert_reviewed: bool = False
    cache_hit: bool = False
    duration_s: float = 0.0

    def to_dict(self) -> dict:
        return {
            "agent": self.agent,
            "artifact_kind": self.artifact_kind,
            "expert_reviewed": self.expert_reviewed,
            "cache_hit": self.cache_hit,
            "duration_s": self.duration_s,
        }


@dataclass
class PipelineResult:
    """Everything one ArachNet run produced."""

    query: str
    analysis: ProblemAnalysis
    design: WorkflowDesign
    solution: GeneratedSolution
    execution: ExecutionOutcome
    curator: CuratorReport | None = None
    stage_trace: list[StageTrace] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "query": self.query,
            "analysis": self.analysis.to_dict(),
            "design": self.design.to_dict(),
            "solution": self.solution.to_dict(),
            "execution": self.execution.to_dict(),
            "curator": self.curator.to_dict() if self.curator else None,
            "stage_trace": [s.to_dict() for s in self.stage_trace],
        }

    def artifact_digest(self) -> str:
        """Content hash over the artifacts alone — every deterministic output,
        excluding the stage trace (whose durations and cache-hit flags vary
        by run and by execution backend).  Two runs of the same job through
        any backend must produce the same digest."""
        material = self.to_dict()
        material.pop("stage_trace")
        canonical = json.dumps(material, sort_keys=True, separators=(",", ":"), default=str)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
