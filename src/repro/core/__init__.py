"""ArachNet core: the four-agent workflow-composition system.

The paper's primary contribution: a registry of measurement capabilities and
four specialized agents (QueryMind, WorkflowScout, SolutionWeaver,
RegistryCurator) that turn natural-language measurement questions into
executed, quality-checked workflows.

Quickstart::

    from repro.core import ArachNet
    from repro.synth import build_world

    world = build_world()
    system = ArachNet.for_world(world)
    result = system.answer(
        "Identify the impact at a country level due to SeaMeWe-5 cable failure"
    )
    print(result.execution.outputs["final"])
"""

from repro.core.artifacts import (
    CandidateWorkflow,
    Complexity,
    Constraint,
    CuratorCandidate,
    CuratorReport,
    ExecutionOutcome,
    GeneratedSolution,
    PipelineResult,
    ProblemAnalysis,
    ProblemKind,
    Risk,
    StageTrace,
    StepType,
    SubProblem,
    SuccessCriterion,
    WorkflowDesign,
    WorkflowStep,
)
from repro.core.catalog import (
    CatalogError,
    MeasurementContext,
    ToolCatalog,
    build_catalog,
)
from repro.core.codegen import count_loc, generate_solution
from repro.core.executor import execute_solution
from repro.core.pipeline import ArachNet, ExpertHooks, build_data_context
from repro.core.registry import Registry, RegistryEntry, RegistryError, default_registry
from repro.core.workflow import (
    WorkflowValidationError,
    functional_signature,
    stage_kinds,
    to_mermaid,
    topological_order,
    validate_workflow,
)

__all__ = [
    "CandidateWorkflow",
    "Complexity",
    "Constraint",
    "CuratorCandidate",
    "CuratorReport",
    "ExecutionOutcome",
    "GeneratedSolution",
    "PipelineResult",
    "ProblemAnalysis",
    "ProblemKind",
    "Risk",
    "StageTrace",
    "StepType",
    "SubProblem",
    "SuccessCriterion",
    "WorkflowDesign",
    "WorkflowStep",
    "CatalogError",
    "MeasurementContext",
    "ToolCatalog",
    "build_catalog",
    "count_loc",
    "generate_solution",
    "execute_solution",
    "ArachNet",
    "ExpertHooks",
    "build_data_context",
    "Registry",
    "RegistryEntry",
    "RegistryError",
    "default_registry",
    "WorkflowValidationError",
    "functional_signature",
    "stage_kinds",
    "to_mermaid",
    "topological_order",
    "validate_workflow",
]
