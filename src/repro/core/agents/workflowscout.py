"""WorkflowScout: solution-space exploration and workflow design."""

from __future__ import annotations

from repro.core.agents.base import Agent, AgentError
from repro.core.artifacts import CandidateWorkflow, ProblemAnalysis, WorkflowDesign
from repro.core.codegen import TRANSFORM_TEMPLATES
from repro.core.llm.prompts import WORKFLOWSCOUT_SYSTEM, workflowscout_prompt
from repro.core.workflow import validate_workflow


def _validate_payload(payload) -> None:
    if not isinstance(payload, dict):
        raise ValueError("WorkflowScout output must be a JSON object")
    workflow = payload.get("workflow") or {}
    steps = workflow.get("steps") or []
    if not steps:
        raise ValueError("design contains no steps")
    for step in steps:
        for key in ("id", "step_type", "target"):
            if key not in step:
                raise ValueError(f"step missing {key!r}: {step}")
    if payload.get("exploration_mode") not in ("direct", "comparative"):
        raise ValueError("exploration_mode must be direct or comparative")


class WorkflowScout(Agent):
    """Converts a :class:`ProblemAnalysis` into a :class:`WorkflowDesign`."""

    name = "workflowscout"
    system_prompt = WORKFLOWSCOUT_SYSTEM

    def design(self, analysis: ProblemAnalysis) -> WorkflowDesign:
        blocking = analysis.blocking_constraints()
        if blocking:
            raise AgentError(
                "cannot design a workflow under blocking constraints: "
                + "; ".join(c.description for c in blocking)
            )
        prompt = workflowscout_prompt(analysis.to_dict(), self._registry.to_prompt_text())
        payload = self._ask(prompt, validator=_validate_payload)

        chosen = CandidateWorkflow.from_dict(
            {
                "steps": payload["workflow"]["steps"],
                "rationale": payload.get("rationale", ""),
                "tradeoffs": payload.get("tradeoffs", {}),
            }
        )
        design = WorkflowDesign(
            chosen=chosen,
            exploration_mode=payload["exploration_mode"],
            alternatives=[
                CandidateWorkflow.from_dict(alt) for alt in payload.get("alternatives", [])
            ],
            workflow_inputs=dict(payload.get("workflow_inputs", {})),
            param_defaults=dict(payload.get("param_defaults", {})),
        )
        # Structural validation is the scout's own responsibility: a design
        # that references unknown tools or has cycles must never reach the
        # implementation stage.
        validate_workflow(
            design.chosen,
            design.workflow_inputs,
            registry_names=set(self._registry.names()),
            transform_names=set(TRANSFORM_TEMPLATES.keys()),
        )
        return design
