"""The four ArachNet agents (Figure 1 of the paper)."""

from repro.core.agents.base import Agent, AgentError
from repro.core.agents.querymind import QueryMind
from repro.core.agents.workflowscout import WorkflowScout
from repro.core.agents.solutionweaver import SolutionWeaver
from repro.core.agents.registrycurator import RegistryCurator

__all__ = [
    "Agent",
    "AgentError",
    "QueryMind",
    "WorkflowScout",
    "SolutionWeaver",
    "RegistryCurator",
]
