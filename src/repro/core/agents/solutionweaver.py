"""SolutionWeaver: implementation planning and code generation."""

from __future__ import annotations

from repro.core.agents.base import Agent
from repro.core.artifacts import GeneratedSolution, ProblemAnalysis, WorkflowDesign
from repro.core.codegen import generate_solution
from repro.core.llm.prompts import SOLUTIONWEAVER_SYSTEM, solutionweaver_prompt


def _validate_payload(payload) -> None:
    if not isinstance(payload, dict):
        raise ValueError("SolutionWeaver output must be a JSON object")
    if "step_order" not in payload or not payload["step_order"]:
        raise ValueError("implementation plan has no step order")
    if "qa_checks" not in payload:
        raise ValueError("implementation plan missing qa_checks")


class SolutionWeaver(Agent):
    """Turns a :class:`WorkflowDesign` into executable Python source."""

    name = "solutionweaver"
    system_prompt = SOLUTIONWEAVER_SYSTEM

    def implement(
        self, design: WorkflowDesign, analysis: ProblemAnalysis
    ) -> GeneratedSolution:
        """Plan the implementation with the LLM, then render code.

        The design payload is augmented with the analysis intent so the
        backend can pick intent-appropriate QA checks — the weaver prompt in
        the paper likewise carries the problem framing forward.
        """
        design_payload = design.to_dict()
        design_payload["intent"] = analysis.intent
        prompt = solutionweaver_prompt(design_payload, self._registry.to_prompt_text())
        plan = self._ask(prompt, validator=_validate_payload)
        known_ids = {step.id for step in design.chosen.steps}
        plan["step_order"] = [sid for sid in plan["step_order"] if sid in known_ids]
        return generate_solution(design, plan, analysis.query)
