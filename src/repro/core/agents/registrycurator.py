"""RegistryCurator: validation-first registry evolution."""

from __future__ import annotations

from repro.core.agents.base import Agent
from repro.core.artifacts import (
    CuratorCandidate,
    CuratorReport,
    ExecutionOutcome,
    WorkflowDesign,
)
from repro.core.llm.prompts import REGISTRYCURATOR_SYSTEM, registrycurator_prompt
from repro.core.registry import Registry, RegistryEntry


def _validate_payload(payload) -> None:
    if not isinstance(payload, dict) or "candidates" not in payload:
        raise ValueError("curator output must contain 'candidates'")
    for candidate in payload["candidates"]:
        for key in ("name", "summary", "capabilities", "composed_of"):
            if key not in candidate:
                raise ValueError(f"candidate missing {key!r}")


class RegistryCurator(Agent):
    """Promotes validated composition patterns into the registry."""

    name = "registrycurator"
    system_prompt = REGISTRYCURATOR_SYSTEM

    def curate(
        self,
        design: WorkflowDesign,
        execution: ExecutionOutcome,
        registry: Registry,
    ) -> CuratorReport:
        """Extract candidates, validate each, and add survivors to the registry.

        Validation-first gating (§3): a pattern is added only when (a) the
        execution that exhibited it succeeded, (b) every composed step exists
        in the executed workflow, and (c) no existing entry already covers
        its name or exact composition.  Everything else is recorded as
        rejected, with the reason.
        """
        prompt = registrycurator_prompt(
            design.to_dict(),
            {"succeeded": execution.succeeded, "error": execution.error,
             "quality_report": execution.quality_report},
            registry.to_prompt_text(),
        )
        payload = self._ask(prompt, validator=_validate_payload)

        report = CuratorReport()
        workflow_targets = {step.target for step in design.chosen.steps}
        for row in payload["candidates"]:
            candidate = CuratorCandidate(
                name=row["name"],
                summary=row["summary"],
                capabilities=list(row["capabilities"]),
                composed_of=list(row["composed_of"]),
            )
            if not execution.succeeded:
                candidate.rejection_reason = "source execution did not succeed"
            elif not set(candidate.composed_of).issubset(workflow_targets):
                candidate.rejection_reason = "composition references steps absent from the workflow"
            elif candidate.name in registry:
                candidate.rejection_reason = "an entry with this name already exists"
            elif self._composition_exists(registry, candidate):
                candidate.rejection_reason = "an equivalent composition is already registered"
            else:
                candidate.validated = True
                registry.add(self._to_entry(candidate))
                report.added_entries.append(candidate.name)
            report.candidates.append(candidate)
        return report

    @staticmethod
    def _composition_exists(registry: Registry, candidate: CuratorCandidate) -> bool:
        composition = ",".join(candidate.composed_of)
        for entry in registry.entries.values():
            if entry.provenance != "curator":
                continue
            recorded = next(
                (c.split("=", 1)[1] for c in entry.constraints if c.startswith("composed_of=")),
                None,
            )
            if recorded == composition:
                return True
        return False

    @staticmethod
    def _to_entry(candidate: CuratorCandidate) -> RegistryEntry:
        return RegistryEntry(
            name=candidate.name,
            framework=candidate.name.split(".", 1)[0],
            summary=candidate.summary,
            capabilities=tuple(candidate.capabilities),
            inputs=(("params", "dict of workflow parameters"),),
            outputs=(("report", "composite analysis output"),),
            constraints=("composed_of=" + ",".join(candidate.composed_of),),
            cost_hint="moderate",
            callable_ref="repro.core.catalog:composite_placeholder",
            provenance="curator",
        )
