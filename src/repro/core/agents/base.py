"""Common agent machinery: prompt → completion → validated artifact."""

from __future__ import annotations

from repro.core.llm.client import LLMClient, LLMRequest, complete_json
from repro.core.registry import Registry


class AgentError(RuntimeError):
    """An agent could not produce a valid artifact."""


class Agent:
    """Base class wiring an LLM client to prompt/parse plumbing."""

    name = "agent"
    system_prompt = ""

    def __init__(self, llm: LLMClient, registry: Registry, max_attempts: int = 3):
        self._llm = llm
        self._registry = registry
        self._max_attempts = max_attempts

    @property
    def registry(self) -> Registry:
        return self._registry

    def _ask(self, user_prompt: str, validator=None) -> dict | list:
        """One validated JSON round trip to the backend."""
        request = LLMRequest(agent=self.name, system=self.system_prompt, user=user_prompt)
        try:
            return complete_json(
                self._llm, request, validator=validator, max_attempts=self._max_attempts
            )
        except Exception as exc:
            raise AgentError(f"{self.name} failed: {exc}") from exc
