"""QueryMind: problem analysis and decomposition (§3 of the paper)."""

from __future__ import annotations

from repro.core.agents.base import Agent
from repro.core.artifacts import (
    Complexity,
    Constraint,
    ProblemAnalysis,
    Risk,
    SubProblem,
    SuccessCriterion,
)
from repro.core.llm.prompts import QUERYMIND_SYSTEM, querymind_prompt


def _validate_payload(payload) -> None:
    if not isinstance(payload, dict):
        raise ValueError("QueryMind output must be a JSON object")
    for key in ("intent", "sub_problems", "constraints", "success_criteria"):
        if key not in payload:
            raise ValueError(f"QueryMind output missing {key!r}")
    if not payload["sub_problems"]:
        raise ValueError("decomposition produced no sub-problems")
    ids = [sp.get("id") for sp in payload["sub_problems"]]
    if len(ids) != len(set(ids)):
        raise ValueError("sub-problem ids are not unique")
    known = set(ids)
    for sp in payload["sub_problems"]:
        for dep in sp.get("depends_on", []):
            if dep not in known:
                raise ValueError(f"sub-problem {sp['id']} depends on unknown {dep!r}")


class QueryMind(Agent):
    """Transforms a natural-language query into a :class:`ProblemAnalysis`."""

    name = "querymind"
    system_prompt = QUERYMIND_SYSTEM

    def analyze(self, query: str, data_context: dict) -> ProblemAnalysis:
        """Run problem analysis for one query.

        ``data_context`` grounds entity extraction: known cable names, region
        vocabulary, the country→region map.  It describes the measurement
        domain, never the answer.
        """
        if not query.strip():
            raise ValueError("empty query")
        prompt = querymind_prompt(query, self._registry.to_prompt_text(), data_context)
        payload = self._ask(prompt, validator=_validate_payload)
        return ProblemAnalysis(
            query=query,
            intent=payload["intent"],
            entities=dict(payload.get("entities", {})),
            complexity=Complexity(payload.get("complexity", "moderate")),
            classification=dict(payload.get("classification", {})),
            sub_problems=[SubProblem.from_dict(r) for r in payload["sub_problems"]],
            constraints=[Constraint.from_dict(r) for r in payload["constraints"]],
            risks=[Risk.from_dict(r) for r in payload.get("risks", [])],
            success_criteria=[
                SuccessCriterion.from_dict(r) for r in payload["success_criteria"]
            ],
        )
