"""Code generation: rendering workflow designs into executable Python.

SolutionWeaver's implementation plan (step order, adapters, QA checks) is
rendered into a standalone module that:

* talks to measurement tools **only** through ``catalog.call(...)`` — the
  generated code never imports framework internals;
* carries real analysis logic in its transform functions (the paper's case
  study 1 notes ArachNet builds "a direct processing pipeline" instead of
  reusing expert abstractions — those pipelines are these transforms);
* embeds quality assurance — consistency verification, sanity bounds,
  uncertainty quantification — as first-class functions whose outputs become
  the run's quality report.

The emitted module defines ``run(catalog, params) -> dict``.
"""

from __future__ import annotations

import json

from repro.core.artifacts import GeneratedSolution, StepType, WorkflowDesign

# ---------------------------------------------------------------------------
# Transform template library
# ---------------------------------------------------------------------------

TRANSFORM_TEMPLATES: dict[str, str] = {}


def _register(name: str, code: str) -> None:
    if name in TRANSFORM_TEMPLATES:
        raise ValueError(f"duplicate transform template {name!r}")
    TRANSFORM_TEMPLATES[name] = code.rstrip() + "\n"


_register("build_report", '''
def t_build_report(ranking, dependencies, title):
    """Assemble the final human-readable report structure."""
    rows = ranking if isinstance(ranking, list) else ranking.get("country_ranking", ranking)
    if isinstance(rows, dict):
        rows = [rows]
    context = {}
    if isinstance(dependencies, dict):
        for key in ("cable_name", "cable_id", "total_capacity_gbps",
                    "failed_cable_ids", "events_combined"):
            if key in dependencies:
                context[key] = dependencies[key]
        for key in ("link_ids", "ips", "asns", "country_codes"):
            if key in dependencies:
                context[f"{key}_count"] = len(dependencies[key])
    return {
        "title": title,
        "generated_by": "ArachNet SolutionWeaver",
        "ranking": rows,
        "context": context,
        "row_count": len(rows) if isinstance(rows, list) else 1,
    }
''')


_register("aggregate_impact_by_country", '''
def t_aggregate_impact_by_country(dependencies, locations, all_links):
    """Directly aggregate a cable's dependency set into per-country impact.

    Replaces the withheld impact framework: counts affected IPs, links,
    networks and capacity per country, then normalises each metric by the
    country's *total* mapped infrastructure (derived from the full
    cross-layer map) — impact means "what fraction of this country's
    connectivity is gone", not "what share of the damage landed here".
    """
    ip_country = {}
    for ip, info in locations.items():
        ip_country[ip] = info.get("country")

    totals = {}
    for row in all_links.values():
        for code in {row.get("country_a"), row.get("country_b")}:
            if not code:
                continue
            entry = totals.setdefault(
                code, {"links_total": 0, "capacity_total_gbps": 0.0}
            )
            entry["links_total"] += 1
            entry["capacity_total_gbps"] += row.get("capacity_gbps", 0.0)

    per_country = {}

    def record(code):
        if code not in per_country:
            per_country[code] = {
                "country": code,
                "ips_affected": 0,
                "links_affected": 0,
                "networks_affected": 0,
                "capacity_lost_gbps": 0.0,
            }
        return per_country[code]

    ips = list(dependencies.get("ips", []))
    for ip in ips:
        code = ip_country.get(ip)
        if code:
            record(code)["ips_affected"] += 1

    # The dependency extractor emits endpoint IPs pairwise per link.
    link_count = max(1, len(dependencies.get("link_ids", [])))
    capacity_per_link = dependencies.get("total_capacity_gbps", 0.0) / link_count
    for i in range(0, len(ips) - 1, 2):
        code_a = ip_country.get(ips[i])
        code_b = ip_country.get(ips[i + 1])
        for code in {code_a, code_b}:
            if code:
                row = record(code)
                row["links_affected"] += 1
                row["capacity_lost_gbps"] += capacity_per_link

    # Approximate affected networks per country by distinct /24s seen there.
    nets = {}
    for ip in ips:
        code = ip_country.get(ip)
        if not code:
            continue
        net = ip.rsplit(".", 1)[0]
        nets.setdefault(code, set()).add(net)
    for code, net_set in nets.items():
        record(code)["networks_affected"] = len(net_set)

    for code, row in per_country.items():
        denom = totals.get(code, {"links_total": 0, "capacity_total_gbps": 0.0})
        links_total = denom["links_total"] or 1
        ips_total = 2 * links_total
        capacity_total = denom["capacity_total_gbps"] or 1.0
        row["link_fraction"] = round(min(1.0, row["links_affected"] / links_total), 6)
        row["ip_fraction"] = round(min(1.0, row["ips_affected"] / ips_total), 6)
        row["capacity_fraction"] = round(
            min(1.0, row["capacity_lost_gbps"] / capacity_total), 6
        )
        row["score"] = round(
            (row["link_fraction"] + row["ip_fraction"] + row["capacity_fraction"]) / 3.0,
            6,
        )
    return per_country
''')


_register("rank_countries_by_impact", '''
def t_rank_countries_by_impact(impacts):
    """Order per-country impact rows by score, most affected first."""
    rows = list(impacts.values()) if isinstance(impacts, dict) else list(impacts)
    rows.sort(key=lambda r: (r.get("score", 0.0), r.get("ips_affected", 0)), reverse=True)
    return rows
''')


_register("split_events_by_kind", '''
def t_split_events_by_kind(events):
    """Partition catalog events by kind, guaranteeing expected keys."""
    out = {"earthquake": [], "hurricane": [], "cable_cut": []}
    for event in events:
        out.setdefault(event.get("kind", "unknown"), []).append(event)
    return out
''')


_register("combine_reports", '''
def t_combine_reports(reports_a, reports_b=None):
    """Merge per-event impact reports into one global summary."""
    reports = list(reports_a) + list(reports_b or [])
    failed_cables = set()
    failed_links = set()
    country_scores = {}
    capacity = 0.0
    for report in reports:
        failed_cables.update(report.get("failed_cable_ids", []))
        failed_links.update(report.get("failed_link_ids", []))
        capacity += report.get("total_capacity_lost_gbps", 0.0)
        for row in report.get("country_ranking", []):
            code = row["country"]
            country_scores[code] = country_scores.get(code, 0.0) + row.get("score", 0.0)
    ranking = [
        {"country": code, "score": round(score, 6)}
        for code, score in sorted(country_scores.items(), key=lambda kv: kv[1], reverse=True)
    ]
    return {
        "events_combined": len(reports),
        "failed_cable_ids": sorted(failed_cables),
        "failed_link_ids": sorted(failed_links),
        "country_ranking": ranking,
        "total_capacity_lost_gbps": round(capacity, 1),
    }
''')


_register("filter_cables_by_regions", '''
def t_filter_cables_by_regions(cables, region_a, region_b, region_country_map):
    """Keep cables with landing points in both of two continental regions."""
    country_region = {}
    for region, countries in region_country_map.items():
        for code in countries:
            country_region[code] = region
    scoped = []
    for cable in cables:
        regions = {country_region.get(code) for code in cable.get("landing_countries", [])}
        if region_a in regions and region_b in regions:
            scoped.append(cable)
    return {
        "cables": scoped,
        "cable_ids": [c["cable_id"] for c in scoped],
        "cable_names": [c["name"] for c in scoped],
    }
''')


_register("derive_initial_failures", '''
def t_derive_initial_failures(mappings, scoped):
    """Initial failure set: links mapped onto the scoped corridor cables."""
    scoped_ids = set(scoped.get("cable_ids", []))
    failed_link_ids = sorted(
        link_id
        for link_id, row in mappings.items()
        if row.get("cable_id") in scoped_ids
    )
    cable_events = [
        {"kind": "cable_cut", "cable_names": [name], "id": f"cut-{name}"}
        for name in scoped.get("cable_names", [])
    ]
    return {
        "failed_link_ids": failed_link_ids,
        "cable_ids": sorted(scoped_ids),
        "cable_names": list(scoped.get("cable_names", [])),
        "cable_events": cable_events,
    }
''')


_register("propagate_cascade_rounds", '''
def t_propagate_cascade_rounds(initial, mappings, impact,
                               share_threshold=0.7, min_shared=3, max_rounds=6):
    """Propagate cable failures over shared-AS bridges.

    A surviving cable is stressed in proportion to the fraction of its ASes
    that also ride already-failed cables; heavily shared cables (fraction >=
    ``share_threshold`` with at least ``min_shared`` shared ASes) fail in the
    next round.  This is the generated graph algorithm standing in for a
    full load-redistribution simulation.
    """
    cable_ases = {}
    cable_links = {}
    for link_id, row in mappings.items():
        cable_id = row.get("cable_id")
        if cable_id is None:
            continue
        ases = cable_ases.setdefault(cable_id, set())
        for key in ("asn_a", "asn_b"):
            if key in row:
                ases.add(row[key])
        cable_links.setdefault(cable_id, set()).add(link_id)

    failed = set(initial.get("cable_ids", []))
    rounds = []
    for round_index in range(1, max_rounds + 1):
        failed_ases = set()
        for cable_id in failed:
            failed_ases.update(cable_ases.get(cable_id, set()))
        newly = []
        stress = {}
        for cable_id, ases in cable_ases.items():
            if cable_id in failed or not ases:
                continue
            shared = len(ases & failed_ases)
            fraction = shared / len(ases)
            stress[cable_id] = round(fraction, 4)
            if fraction >= share_threshold and shared >= min_shared:
                newly.append(cable_id)
        if not newly:
            break
        newly.sort()
        failed.update(newly)
        rounds.append({
            "round": round_index,
            "newly_failed_cables": newly,
            "stress": {cid: stress[cid] for cid in sorted(stress)},
        })

    isolated = []
    as_cables = {}
    for cable_id, ases in cable_ases.items():
        for asn in ases:
            as_cables.setdefault(asn, set()).add(cable_id)
    for asn, cids in sorted(as_cables.items()):
        if cids and cids.issubset(failed):
            isolated.append(asn)

    failed_links = set(initial.get("failed_link_ids", []))
    for cable_id in failed:
        failed_links.update(cable_links.get(cable_id, set()))
    return {
        "initial_cable_ids": sorted(initial.get("cable_ids", [])),
        "rounds": rounds,
        "final_failed_cables": sorted(failed),
        "final_failed_link_ids": sorted(failed_links),
        "isolated_asns": isolated,
        "total_rounds": len(rounds),
    }
''')


_register("build_cascade_timeline", '''
def t_build_cascade_timeline(impact, cascade, path_changes, latency_series, scoped):
    """Unify impact, cascade, routing and latency into one timeline."""
    events = []
    for cable_id in cascade.get("initial_cable_ids", []):
        events.append({"order": 0, "layer": "cable", "event": "initial_failure",
                       "id": cable_id})
    for rnd in cascade.get("rounds", []):
        for cable_id in rnd.get("newly_failed_cables", []):
            events.append({"order": rnd["round"], "layer": "cable",
                           "event": "cascade_failure", "id": cable_id})
    for link_id in cascade.get("final_failed_link_ids", [])[:200]:
        events.append({"order": 1, "layer": "ip", "event": "link_down", "id": link_id})
    for asn in cascade.get("isolated_asns", []):
        events.append({"order": cascade.get("total_rounds", 0) + 1, "layer": "as",
                       "event": "as_isolated", "id": str(asn)})
    for change in path_changes.get("changes", [])[:100]:
        events.append({"order": 1, "layer": "as", "event": "path_change",
                       "id": change["prefix"],
                       "detail": {"length_delta": change["length_delta"]}})
    for lost in path_changes.get("lost", [])[:100]:
        events.append({"order": 1, "layer": "as", "event": "prefix_unreachable",
                       "id": lost["prefix"]})
    layer_counts = {}
    for event in events:
        layer_counts[event["layer"]] = layer_counts.get(event["layer"], 0) + 1
    degraded_pairs = []
    for key, bins in latency_series.items():
        values = [b["median_rtt_ms"] for b in bins if b.get("median_rtt_ms") is not None]
        if len(values) >= 2 and values[-1] > values[0] * 1.1:
            degraded_pairs.append(key)
    events.sort(key=lambda e: (e["order"], e["layer"], str(e["id"])))
    return {
        "timeline": events,
        "layer_counts": layer_counts,
        "corridor_cables": scoped.get("cable_names", []),
        "country_ranking": impact.get("country_ranking", []),
        "degraded_latency_pairs": sorted(degraded_pairs),
        "cascade_rounds": cascade.get("total_rounds", 0),
    }
''')


_register("summarize_latency_anomalies", '''
def t_summarize_latency_anomalies(anomalies):
    """Consensus view over per-pair latency anomalies."""
    significant = [a for a in anomalies if a.get("significant")]
    if not significant:
        return {
            "anomaly_detected": False,
            "significant_count": 0,
            "affected_pairs": [],
            "onset_estimate": None,
            "onset_end": None,
            "max_increase_pct": 0.0,
            "mean_increase_pct": 0.0,
        }
    onsets = sorted(a["onset_ts"] for a in significant)
    onset = onsets[len(onsets) // 2]
    increases = [a["increase_pct"] for a in significant]
    return {
        "anomaly_detected": True,
        "significant_count": len(significant),
        "affected_pairs": sorted(a["series_key"] for a in significant),
        "onset_estimate": onset,
        "onset_end": onset + 3600.0,
        "onset_spread_s": onsets[-1] - onsets[0],
        "max_increase_pct": max(increases),
        "mean_increase_pct": sum(increases) / len(increases),
        "min_p_value": min(a["p_value"] for a in significant),
    }
''')


_register("score_suspect_cables", '''
def t_score_suspect_cables(anomaly_summary, measurements, mappings):
    """Rank cables by vanished-link evidence on anomalous paths.

    Links present on an anomalous pair's path before the onset but absent
    after it are exactly the links the reroute avoided — the failed
    infrastructure.  Each vanished link votes for its mapped cable
    candidates, weighted by mapping confidence.
    """
    onset = anomaly_summary.get("onset_estimate")
    affected = set(anomaly_summary.get("affected_pairs", []))
    if onset is None or not affected:
        return {"ranking": [], "top_cable_id": None, "top_cable_name": None,
                "margin": 0.0, "vanished_link_count": 0}

    pre_links = {}
    post_links = {}
    for row in measurements:
        pair = f"{row['src_country']}->{row['dst_country']}"
        if pair not in affected:
            continue
        bucket = pre_links if row["ts"] < onset else post_links
        bucket.setdefault(pair, set()).update(row.get("link_ids", []))

    vanished_votes = {}
    for pair, links_before in pre_links.items():
        links_after = post_links.get(pair, set())
        for link_id in links_before - links_after:
            vanished_votes[link_id] = vanished_votes.get(link_id, 0) + 1

    id_to_name = {}
    scores = {}
    for link_id, votes in vanished_votes.items():
        row = mappings.get(link_id)
        if not row:
            continue
        if row.get("cable_name"):
            id_to_name[row["cable_id"]] = row["cable_name"]
        candidates = row.get("candidates", [])
        total = sum(c["score"] for c in candidates) or 1.0
        for candidate in candidates:
            weight = candidate["score"] / total
            cid = candidate["cable_id"]
            scores[cid] = scores.get(cid, 0.0) + votes * weight

    ranking = [
        {"cable_id": cid, "cable_name": id_to_name.get(cid),
         "score": round(score, 4)}
        for cid, score in sorted(scores.items(), key=lambda kv: kv[1], reverse=True)
    ]
    top = ranking[0] if ranking else None
    margin = 0.0
    if len(ranking) >= 2 and ranking[0]["score"] > 0:
        margin = (ranking[0]["score"] - ranking[1]["score"]) / ranking[0]["score"]
    elif len(ranking) == 1:
        margin = 1.0
    return {
        "ranking": ranking,
        "top_cable_id": top["cable_id"] if top else None,
        "top_cable_name": top["cable_name"] if top else None,
        "margin": round(margin, 4),
        "vanished_link_count": len(vanished_votes),
    }
''')


_register("synthesize_forensic_evidence", '''
def t_synthesize_forensic_evidence(latency_summary, suspects, bgp_anomalies,
                                   bgp_correlation):
    """Combine the three evidence strands into a causation verdict."""
    strands = []

    detected = latency_summary.get("anomaly_detected", False)
    stat_strength = 0.0
    if detected:
        stat_strength = min(1.0, latency_summary.get("significant_count", 0) / 5.0)
        stat_strength = max(stat_strength, 0.4)
    strands.append({
        "kind": "statistical",
        "supports": detected,
        "strength": round(stat_strength, 4),
        "detail": f"{latency_summary.get('significant_count', 0)} significant "
                  f"pair anomalies, max increase "
                  f"{latency_summary.get('max_increase_pct', 0):.1f}%",
    })

    margin = suspects.get("margin", 0.0)
    infra_supports = suspects.get("top_cable_id") is not None
    infra_strength = min(1.0, 0.5 + margin / 2.0) if infra_supports else 0.0
    strands.append({
        "kind": "infrastructure",
        "supports": infra_supports,
        "strength": round(infra_strength, 4),
        "detail": f"top suspect {suspects.get('top_cable_id')} with margin "
                  f"{margin:.2f} over runner-up",
    })

    onset = latency_summary.get("onset_estimate")
    bgp_aligned = False
    if onset is not None and bgp_anomalies:
        top = bgp_anomalies[0]
        bgp_aligned = top["window_start"] - 7200 <= onset <= top["window_end"] + 7200
    correlated = bool(bgp_correlation.get("correlated", False))
    routing_supports = bgp_aligned and correlated
    routing_strength = 0.0
    if routing_supports:
        ratio = bgp_correlation.get("rate_ratio", 1.0)
        routing_strength = min(1.0, 0.4 + min(ratio, 10.0) / 20.0)
    strands.append({
        "kind": "routing",
        "supports": routing_supports,
        "strength": round(routing_strength, 4),
        "detail": f"update burst aligned={bgp_aligned}, "
                  f"rate ratio {bgp_correlation.get('rate_ratio', 0)}",
    })

    supporting = [s for s in strands if s["supports"]]
    confidence = sum(s["strength"] for s in supporting) / len(strands)
    confidence += 0.05 * max(0, len({s["kind"] for s in supporting}) - 1)
    confidence = round(min(1.0, confidence), 4)
    if confidence >= 0.6 and len(supporting) == 3:
        verdict = "cable_failure_established"
    elif confidence >= 0.4:
        verdict = "cable_failure_probable"
    else:
        verdict = "inconclusive"

    lines = [f"Verdict: {verdict} (confidence {confidence:.2f})."]
    if suspects.get("top_cable_id"):
        lines.append(
            f"Identified cable: {suspects.get('top_cable_name') or suspects['top_cable_id']}"
        )
    for strand in strands:
        stance = "supports" if strand["supports"] else "does not support"
        lines.append(f"- {strand['kind']}: {stance} ({strand['detail']})")
    return {
        "verdict": verdict,
        "confidence": confidence,
        "identified_cable_id": suspects.get("top_cable_id"),
        "identified_cable_name": suspects.get("top_cable_name"),
        "onset_estimate": onset,
        "strands": strands,
        "narrative": "\\n".join(lines),
    }
''')


# ---------------------------------------------------------------------------
# QA template library
# ---------------------------------------------------------------------------

QA_TEMPLATES: dict[str, str] = {}


def _register_qa(name: str, code: str) -> None:
    if name in QA_TEMPLATES:
        raise ValueError(f"duplicate QA template {name!r}")
    QA_TEMPLATES[name] = code.rstrip() + "\n"


_register_qa("sanity_bounds", '''
def qa_sanity_bounds(results):
    """Walk outputs checking value ranges: scores in [0,1], RTTs positive."""
    violations = []

    def walk(path, value):
        if isinstance(value, dict):
            for key, item in value.items():
                walk(f"{path}.{key}", item)
        elif isinstance(value, list):
            for i, item in enumerate(value[:200]):
                walk(f"{path}[{i}]", item)
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            leaf = path.rsplit(".", 1)[-1].split("[")[0]
            if leaf in ("score", "confidence", "p_value", "fraction") and not (
                -1e-9 <= value <= 1.0 + 1e-9
            ):
                violations.append(f"{path}={value} outside [0,1]")
            if leaf in ("rtt_ms", "median_rtt_ms", "capacity_lost_gbps") and value < 0:
                violations.append(f"{path}={value} negative")

    for step_id, output in results.items():
        walk(step_id, output)
    return {"passed": not violations, "violations": violations[:20],
            "violation_count": len(violations)}
''')


_register_qa("coverage_check", '''
def qa_coverage_check(results):
    """Every step should have produced a non-empty output."""
    empty = []
    for step_id, output in results.items():
        if output is None or (hasattr(output, "__len__") and len(output) == 0):
            empty.append(step_id)
    covered = len(results) - len(empty)
    return {"passed": not empty, "empty_steps": empty,
            "coverage": round(covered / len(results), 4) if results else 0.0}
''')


_register_qa("uncertainty_quantification", '''
def qa_uncertainty_quantification(results):
    """Surface the uncertainty carried by probabilistic intermediate data."""
    report = {}
    for step_id, output in results.items():
        if isinstance(output, dict) and output and all(
            isinstance(v, dict) and "confidence" in v for v in list(output.values())[:5]
        ):
            confidences = [v["confidence"] for v in output.values()]
            confidences.sort()
            n = len(confidences)
            report[step_id] = {
                "kind": "mapping_confidence",
                "count": n,
                "median": confidences[n // 2],
                "below_half": sum(1 for c in confidences if c < 0.5),
            }
        if isinstance(output, list) and output and isinstance(output[0], dict) \\
                and "p_value" in output[0]:
            p_values = [row["p_value"] for row in output]
            report[step_id] = {"kind": "p_values", "count": len(p_values),
                               "max": max(p_values)}
    return {"passed": True, "sources": report}
''')


_register_qa("consistency_cross_source", '''
def qa_consistency_cross_source(results):
    """Cross-source agreement checks, applied where the data allows."""
    checks = []
    outputs = list(results.values())

    deps = next((o for o in outputs if isinstance(o, dict) and "country_codes" in o
                 and "ips" in o), None)
    locations = next((o for o in outputs if isinstance(o, dict) and o and all(
        isinstance(v, dict) and "country" in v for v in list(o.values())[:5]
    )), None)
    if deps is not None and locations is not None:
        geo_countries = {v["country"] for v in locations.values()}
        dep_countries = set(deps["country_codes"])
        overlap = len(geo_countries & dep_countries)
        union = len(geo_countries | dep_countries) or 1
        checks.append({"check": "dependency_vs_geolocation_countries",
                       "jaccard": round(overlap / union, 4),
                       "passed": overlap / union >= 0.5})

    latency = next((o for o in outputs if isinstance(o, dict)
                    and "onset_estimate" in o and "affected_pairs" in o), None)
    bgp = next((o for o in outputs if isinstance(o, list) and o
                and isinstance(o[0], dict) and "window_start" in o[0]
                and "zscore" in o[0]), None)
    if latency is not None and bgp is not None and latency.get("onset_estimate"):
        onset = latency["onset_estimate"]
        aligned = any(a["window_start"] - 7200 <= onset <= a["window_end"] + 7200
                      for a in bgp[:3])
        checks.append({"check": "latency_onset_vs_bgp_burst",
                       "passed": aligned})

    return {"passed": all(c.get("passed", True) for c in checks), "checks": checks}
''')


_register_qa("significance_assessment", '''
def qa_significance_assessment(results):
    """Collect p-values across outputs; flag weak statistical support."""
    p_values = []

    def walk(value):
        if isinstance(value, dict):
            if "p_value" in value and isinstance(value["p_value"], (int, float)):
                p_values.append(float(value["p_value"]))
            for item in value.values():
                walk(item)
        elif isinstance(value, list):
            for item in value[:300]:
                walk(item)

    walk(results)
    significant = sum(1 for p in p_values if p < 0.01)
    return {
        "passed": not p_values or significant > 0,
        "p_value_count": len(p_values),
        "significant_at_1pct": significant,
    }
''')


# ---------------------------------------------------------------------------
# Renderer
# ---------------------------------------------------------------------------

_HELPERS = '''
def _field(value, path):
    """Extract a (possibly dotted) field from a step output."""
    current = value
    for part in path.split("."):
        if isinstance(current, dict):
            current = current[part]
        else:
            current = getattr(current, part)
    return current
'''


def count_loc(source: str) -> int:
    """Non-blank, non-comment source lines (docstrings count: they are code)."""
    return sum(
        1
        for line in source.splitlines()
        if line.strip() and not line.strip().startswith("#")
    )


def _binding_expr(binding: str, foreach_active: bool) -> str:
    if binding == "item":
        if not foreach_active:
            raise ValueError("'item' binding outside a foreach step")
        return "_item"
    kind, payload = binding.split(":", 1)
    if kind == "workflow":
        return f'params["{payload}"]'
    if kind == "const":
        return repr(json.loads(payload))
    if kind == "step":
        if "." in payload:
            step_id, path = payload.split(".", 1)
            return f'_field(results["{step_id}"], "{path}")'
        return f'results["{payload}"]'
    raise ValueError(f"unknown binding {binding!r}")


def generate_solution(
    design: WorkflowDesign,
    plan: dict,
    query: str,
) -> GeneratedSolution:
    """Render a workflow design plus weaver plan into executable source."""
    steps_by_id = {step.id: step for step in design.chosen.steps}
    order = [sid for sid in plan.get("step_order", []) if sid in steps_by_id]
    for step in design.chosen.steps:  # append anything the plan missed
        if step.id not in order:
            order.append(step.id)

    used_transforms = sorted(
        {
            step.target
            for step in design.chosen.steps
            if step.step_type is StepType.TRANSFORM
        }
    )
    for name in used_transforms:
        if name not in TRANSFORM_TEMPLATES:
            raise ValueError(f"no template for transform {name!r}")
    qa_checks = [name for name in plan.get("qa_checks", []) if name in QA_TEMPLATES]

    lines: list[str] = []
    emit = lines.append
    emit('"""Measurement workflow generated by ArachNet.')
    emit("")
    emit(f"Query: {query}")
    emit("")
    emit("This module was produced by the SolutionWeaver agent from a")
    emit("WorkflowScout design.  It talks to measurement tools exclusively")
    emit("through the provided tool catalog and embeds quality assurance")
    emit("checks whose results accompany the analytical output.")
    emit('"""')
    emit("")
    emit(_HELPERS.strip())
    emit("")

    for name in used_transforms:
        emit("")
        emit(TRANSFORM_TEMPLATES[name].strip())
        emit("")
    for name in qa_checks:
        emit("")
        emit(QA_TEMPLATES[name].strip())
        emit("")

    defaults_repr = repr(design.param_defaults)
    emit("")
    emit("def run(catalog, params=None):")
    emit('    """Execute the workflow against a tool catalog."""')
    emit(f"    defaults = {defaults_repr}")
    emit("    params = {**defaults, **(params or {})}")
    emit("    results = {}")

    for sid in order:
        step = steps_by_id[sid]
        emit("")
        note = step.note or step.target
        emit(f"    # step {sid}: {note}")
        if step.step_type is StepType.REGISTRY:
            if step.foreach:
                items_expr = _binding_expr(step.foreach, foreach_active=False)
                kwargs = ", ".join(
                    f"{param}={_binding_expr(binding, foreach_active=True)}"
                    for param, binding in sorted(step.inputs.items())
                )
                emit(f"    _items = {items_expr}")
                emit("    _collected = []")
                emit("    for _item in _items:")
                emit(f'        _collected.append(catalog.call("{step.target}", {kwargs}))')
                emit(f'    results["{sid}"] = _collected')
            else:
                kwargs = ", ".join(
                    f"{param}={_binding_expr(binding, foreach_active=False)}"
                    for param, binding in sorted(step.inputs.items())
                )
                emit(f'    results["{sid}"] = catalog.call("{step.target}", {kwargs})')
        else:
            kwargs = ", ".join(
                f"{param}={_binding_expr(binding, foreach_active=False)}"
                for param, binding in sorted(step.inputs.items())
            )
            emit(f'    results["{sid}"] = t_{step.target}({kwargs})')

    emit("")
    emit("    quality_report = {}")
    for name in qa_checks:
        emit(f'    quality_report["{name}"] = qa_{name}(results)')
    final_sid = order[-1] if order else ""
    emit("    return {")
    emit('        "results": results,')
    emit('        "quality_report": quality_report,')
    emit(f'        "final": results.get("{final_sid}"),')
    emit("    }")
    emit("")

    source = "\n".join(lines)
    compile(source, "<arachnet-generated>", "exec")  # fail fast on bad codegen
    return GeneratedSolution(
        source_code=source,
        entrypoint="run",
        qa_checks=qa_checks,
        adapters=[a["description"] for a in plan.get("adapters", [])],
        loc=count_loc(source),
        notes=plan.get("notes", ""),
    )
