"""Execution of generated solutions.

The generated module runs in a fresh namespace with access to nothing but
the tool catalog and its parameters — the sandbox a careful operator would
give machine-written code.  Failures are captured into the outcome rather
than raised, because a failed execution is itself a pipeline result (the
curator must see it to reject patterns from it).
"""

from __future__ import annotations

import traceback

from repro.core.artifacts import ExecutionOutcome, GeneratedSolution
from repro.core.catalog import ToolCatalog


def builtins_dict(builtins=None) -> dict:
    """Normalize ``__builtins__`` to a plain dict.

    At module scope ``__builtins__`` is the ``builtins`` module in ``__main__``
    but a plain dict in imported modules; handing either form through to
    ``exec`` unchanged makes the sandbox namespace depend on how the executor
    itself was imported.
    """
    if builtins is None:
        builtins = __builtins__
    if isinstance(builtins, dict):
        return dict(builtins)
    return dict(vars(builtins))


def execute_solution(
    solution: GeneratedSolution,
    catalog: ToolCatalog,
    params: dict | None = None,
) -> ExecutionOutcome:
    """Run a generated solution against a catalog."""
    namespace: dict = {"__name__": "arachnet_generated", "__builtins__": builtins_dict()}
    try:
        exec(compile(solution.source_code, "<arachnet-generated>", "exec"), namespace)
    except Exception:
        return ExecutionOutcome(
            succeeded=False,
            error="generated module failed to load:\n" + traceback.format_exc(limit=4),
        )
    entry = namespace.get(solution.entrypoint)
    if not callable(entry):
        return ExecutionOutcome(
            succeeded=False,
            error=f"generated module has no callable {solution.entrypoint!r}",
        )
    try:
        output = entry(catalog, params or {})
    except Exception:
        return ExecutionOutcome(
            succeeded=False,
            error="generated workflow raised:\n" + traceback.format_exc(limit=6),
        )
    if not isinstance(output, dict) or "results" not in output:
        return ExecutionOutcome(
            succeeded=False,
            error=f"generated workflow returned unexpected shape: {type(output).__name__}",
        )
    return ExecutionOutcome(
        succeeded=True,
        outputs=output,
        quality_report=output.get("quality_report", {}),
    )
