"""The ArachNet pipeline: query in, executed measurement workflow out.

Wires the four agents over one registry and one measurement context,
implementing both operating modes from §3:

* **standard** — fully automated: QueryMind → WorkflowScout →
  SolutionWeaver → execution → RegistryCurator.
* **expert** — the same pipeline with review hooks between stages; each
  hook receives the in-flight artifact and may return a modified one.

Each stage is individually invokable (``run_analysis`` … ``run_curation``)
so the serve layer can drive, memoize and time them one at a time;
``answer`` remains the one-shot composition.  Stages whose output is a
pure function of their inputs (analysis, design, solution) are
content-addressed against an optional artifact cache — execution is never
cached because it observes the live measurement context.
"""

from __future__ import annotations

import threading
from contextlib import nullcontext
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable

from repro.core.agents import QueryMind, RegistryCurator, SolutionWeaver, WorkflowScout
from repro.core.artifacts import (
    CuratorReport,
    ExecutionOutcome,
    GeneratedSolution,
    PipelineResult,
    ProblemAnalysis,
    StageTrace,
    WorkflowDesign,
)
from repro.core.catalog import MeasurementContext, ToolCatalog
from repro.core.executor import execute_solution
from repro.core.llm.client import LLMClient
from repro.core.llm.simulated import SimulatedLLM
from repro.core.registry import Registry, default_registry
from repro.obs import resolve_tracer
from repro.synth.geography import Region
from repro.synth.scenarios import SECONDS_PER_DAY
from repro.synth.world import SyntheticWorld

#: An observer receives one :class:`StageTrace` per completed stage.
StageObserver = Callable[[StageTrace], None]


@dataclass
class ExpertHooks:
    """Optional review callbacks for expert mode.

    Each hook takes the stage artifact and returns the (possibly modified)
    artifact — mirroring "specialists can review and adjust outputs between
    agents before proceeding to the next stage".
    """

    on_analysis: Callable[[ProblemAnalysis], ProblemAnalysis] | None = None
    on_design: Callable[[WorkflowDesign], WorkflowDesign] | None = None
    on_solution: Callable[[GeneratedSolution], GeneratedSolution] | None = None
    on_execution: Callable[[ExecutionOutcome], ExecutionOutcome] | None = None


def build_data_context(world: SyntheticWorld) -> dict:
    """The grounding facts QueryMind receives about the measurement domain.

    Describes the world's vocabulary (cable names, regions, disaster kinds)
    — never its internal state or any incident ground truth.
    """
    region_country_map: dict[str, list[str]] = {}
    for country in world.countries.values():
        region_country_map.setdefault(country.region.value, []).append(country.code)
    return {
        "cable_names": world.cable_names(),
        "regions": [r.value for r in Region],
        "region_country_map": {k: sorted(v) for k, v in region_country_map.items()},
        "disaster_kinds": ["earthquake", "hurricane", "cable_cut"],
        "country_codes": sorted(world.countries.keys()),
    }


def standard_params(world: SyntheticWorld, entities: dict) -> dict:
    """Derive default execution parameters from the analysis entities.

    The observation window ends "now" (the context's latest timestamp) and
    reaches back far enough to cover the onset the query mentions plus a
    baseline — roughly double the lookback, floored at seven days.
    """
    days_since_onset = float(entities.get("days_since_onset", 3))
    history_days = max(7.0, days_since_onset * 2 + 1)
    now_ts = history_days * SECONDS_PER_DAY
    return {
        "now_ts": now_ts,
        "window_start": 0.0,
        "window_end": now_ts,
        "seed": 0,
    }


@dataclass
class ArachNet:
    """The assembled system.

    ``cache`` is any object exposing ``fetch(stage, material) -> dict | None``
    and ``store(stage, material, payload)`` (see
    :class:`repro.serve.cache.ArtifactCache`); when set, the three
    deterministic agent stages are memoized content-addressed on their
    inputs.  ``ArachNet`` instances are safe to share across worker threads:
    the agents are stateless between calls, and when ``curate`` is enabled
    every stage that iterates the (then-mutable) registry runs under one
    internal lock — curation trades stage concurrency for registry
    consistency, which is why serving defaults to ``curate=False``.
    """

    registry: Registry
    context: MeasurementContext
    llm: LLMClient = field(default_factory=SimulatedLLM)
    mode: str = "standard"  # "standard" | "expert"
    hooks: ExpertHooks = field(default_factory=ExpertHooks)
    curate: bool = True
    cache: object | None = None

    def __post_init__(self) -> None:
        if self.mode not in ("standard", "expert"):
            raise ValueError(f"unknown mode {self.mode!r}")
        self._querymind = QueryMind(self.llm, self.registry)
        self._scout = WorkflowScout(self.llm, self.registry)
        self._weaver = SolutionWeaver(self.llm, self.registry)
        self._curator = RegistryCurator(self.llm, self.registry)
        # The data context depends only on the world, which is immutable for
        # the lifetime of the system — derive it once, not per query.
        self._data_context = build_data_context(self.context.world)
        # Guards registry mutation (curation) and, when curation is on, the
        # registry-iterating reads inside agent stages (fingerprinting and
        # prompt rendering) that would otherwise race it.  RLock because a
        # stage computes its cache key and renders prompts in one scope.
        self._curate_lock = threading.RLock()

    @classmethod
    def for_world(
        cls,
        world: SyntheticWorld,
        registry: Registry | None = None,
        incidents: list | None = None,
        **kwargs,
    ) -> "ArachNet":
        return cls(
            registry=registry if registry is not None else default_registry(),
            context=MeasurementContext(world=world, incidents=list(incidents or [])),
            **kwargs,
        )

    @property
    def data_context(self) -> dict:
        return self._data_context

    # -- individually invokable stages ------------------------------------

    def run_analysis(
        self, query: str, observer: StageObserver | None = None
    ) -> ProblemAnalysis:
        """QueryMind: natural-language query → :class:`ProblemAnalysis`."""
        artifact, hit, duration = self._cached_stage(
            "analysis",
            lambda: {
                "query": query,
                "data_context": self._data_context,
                "registry": self.registry.fingerprint(),
            },
            compute=lambda: self._querymind.analyze(query, self._data_context),
            from_dict=ProblemAnalysis.from_dict,
        )
        artifact, reviewed = self._review(artifact, self.hooks.on_analysis)
        self._notify(observer, StageTrace("querymind", "ProblemAnalysis",
                                          reviewed, hit, duration))
        return artifact

    def run_design(
        self, analysis: ProblemAnalysis, observer: StageObserver | None = None
    ) -> WorkflowDesign:
        """WorkflowScout: analysis → :class:`WorkflowDesign`."""
        artifact, hit, duration = self._cached_stage(
            "design",
            lambda: {
                "analysis": analysis.to_dict(),
                "registry": self.registry.fingerprint(),
            },
            compute=lambda: self._scout.design(analysis),
            from_dict=WorkflowDesign.from_dict,
        )
        artifact, reviewed = self._review(artifact, self.hooks.on_design)
        self._notify(observer, StageTrace("workflowscout", "WorkflowDesign",
                                          reviewed, hit, duration))
        return artifact

    def run_solution(
        self,
        design: WorkflowDesign,
        analysis: ProblemAnalysis,
        observer: StageObserver | None = None,
    ) -> GeneratedSolution:
        """SolutionWeaver: design (+ analysis) → :class:`GeneratedSolution`."""
        artifact, hit, duration = self._cached_stage(
            "solution",
            lambda: {
                "design": design.to_dict(),
                "analysis": analysis.to_dict(),
                "registry": self.registry.fingerprint(),
            },
            compute=lambda: self._weaver.implement(design, analysis),
            from_dict=GeneratedSolution.from_dict,
        )
        artifact, reviewed = self._review(artifact, self.hooks.on_solution)
        self._notify(observer, StageTrace("solutionweaver", "GeneratedSolution",
                                          reviewed, hit, duration))
        return artifact

    def run_execution(
        self,
        solution: GeneratedSolution,
        design: WorkflowDesign,
        analysis: ProblemAnalysis,
        params: dict | None = None,
        observer: StageObserver | None = None,
    ) -> ExecutionOutcome:
        """Run the generated solution against the live measurement context.

        Never cached: outputs depend on the context's world *and* ambient
        incidents, which are exactly what a measurement observes.
        """
        run_params = {**standard_params(self.context.world, analysis.entities),
                      **design.param_defaults, **(params or {})}
        catalog = ToolCatalog(self.registry, self.context)
        started = perf_counter()
        execution = execute_solution(solution, catalog, run_params)
        duration = perf_counter() - started
        execution, reviewed = self._review(execution, self.hooks.on_execution)
        self._notify(observer, StageTrace("executor", "ExecutionOutcome",
                                          reviewed, False, duration))
        return execution

    def run_curation(
        self,
        design: WorkflowDesign,
        execution: ExecutionOutcome,
        observer: StageObserver | None = None,
    ) -> CuratorReport:
        """RegistryCurator: learn from the executed workflow.

        Serialized under a lock because validated candidates mutate the
        shared registry.
        """
        started = perf_counter()
        with self._curate_lock:
            report = self._curator.curate(design, execution, self.registry)
        duration = perf_counter() - started
        self._notify(observer, StageTrace("registrycurator", "CuratorReport",
                                          False, False, duration))
        return report

    # -- one-shot composition ---------------------------------------------

    def answer(
        self,
        query: str,
        params: dict | None = None,
        observer: StageObserver | None = None,
        tracer=None,
        trace_parent=None,
    ) -> PipelineResult:
        """Run the full pipeline for one natural-language query.

        ``tracer``/``trace_parent`` hook the run into the obs plane: one
        ``pipeline.answer`` span with a child span per stage, cache hits
        annotated.  Spans are recorded off to the side — they never touch
        the ``PipelineResult``, so artifact digests stay byte-identical
        whether tracing is on or off.
        """
        tracer = resolve_tracer(tracer)
        root = tracer.start_span("pipeline.answer", parent=trace_parent,
                                 cat="pipeline", query=query)
        trace: list[StageTrace] = []

        def observe(record: StageTrace) -> None:
            trace.append(record)
            if tracer.enabled:
                tracer.add_span(
                    "stage." + record.agent,
                    parent=root,
                    cat="stage",
                    duration_s=record.duration_s,
                    artifact=record.artifact_kind,
                    cache_hit=record.cache_hit,
                )
            if observer is not None:
                observer(record)

        try:
            analysis = self.run_analysis(query, observe)
            design = self.run_design(analysis, observe)
            solution = self.run_solution(design, analysis, observe)
            execution = self.run_execution(solution, design, analysis, params, observe)
            curator_report = self.run_curation(design, execution, observe) if self.curate else None
            root.annotate(succeeded=execution.succeeded)
        finally:
            root.end()

        return PipelineResult(
            query=query,
            analysis=analysis,
            design=design,
            solution=solution,
            execution=execution,
            curator=curator_report,
            stage_trace=trace,
        )

    # -- plumbing ----------------------------------------------------------

    def _cached_stage(self, stage, material_fn, compute, from_dict):
        started = perf_counter()
        with self._registry_guard():
            material = material_fn()
            if self.cache is not None:
                payload = self.cache.fetch(stage, material)
                if payload is not None:
                    return from_dict(payload), True, perf_counter() - started
            artifact = compute()
            if self.cache is not None:
                self.cache.store(stage, material, artifact.to_dict())
        return artifact, False, perf_counter() - started

    def _registry_guard(self):
        """Stages iterate the registry (fingerprints, prompt rendering);
        when curation can mutate it concurrently, they must serialize."""
        return self._curate_lock if self.curate else nullcontext()

    def _review(self, artifact, hook):
        if self.mode == "expert" and hook is not None:
            return hook(artifact), True
        return artifact, False

    @staticmethod
    def _notify(observer: StageObserver | None, record: StageTrace) -> None:
        if observer is not None:
            observer(record)
