"""The ArachNet pipeline: query in, executed measurement workflow out.

Wires the four agents over one registry and one measurement context,
implementing both operating modes from §3:

* **standard** — fully automated: QueryMind → WorkflowScout →
  SolutionWeaver → execution → RegistryCurator.
* **expert** — the same pipeline with review hooks between stages; each
  hook receives the in-flight artifact and may return a modified one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.agents import QueryMind, RegistryCurator, SolutionWeaver, WorkflowScout
from repro.core.artifacts import (
    ExecutionOutcome,
    GeneratedSolution,
    PipelineResult,
    ProblemAnalysis,
    StageTrace,
    WorkflowDesign,
)
from repro.core.catalog import MeasurementContext, ToolCatalog
from repro.core.executor import execute_solution
from repro.core.llm.client import LLMClient
from repro.core.llm.simulated import SimulatedLLM
from repro.core.registry import Registry, default_registry
from repro.synth.geography import Region
from repro.synth.scenarios import SECONDS_PER_DAY
from repro.synth.world import SyntheticWorld


@dataclass
class ExpertHooks:
    """Optional review callbacks for expert mode.

    Each hook takes the stage artifact and returns the (possibly modified)
    artifact — mirroring "specialists can review and adjust outputs between
    agents before proceeding to the next stage".
    """

    on_analysis: Callable[[ProblemAnalysis], ProblemAnalysis] | None = None
    on_design: Callable[[WorkflowDesign], WorkflowDesign] | None = None
    on_solution: Callable[[GeneratedSolution], GeneratedSolution] | None = None
    on_execution: Callable[[ExecutionOutcome], ExecutionOutcome] | None = None


def build_data_context(world: SyntheticWorld) -> dict:
    """The grounding facts QueryMind receives about the measurement domain.

    Describes the world's vocabulary (cable names, regions, disaster kinds)
    — never its internal state or any incident ground truth.
    """
    region_country_map: dict[str, list[str]] = {}
    for country in world.countries.values():
        region_country_map.setdefault(country.region.value, []).append(country.code)
    return {
        "cable_names": world.cable_names(),
        "regions": [r.value for r in Region],
        "region_country_map": {k: sorted(v) for k, v in region_country_map.items()},
        "disaster_kinds": ["earthquake", "hurricane", "cable_cut"],
        "country_codes": sorted(world.countries.keys()),
    }


def standard_params(world: SyntheticWorld, entities: dict) -> dict:
    """Derive default execution parameters from the analysis entities.

    The observation window ends "now" (the context's latest timestamp) and
    reaches back far enough to cover the onset the query mentions plus a
    baseline — roughly double the lookback, floored at seven days.
    """
    days_since_onset = float(entities.get("days_since_onset", 3))
    history_days = max(7.0, days_since_onset * 2 + 1)
    now_ts = history_days * SECONDS_PER_DAY
    return {
        "now_ts": now_ts,
        "window_start": 0.0,
        "window_end": now_ts,
        "seed": 0,
    }


@dataclass
class ArachNet:
    """The assembled system."""

    registry: Registry
    context: MeasurementContext
    llm: LLMClient = field(default_factory=SimulatedLLM)
    mode: str = "standard"  # "standard" | "expert"
    hooks: ExpertHooks = field(default_factory=ExpertHooks)
    curate: bool = True

    def __post_init__(self) -> None:
        if self.mode not in ("standard", "expert"):
            raise ValueError(f"unknown mode {self.mode!r}")
        self._querymind = QueryMind(self.llm, self.registry)
        self._scout = WorkflowScout(self.llm, self.registry)
        self._weaver = SolutionWeaver(self.llm, self.registry)
        self._curator = RegistryCurator(self.llm, self.registry)

    @classmethod
    def for_world(
        cls,
        world: SyntheticWorld,
        registry: Registry | None = None,
        incidents: list | None = None,
        **kwargs,
    ) -> "ArachNet":
        return cls(
            registry=registry if registry is not None else default_registry(),
            context=MeasurementContext(world=world, incidents=list(incidents or [])),
            **kwargs,
        )

    def answer(self, query: str, params: dict | None = None) -> PipelineResult:
        """Run the full pipeline for one natural-language query."""
        trace: list[StageTrace] = []
        expert = self.mode == "expert"

        analysis = self._querymind.analyze(query, build_data_context(self.context.world))
        if expert and self.hooks.on_analysis:
            analysis = self.hooks.on_analysis(analysis)
        trace.append(StageTrace("querymind", "ProblemAnalysis",
                                expert and self.hooks.on_analysis is not None))

        design = self._scout.design(analysis)
        if expert and self.hooks.on_design:
            design = self.hooks.on_design(design)
        trace.append(StageTrace("workflowscout", "WorkflowDesign",
                                expert and self.hooks.on_design is not None))

        solution = self._weaver.implement(design, analysis)
        if expert and self.hooks.on_solution:
            solution = self.hooks.on_solution(solution)
        trace.append(StageTrace("solutionweaver", "GeneratedSolution",
                                expert and self.hooks.on_solution is not None))

        run_params = {**standard_params(self.context.world, analysis.entities),
                      **design.param_defaults, **(params or {})}
        catalog = ToolCatalog(self.registry, self.context)
        execution = execute_solution(solution, catalog, run_params)
        if expert and self.hooks.on_execution:
            execution = self.hooks.on_execution(execution)
        trace.append(StageTrace("executor", "ExecutionOutcome",
                                expert and self.hooks.on_execution is not None))

        curator_report = None
        if self.curate:
            curator_report = self._curator.curate(design, execution, self.registry)
            trace.append(StageTrace("registrycurator", "CuratorReport", False))

        return PipelineResult(
            query=query,
            analysis=analysis,
            design=design,
            solution=solution,
            execution=execution,
            curator=curator_report,
            stage_trace=trace,
        )
