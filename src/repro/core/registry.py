"""The Registry: ArachNet's curated catalog of measurement capabilities.

The paper's key design insight (§3): agents reason over *capability
descriptions*, not codebases.  Each entry records what a tool can do, its
inputs/outputs and constraints — "a measurement API for intelligent
composition" that scales linearly with available tools.  Entries bind to
real callables through a dotted ``callable_ref`` resolved by the tool
catalog at execution time.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field


@dataclass(frozen=True)
class RegistryEntry:
    """One measurement capability."""

    name: str  # "framework.function", e.g. "nautilus.get_cable_dependencies"
    framework: str
    summary: str
    capabilities: tuple[str, ...]  # semantic tags for matching
    inputs: tuple[tuple[str, str], ...]  # (param, type/shape description)
    outputs: tuple[tuple[str, str], ...]
    constraints: tuple[str, ...] = ()
    cost_hint: str = "cheap"  # "cheap" | "moderate" | "expensive"
    callable_ref: str = ""  # dotted path, e.g. "repro.nautilus.api:get_cable_info"
    provenance: str = "curated"  # "curated" | "curator"

    def __post_init__(self) -> None:
        if "." not in self.name:
            raise ValueError(f"entry name must be framework.function, got {self.name!r}")
        if self.name.split(".", 1)[0] != self.framework:
            raise ValueError(f"name {self.name!r} does not match framework {self.framework!r}")
        if not self.capabilities:
            raise ValueError(f"entry {self.name!r} declares no capabilities")

    def matches(self, wanted_capabilities: list[str]) -> int:
        """How many wanted capability tags this entry provides."""
        have = set(self.capabilities)
        return sum(1 for tag in wanted_capabilities if tag in have)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "framework": self.framework,
            "summary": self.summary,
            "capabilities": list(self.capabilities),
            "inputs": [{"param": p, "type": t} for p, t in self.inputs],
            "outputs": [{"name": n, "type": t} for n, t in self.outputs],
            "constraints": list(self.constraints),
            "cost_hint": self.cost_hint,
            "provenance": self.provenance,
        }


class RegistryError(KeyError):
    """Raised on lookups of unknown entries (with suggestions)."""


@dataclass
class Registry:
    """A mutable collection of entries with lookup and rendering helpers.

    Mutation goes through :meth:`add` — it is what keeps the memoized
    fingerprint honest.
    """

    entries: dict[str, RegistryEntry] = field(default_factory=dict)
    _fingerprint: str | None = field(default=None, init=False, repr=False, compare=False)

    def add(self, entry: RegistryEntry) -> None:
        if entry.name in self.entries:
            raise ValueError(f"duplicate registry entry {entry.name!r}")
        self.entries[entry.name] = entry
        self._fingerprint = None

    def get(self, name: str) -> RegistryEntry:
        try:
            return self.entries[name]
        except KeyError:
            known = sorted(self.entries)
            raise RegistryError(f"unknown registry entry {name!r}; known: {known}") from None

    def __contains__(self, name: str) -> bool:
        return name in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    def names(self) -> list[str]:
        return sorted(self.entries)

    def frameworks(self) -> list[str]:
        return sorted({e.framework for e in self.entries.values()})

    def find_by_capability(self, tags: list[str]) -> list[RegistryEntry]:
        """Entries providing at least one wanted tag, best matches first."""
        scored = [
            (entry.matches(tags), entry.name, entry)
            for entry in self.entries.values()
            if entry.matches(tags) > 0
        ]
        scored.sort(key=lambda t: (-t[0], t[1]))
        return [entry for _, _, entry in scored]

    def subset(self, names: list[str] | None = None, frameworks: list[str] | None = None) -> "Registry":
        """A restricted view — how case study 1 withholds Xaminer's tools."""
        out = Registry()
        for entry in self.entries.values():
            if names is not None and entry.name not in names:
                continue
            if frameworks is not None and entry.framework not in frameworks:
                continue
            out.add(entry)
        return out

    def to_prompt_text(self) -> str:
        """Compact JSON rendering injected into agent prompts.

        The size of this string is the agent's "context cost" for the
        registry — the registry-scaling benchmark measures how it grows with
        the number of tools.
        """
        rows = [self.entries[name].to_dict() for name in self.names()]
        return json.dumps(rows, indent=None, separators=(",", ":"))

    def fingerprint(self) -> str:
        """Content hash of every entry — the cache-key component that makes
        memoized stage artifacts invalid the moment the registry evolves
        (e.g. the curator promotes a new composite entry).  Memoized until
        the next :meth:`add`, since stage caching consults it per call.
        """
        if self._fingerprint is None:
            self._fingerprint = hashlib.sha256(
                self.to_prompt_text().encode("utf-8")
            ).hexdigest()[:16]
        return self._fingerprint

    def clone(self) -> "Registry":
        out = Registry()
        for entry in self.entries.values():
            out.add(entry)
        return out


def _entry(
    name: str,
    summary: str,
    capabilities: list[str],
    inputs: list[tuple[str, str]],
    outputs: list[tuple[str, str]],
    callable_ref: str,
    constraints: list[str] | None = None,
    cost_hint: str = "cheap",
) -> RegistryEntry:
    return RegistryEntry(
        name=name,
        framework=name.split(".", 1)[0],
        summary=summary,
        capabilities=tuple(capabilities),
        inputs=tuple(inputs),
        outputs=tuple(outputs),
        constraints=tuple(constraints or ()),
        cost_hint=cost_hint,
        callable_ref=callable_ref,
    )


def default_registry() -> Registry:
    """The curated registry over every measurement substrate in this repo."""
    registry = Registry()

    # --- Nautilus: cross-layer cartography ---------------------------------
    registry.add(_entry(
        "nautilus.list_cables",
        "List all known submarine cables with coarse metadata.",
        ["cable_inventory", "infrastructure_catalog"],
        [],
        [("cables", "list of {cable_id,name,length_km,capacity_tbps,landing_countries}")],
        "repro.nautilus.api:list_cables",
    ))
    registry.add(_entry(
        "nautilus.get_cable_info",
        "Detailed record for one cable: landing points, segments, owners.",
        ["cable_metadata", "landing_points", "infrastructure_catalog"],
        [("cable_name", "str — human cable name")],
        [("info", "dict with landing_points and segments")],
        "repro.nautilus.api:get_cable_info",
    ))
    registry.add(_entry(
        "nautilus.map_ip_links_to_cables",
        "Map every submarine IP link to its most plausible cable with confidence.",
        ["cross_layer_mapping", "ip_to_cable", "link_mapping"],
        [],
        [("mappings", "dict link_id -> {cable_id,confidence,candidates}")],
        "repro.nautilus.api:map_ip_links_to_cables",
        constraints=["confidence is probabilistic; parallel systems may be ambiguous"],
        cost_hint="moderate",
    ))
    registry.add(_entry(
        "nautilus.get_cable_dependencies",
        "Everything that depends on one cable: IP links, IPs, ASes, countries.",
        ["cable_dependencies", "dependency_extraction", "ip_extraction"],
        [("cable_name", "str — human cable name")],
        [("dependencies", "dict {link_ids,ips,asns,as_adjacencies,country_codes,total_capacity_gbps}")],
        "repro.nautilus.api:get_cable_dependencies",
        cost_hint="moderate",
    ))
    registry.add(_entry(
        "nautilus.geolocate_ips",
        "Geolocate a batch of IPs to coordinates and countries.",
        ["geolocation", "geographic_mapping", "ip_to_country"],
        [("ips", "list[str] of IP addresses")],
        [("locations", "dict ip -> {lat,lon,country,uncertainty_km}")],
        "repro.nautilus.api:geolocate_ips",
    ))
    registry.add(_entry(
        "nautilus.sol_validate_link",
        "Check an observed link RTT against the speed-of-light bound.",
        ["sol_validation", "feasibility_check"],
        [("link_id", "str"), ("observed_rtt_ms", "float")],
        [("verdict", "dict {feasible,min_rtt_ms,distance_km}")],
        "repro.nautilus.api:sol_validate_link",
    ))

    # --- Xaminer: resilience analysis --------------------------------------
    registry.add(_entry(
        "xaminer.process_event",
        "Process one event (cable cut, earthquake or hurricane) end to end: "
        "footprint, probabilistic failures, country and AS impact rankings.",
        ["event_processing", "failure_simulation", "impact_analysis",
         "country_aggregation", "as_aggregation"],
        [("event_spec", "dict {kind,center,radius_km,magnitude,cable_names}"),
         ("failure_probability", "float in [0,1]"), ("seed", "int")],
        [("report", "dict {failed_cable_ids,failed_link_ids,country_ranking,as_ranking,...}")],
        "repro.xaminer.api:process_event",
        constraints=["one event per call; combine reports for multi-event analyses"],
        cost_hint="moderate",
    ))
    registry.add(_entry(
        "xaminer.country_impact",
        "Country-level impact ranking for an explicit failed-link set.",
        ["impact_analysis", "country_aggregation"],
        [("failed_link_ids", "list[str]")],
        [("ranking", "list of {country,score,...} rows")],
        "repro.xaminer.api:country_impact",
    ))
    registry.add(_entry(
        "xaminer.as_impact",
        "AS-level impact ranking for an explicit failed-link set.",
        ["impact_analysis", "as_aggregation"],
        [("failed_link_ids", "list[str]")],
        [("ranking", "list of {asn,fraction,isolated,...} rows")],
        "repro.xaminer.api:as_impact",
    ))
    registry.add(_entry(
        "xaminer.risk_profile",
        "Structural cable-dependency risk profile for a country (or the most exposed countries).",
        ["risk_assessment", "exposure_analysis"],
        [("country_code", "str ISO-2 or null")],
        [("profile", "dict or list[dict]")],
        "repro.xaminer.api:risk_profile",
    ))
    registry.add(_entry(
        "xaminer.list_disasters",
        "Catalog of disaster scenarios (earthquakes, hurricanes) with severity.",
        ["disaster_catalog", "event_inventory"],
        [("severe_only", "bool")],
        [("events", "list of {id,kind,name,center,radius_km,magnitude,severe}")],
        "repro.xaminer.api:list_disasters",
    ))
    registry.add(_entry(
        "xaminer.combine_impact_reports",
        "Merge per-event impact reports into one global summary.",
        ["report_combination", "aggregation"],
        [("reports", "list of process_event outputs")],
        [("combined", "dict {country_ranking,failed_cable_ids,...}")],
        "repro.xaminer.api:combine_impact_reports",
    ))

    # --- BGP -----------------------------------------------------------------
    registry.add(_entry(
        "bgp.fetch_updates",
        "BGP updates recorded by the collector over a time window.",
        ["bgp_updates", "routing_data", "temporal_data"],
        [("window_start", "float unix-ish seconds"), ("window_end", "float")],
        [("updates", "list of {ts,peer_asn,kind,prefix,as_path} rows")],
        "repro.bgp.api:fetch_updates",
        constraints=["volume grows with window length"],
        cost_hint="moderate",
    ))
    registry.add(_entry(
        "bgp.detect_routing_anomalies",
        "Anomalous update-volume windows (robust z-score over binned counts).",
        ["routing_anomaly_detection", "anomaly_detection"],
        [("update_rows", "list from bgp.fetch_updates"),
         ("window_start", "float"), ("window_end", "float")],
        [("anomalies", "list of {window_start,update_count,zscore,withdrawal_fraction}")],
        "repro.bgp.api:detect_routing_anomalies",
    ))
    registry.add(_entry(
        "bgp.summarize_path_changes",
        "Path dynamics in an update stream: changed paths, lost prefixes, inflation.",
        ["path_analysis", "route_change_detection"],
        [("update_rows", "list from bgp.fetch_updates")],
        [("summary", "dict {changed_count,lost_count,mean_length_delta,changes}")],
        "repro.bgp.api:summarize_path_changes",
    ))
    registry.add(_entry(
        "bgp.correlate_updates_with_window",
        "How strongly routing activity concentrates around a suspect time window.",
        ["temporal_correlation", "routing_validation"],
        [("update_rows", "list"), ("anomaly_start", "float"), ("anomaly_end", "float")],
        [("correlation", "dict {rate_ratio,correlated}")],
        "repro.bgp.api:correlate_updates_with_window",
    ))

    # --- Traceroute ----------------------------------------------------------
    registry.add(_entry(
        "traceroute.run_campaign",
        "Periodic traceroutes from probes in one region to targets in another.",
        ["latency_measurement", "traceroute", "temporal_data"],
        [("src_region", "str region name"), ("dst_region", "str"),
         ("window_start", "float"), ("window_end", "float"), ("interval_s", "float")],
        [("measurements", "list of {ts,probe_id,src_country,dst_country,rtt_ms,link_ids}")],
        "repro.traceroute.api:run_campaign",
        constraints=["cost scales with window/interval and probe counts"],
        cost_hint="expensive",
    ))
    registry.add(_entry(
        "traceroute.latency_series",
        "Bin raw measurements into latency time series per country pair.",
        ["series_aggregation", "latency_series"],
        [("measurement_rows", "list"), ("group_by", "str"), ("bin_seconds", "float")],
        [("series", "dict key -> list of {bin_start,median_rtt_ms,...}")],
        "repro.traceroute.api:latency_series",
    ))
    registry.add(_entry(
        "traceroute.detect_latency_anomalies",
        "Significant latency level shifts (CUSUM onset + Mann-Whitney test).",
        ["latency_anomaly_detection", "anomaly_detection", "statistical_testing"],
        [("series_rows", "dict from traceroute.latency_series")],
        [("anomalies", "list of {series_key,onset_ts,increase_pct,p_value,significant}")],
        "repro.traceroute.api:detect_latency_anomalies",
    ))
    registry.add(_entry(
        "traceroute.paths_crossing_links",
        "Measurements whose forwarding path crossed any of the given IP links.",
        ["path_filtering", "infrastructure_correlation"],
        [("measurement_rows", "list"), ("link_ids", "list[str]")],
        [("rows", "filtered measurement rows")],
        "repro.traceroute.api:paths_crossing_links",
    ))

    # --- Topology -------------------------------------------------------------
    registry.add(_entry(
        "topology.as_dependency_scores",
        "Hegemony-like transit dependency score per AS.",
        ["as_dependency", "dependency_graph"],
        [],
        [("scores", "dict asn -> fraction of paths transiting it")],
        "repro.topology.dependency:as_dependency_scores",
        cost_hint="expensive",
    ))
    registry.add(_entry(
        "topology.propagate_cascade",
        "Propagate link failures through load redistribution across rounds.",
        ["cascade_modeling", "failure_propagation"],
        [("initial_failed_link_ids", "list[str]"), ("initial_cable_ids", "list[str]")],
        [("cascade", "dict {rounds,timeline,final_failed_link_ids,final_isolated_asns}")],
        "repro.core.catalog:cascade_adapter",
        constraints=["rounds bounded; load model is an approximation"],
        cost_hint="expensive",
    ))

    return registry
