"""Workflow DAG utilities: validation, ordering, signatures.

A workflow is a list of :class:`~repro.core.artifacts.WorkflowStep` whose
input bindings reference workflow inputs, constants or prior step outputs.
This module checks well-formedness (the invariants the property tests pin
down), derives execution order, and computes the *functional signature* used
to compare generated workflows against expert ones.
"""

from __future__ import annotations

import json

from repro.core.artifacts import CandidateWorkflow, StepType, WorkflowStep


class WorkflowValidationError(ValueError):
    """A workflow violates a structural invariant."""


def parse_binding(binding: str) -> tuple[str, str]:
    """Split a binding into (kind, payload); kind ∈ {workflow, step, const}."""
    if ":" not in binding:
        raise WorkflowValidationError(f"malformed binding {binding!r}")
    kind, payload = binding.split(":", 1)
    if kind not in ("workflow", "step", "const"):
        raise WorkflowValidationError(f"unknown binding kind {kind!r} in {binding!r}")
    return kind, payload


def validate_workflow(
    workflow: CandidateWorkflow,
    workflow_inputs: dict[str, str],
    registry_names: set[str] | None = None,
    transform_names: set[str] | None = None,
) -> None:
    """Raise :class:`WorkflowValidationError` on any structural violation.

    Checks: unique step ids, resolvable bindings (defined inputs, existing
    predecessor steps), known targets, and acyclicity.
    """
    seen: set[str] = set()
    for step in workflow.steps:
        if step.id in seen:
            raise WorkflowValidationError(f"duplicate step id {step.id!r}")
        seen.add(step.id)

    for step in workflow.steps:
        if step.step_type is StepType.REGISTRY and registry_names is not None:
            if step.target not in registry_names:
                raise WorkflowValidationError(
                    f"step {step.id!r} targets unknown registry entry {step.target!r}"
                )
        if step.step_type is StepType.TRANSFORM and transform_names is not None:
            if step.target not in transform_names:
                raise WorkflowValidationError(
                    f"step {step.id!r} targets unknown transform {step.target!r}"
                )
        if step.foreach:
            kind, payload = parse_binding(step.foreach)
            if kind != "step":
                raise WorkflowValidationError(
                    f"step {step.id!r} foreach must bind a step output, got {step.foreach!r}"
                )
        for param, binding in step.inputs.items():
            if binding == "item":
                if not step.foreach:
                    raise WorkflowValidationError(
                        f"step {step.id!r} uses 'item' binding without foreach"
                    )
                continue
            kind, payload = parse_binding(binding)
            if kind == "workflow" and payload not in workflow_inputs:
                raise WorkflowValidationError(
                    f"step {step.id!r} input {param!r} references undefined workflow input {payload!r}"
                )
            if kind == "step":
                ref_id = payload.split(".", 1)[0]
                if ref_id not in seen:
                    raise WorkflowValidationError(
                        f"step {step.id!r} input {param!r} references unknown step {ref_id!r}"
                    )
                if ref_id == step.id:
                    raise WorkflowValidationError(f"step {step.id!r} references itself")
            if kind == "const":
                try:
                    json.loads(payload)
                except json.JSONDecodeError as exc:
                    raise WorkflowValidationError(
                        f"step {step.id!r} const binding is not JSON: {payload!r}"
                    ) from exc

    topological_order(workflow)  # raises on cycles


def topological_order(workflow: CandidateWorkflow) -> list[WorkflowStep]:
    """Steps in dependency order (Kahn's algorithm, stable by step id)."""
    by_id = {step.id: step for step in workflow.steps}
    in_degree: dict[str, int] = {step.id: 0 for step in workflow.steps}
    dependents: dict[str, list[str]] = {step.id: [] for step in workflow.steps}
    for step in workflow.steps:
        for dep in set(step.binding_step_ids()):
            if dep not in by_id:
                raise WorkflowValidationError(
                    f"step {step.id!r} depends on unknown step {dep!r}"
                )
            in_degree[step.id] += 1
            dependents[dep].append(step.id)

    ready = sorted(sid for sid, deg in in_degree.items() if deg == 0)
    ordered: list[WorkflowStep] = []
    while ready:
        current = ready.pop(0)
        ordered.append(by_id[current])
        for nxt in dependents[current]:
            in_degree[nxt] -= 1
            if in_degree[nxt] == 0:
                ready.append(nxt)
        ready.sort()
    if len(ordered) != len(workflow.steps):
        cyclic = sorted(sid for sid, deg in in_degree.items() if deg > 0)
        raise WorkflowValidationError(f"workflow has a cycle involving {cyclic}")
    return ordered


def functional_signature(workflow: CandidateWorkflow) -> set[str]:
    """Order-insensitive summary of what the workflow *does*.

    One token per step: its target (registry function or transform name).
    Two workflows with equal signatures perform the same operations, however
    differently they are wired — the unit of comparison for "functional
    overlap" in the paper's case studies.
    """
    return {step.target for step in workflow.steps}


def stage_kinds(workflow: CandidateWorkflow, kind_of_target: dict[str, str]) -> set[str]:
    """Map step targets to canonical analysis-stage kinds.

    ``kind_of_target`` translates a step target into a canonical stage name
    (e.g. ``nautilus.get_cable_dependencies`` → ``dependency_resolution``).
    Unknown targets map to themselves.
    """
    return {kind_of_target.get(step.target, step.target) for step in workflow.steps}


def to_mermaid(workflow: CandidateWorkflow) -> str:
    """Mermaid flowchart rendering for docs and expert-mode review."""
    lines = ["flowchart TD"]
    for step in workflow.steps:
        shape_l, shape_r = ("[", "]") if step.step_type is StepType.REGISTRY else ("([", "])")
        lines.append(f'    {step.id}{shape_l}"{step.target}"{shape_r}')
    for step in workflow.steps:
        for dep in sorted(set(step.binding_step_ids())):
            lines.append(f"    {dep} --> {step.id}")
    return "\n".join(lines)
