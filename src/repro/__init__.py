"""ArachNet reproduction: an agentic workflow for Internet measurement research.

Reproduction of Ramanathan et al., "Towards an Agentic Workflow for Internet
Measurement Research" (HotNets 2025).  The package bundles the four-agent
workflow-composition system (:mod:`repro.core`) with complete offline
implementations of every measurement substrate the paper's case studies
depend on: Nautilus-style cable cartography (:mod:`repro.nautilus`),
Xaminer-style resilience analysis (:mod:`repro.xaminer`), BGP collection and
anomaly detection (:mod:`repro.bgp`), traceroute campaigns
(:mod:`repro.traceroute`), topology/cascade modeling
(:mod:`repro.topology`), statistics and forensics (:mod:`repro.analysis`),
and a deterministic synthetic Internet (:mod:`repro.synth`).
"""

__version__ = "1.0.0"

from repro.core import ArachNet, ExpertHooks, Registry, default_registry
from repro.synth import SyntheticWorld, WorldConfig, build_world

__all__ = [
    "ArachNet",
    "ExpertHooks",
    "Registry",
    "default_registry",
    "SyntheticWorld",
    "WorldConfig",
    "build_world",
    "__version__",
]
