"""Registry evolution (paper §3): the curator grows capabilities organically.

Runs the same analysis class repeatedly and shows validation-first gating:
the reusable composite is promoted exactly once; repeats and failures add
nothing.

Run:  python examples/registry_evolution.py
"""

from repro.core import ArachNet, default_registry
from repro.synth import build_world

QUERY = "Identify the impact at a country level due to SeaMeWe-5 cable failure"


def main() -> None:
    world = build_world()
    registry = default_registry().subset(frameworks=["nautilus"])
    print(f"registry starts with {len(registry)} entries: {registry.names()}")

    system = ArachNet.for_world(world, registry=registry)
    for run in (1, 2):
        result = system.answer(QUERY)
        report = result.curator
        print(f"\nrun {run}:")
        for candidate in report.candidates:
            status = ("PROMOTED" if candidate.validated
                      else f"rejected ({candidate.rejection_reason})")
            print(f"  candidate {candidate.name}: {status}")
            print(f"    composed of: {candidate.composed_of}")
        print(f"  registry size now {len(registry)}")

    promoted = registry.get("composite.cable_country_impact")
    print("\npromoted entry:")
    print(f"  name:         {promoted.name}")
    print(f"  provenance:   {promoted.provenance}")
    print(f"  capabilities: {list(promoted.capabilities)}")
    print(f"  summary:      {promoted.summary}")


if __name__ == "__main__":
    main()
