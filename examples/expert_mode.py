"""Expert mode (paper §3): specialists review and adjust between stages.

An expert hook tightens the analysis (adds a methodological constraint) and
redirects the design to a different cable before implementation — the
"review and adjust outputs between agents" loop the paper describes.

Run:  python examples/expert_mode.py
"""

from repro.core import ArachNet, ExpertHooks
from repro.core.artifacts import Constraint
from repro.synth import build_world

QUERY = "Identify the impact at a country level due to SeaMeWe-5 cable failure"


def main() -> None:
    world = build_world()

    def review_analysis(analysis):
        print("[expert] reviewing problem analysis…")
        analysis.constraints.append(Constraint(
            kind="methodological",
            description="report per-metric breakdowns, not just scores",
        ))
        return analysis

    def review_design(design):
        print("[expert] reviewing workflow design…")
        print(f"[expert]   scout chose: {[s.target for s in design.chosen.steps]}")
        # The operator actually cares about AAE-1 today; redirect the target.
        design.param_defaults["cable_name"] = "AAE-1"
        print("[expert]   retargeting analysis to AAE-1")
        return design

    system = ArachNet.for_world(
        world,
        mode="expert",
        hooks=ExpertHooks(on_analysis=review_analysis, on_design=review_design),
    )
    result = system.answer(QUERY)
    assert result.execution.succeeded, result.execution.error

    print("\nstage trace (expert-reviewed stages marked *):")
    for trace in result.stage_trace:
        mark = " *" if trace.expert_reviewed else ""
        print(f"  {trace.agent}: {trace.artifact_kind}{mark}")

    final = result.execution.outputs["final"]
    print(f"\n{final['title']}  (context: {final['context']})")
    for row in final["ranking"][:5]:
        print(f"  {row['country']}: {row['score']:.4f}")


if __name__ == "__main__":
    main()
