"""Case study 1 (paper §4.1): expert solution replication.

Reproduces the paper's controlled setup: the agent sees only core Nautilus
functions (Xaminer's abstractions withheld) and must independently derive a
country-level impact pipeline.  The output is compared against the expert
Xaminer-style solution side by side.

Run:  python examples/cable_impact.py
"""

from repro.core import ArachNet, default_registry
from repro.evalharness.stagekinds import overlap_report
from repro.experts import expert_cable_country_impact
from repro.synth import build_world

QUERY = "Identify the impact at a country level due to SeaMeWe-5 cable failure"


def main() -> None:
    world = build_world()

    # The paper's setup: withhold Xaminer, provide only Nautilus.
    registry = default_registry().subset(frameworks=["nautilus"])
    system = ArachNet.for_world(world, registry=registry)
    result = system.answer(QUERY)
    assert result.execution.succeeded, result.execution.error

    expert = expert_cable_country_impact(world, "SeaMeWe-5")
    overlap = overlap_report(result.design, expert)

    print("=== generated (ArachNet, Nautilus-only registry) ===")
    print(f"steps: {[s.target for s in result.design.chosen.steps]}")
    print(f"LoC:   {result.solution.loc} (paper reports ≈250)")
    generated = result.execution.outputs["final"]["ranking"]
    for row in generated[:6]:
        print(f"  {row['country']}: {row['links_affected']} links, "
              f"{row['ips_affected']} IPs, score {row['score']:.4f}")

    print("\n=== expert (Xaminer embeddings) ===")
    print(f"stages: {expert['stage_kinds']}")
    for row in expert["ranking"][:6]:
        print(f"  {row['country']}: score {row['score']:.4f}")

    print("\n=== comparison ===")
    print(f"functional overlap (jaccard): {overlap['jaccard']}")
    print(f"expert stage coverage:        {overlap['expert_coverage']}")
    print(f"shared stages:                {overlap['shared']}")
    print("\nBoth pipelines identify the same affected countries from the same")
    print("inferred dependency set; they differ only in score normalisation")
    print("(per-country embeddings vs direct fractions) — the architectural")
    print("difference the paper describes in its detailed comparison.")


if __name__ == "__main__":
    main()
