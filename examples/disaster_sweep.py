"""Case study 2 (paper §4.1): multi-disaster impact with skilled restraint.

The full multi-framework registry is available, but the right solution uses
one versatile function — ``xaminer.process_event`` — iterated per severe
event at the query's 10% failure probability, then combined.

Run:  python examples/disaster_sweep.py
"""

from repro.core import ArachNet, StepType
from repro.synth import build_world

QUERY = ("Identify the impact of severe earthquakes and hurricanes globally "
         "assuming a 10% infra failure probability")


def main() -> None:
    world = build_world()
    system = ArachNet.for_world(world)
    result = system.answer(QUERY)
    assert result.execution.succeeded, result.execution.error

    registry_steps = [s.target for s in result.design.chosen.steps
                      if s.step_type is StepType.REGISTRY]
    print(f"query: {QUERY}")
    print(f"\nextracted failure probability: "
          f"{result.design.param_defaults['failure_probability']}")
    print(f"registry functions invoked: {sorted(set(registry_steps))}")
    print(f"frameworks: {result.design.chosen.frameworks_used()} "
          "(restraint: one framework despite many available)")
    print(f"rationale: {result.design.chosen.rationale[:140]}…")
    print(f"rejected alternative: {result.design.alternatives[0].rationale[:100]}…")

    final = result.execution.outputs["final"]
    combined = final["context"]
    print(f"\nevents combined: {combined.get('events_combined')}")
    print(f"failed cables:   {combined.get('failed_cable_ids')}")
    print("\nglobal impact ranking:")
    for row in final["ranking"][:8]:
        print(f"  {row['country']}: {row['score']:.4f}")


if __name__ == "__main__":
    main()
