"""Quickstart: ask ArachNet a measurement question in plain English.

Builds the synthetic Internet, assembles the four-agent system over the
default registry, and runs one query end to end — printing the decomposition,
the designed workflow, the generated code size and the analytical answer.

Run:  python examples/quickstart.py
"""

from repro.core import ArachNet
from repro.core.workflow import to_mermaid
from repro.synth import build_world

QUERY = "Identify the impact at a country level due to SeaMeWe-5 cable failure"


def main() -> None:
    world = build_world()
    print(f"synthetic Internet: {world.summary()}")

    system = ArachNet.for_world(world)
    result = system.answer(QUERY)

    print(f"\nquery:  {QUERY}")
    print(f"intent: {result.analysis.intent} ({result.analysis.complexity.value})")
    print("\nsub-problems:")
    for sp in result.analysis.sub_problems:
        deps = f" (after {', '.join(sp.depends_on)})" if sp.depends_on else ""
        print(f"  {sp.id}: {sp.title}{deps}")

    print("\nworkflow:")
    print(to_mermaid(result.design.chosen))
    print(f"\ngenerated solution: {result.solution.loc} lines, "
          f"QA: {', '.join(result.solution.qa_checks)}")

    assert result.execution.succeeded, result.execution.error
    final = result.execution.outputs["final"]
    print(f"\n{final['title']}")
    for row in final["ranking"][:8]:
        print(f"  {row['country']}: score {row['score']:.4f}")

    print("\nquality report:")
    for check, outcome in result.execution.quality_report.items():
        print(f"  {check}: {'pass' if outcome.get('passed') else 'FAIL'}")


if __name__ == "__main__":
    main()
