"""Case study 4 (paper §4.3): automated root-cause investigation.

A hidden ground-truth incident (SeaMeWe-5 fails three days before "now") is
injected into the measurement context.  The agents never see it — only its
observables: elevated Europe→Asia latency and a BGP re-convergence burst.
The generated forensic workflow must recover the cable from evidence alone.

Run:  python examples/forensic_investigation.py
"""

from repro.core import ArachNet
from repro.synth import build_world, make_latency_incident

QUERY = ("A sudden increase in latency was observed from European probes to "
         "Asian destinations starting three days ago. Determine if a submarine "
         "cable failure caused this, and if so, identify the specific cable.")


def main() -> None:
    world = build_world()
    incident = make_latency_incident(world, "SeaMeWe-5", days_of_history=7,
                                     days_since_onset=3)
    print(f"[ground truth, hidden from agents] {incident.cable_name} fails at "
          f"t={incident.onset:.0f}s")

    system = ArachNet.for_world(world, incidents=[incident])
    result = system.answer(QUERY)
    assert result.execution.succeeded, result.execution.error

    final = result.execution.outputs["final"]
    print(f"\ngenerated LoC: {result.solution.loc} (paper reports ≈750)")
    print(f"\nverdict:    {final['verdict']}")
    print(f"confidence: {final['confidence']}")
    print(f"identified: {final['identified_cable_name']} "
          f"({'CORRECT' if final['identified_cable_name'] == incident.cable_name else 'WRONG'})")
    print(f"onset estimate: t={final['onset_estimate']:.0f}s "
          f"(truth {incident.onset:.0f}s)")

    print("\nevidence strands:")
    for strand in final["strands"]:
        stance = "supports" if strand["supports"] else "does not support"
        print(f"  [{strand['kind']:>14}] {stance} "
              f"(strength {strand['strength']:.2f}) — {strand['detail']}")

    print("\nnarrative:")
    print(final["narrative"])


if __name__ == "__main__":
    main()
