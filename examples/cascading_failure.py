"""Case study 3 (paper §4.2): automated cascading-failure analysis.

Four frameworks integrate automatically: Nautilus scopes the Europe–Asia
corridor and maps links, Xaminer quantifies per-cable impact, a generated
graph algorithm propagates the cascade over shared-AS bridges, and BGP +
traceroute capture the temporal evolution — unified into one cross-layer
timeline.

Run:  python examples/cascading_failure.py
"""

from collections import Counter

from repro.core import ArachNet
from repro.synth import build_world

QUERY = "Analyze the cascading effects of submarine cable failures between Europe and Asia"


def main() -> None:
    world = build_world()
    system = ArachNet.for_world(world)
    result = system.answer(QUERY)
    assert result.execution.succeeded, result.execution.error

    print(f"query: {QUERY}")
    print(f"frameworks integrated: {result.design.chosen.frameworks_used()}")
    print(f"generated LoC: {result.solution.loc} (paper reports ≈525)")

    final = result.execution.outputs["final"]
    print(f"\ncorridor cables: {final['corridor_cables']}")
    print(f"cascade rounds:  {final['cascade_rounds']}")
    print(f"timeline events by layer: {final['layer_counts']}")

    print("\ncascade timeline (first 12 events):")
    for event in final["timeline"][:12]:
        print(f"  round {event['order']} [{event['layer']:>5}] "
              f"{event['event']}: {event['id']}")

    kinds = Counter(e["event"] for e in final["timeline"])
    print(f"\nevent mix: {dict(kinds)}")
    print(f"latency-degraded country pairs: "
          f"{len(final['degraded_latency_pairs'])}")
    print("\ntop impacted countries:")
    for row in final["country_ranking"][:6]:
        print(f"  {row['country']}: {row['score']:.4f}")


if __name__ == "__main__":
    main()
