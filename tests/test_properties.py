"""Property-based tests (hypothesis) for core data structures and invariants."""

import math

from hypothesis import given, settings, strategies as st

from repro.analysis.changepoint import cusum_change_point
from repro.bgp.collector import BGPCollectorSim
from repro.synth.world import WorldConfig, build_world
from repro.analysis.evidence import EvidenceItem, synthesize_evidence
from repro.analysis.scoring import rank_suspects
from repro.analysis.stats import mad, median, robust_zscores
from repro.bgp.messages import path_edit_distance
from repro.core.artifacts import CandidateWorkflow, StepType, WorkflowStep
from repro.core.workflow import WorkflowValidationError, topological_order
from repro.nautilus.sol import max_distance_km, min_rtt_ms
from repro.synth.geography import haversine_km, interpolate

finite_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)
coords = st.tuples(
    st.floats(min_value=-89.9, max_value=89.9),
    st.floats(min_value=-179.9, max_value=179.9),
)


# -- geography ---------------------------------------------------------------------

@given(coords, coords)
def test_haversine_symmetric_nonnegative(a, b):
    d_ab = haversine_km(a, b)
    d_ba = haversine_km(b, a)
    assert d_ab >= 0
    assert math.isclose(d_ab, d_ba, rel_tol=1e-9, abs_tol=1e-9)


@given(coords, coords, coords)
def test_haversine_triangle_inequality(a, b, c):
    assert haversine_km(a, c) <= haversine_km(a, b) + haversine_km(b, c) + 1e-6


@given(coords, coords, st.floats(min_value=0.0, max_value=1.0))
def test_interpolate_stays_in_bounding_box(a, b, fraction):
    lat, lon = interpolate(a, b, fraction)
    assert min(a[0], b[0]) - 1e-9 <= lat <= max(a[0], b[0]) + 1e-9
    assert min(a[1], b[1]) - 1e-9 <= lon <= max(a[1], b[1]) + 1e-9


# -- speed of light -----------------------------------------------------------------

@given(st.floats(min_value=0.0, max_value=1e5))
def test_sol_roundtrip(distance):
    assert math.isclose(max_distance_km(min_rtt_ms(distance)), distance,
                        rel_tol=1e-9, abs_tol=1e-9)


@given(st.floats(min_value=0.0, max_value=1e5),
       st.floats(min_value=0.0, max_value=1e5))
def test_min_rtt_monotone(d1, d2):
    if d1 <= d2:
        assert min_rtt_ms(d1) <= min_rtt_ms(d2)


# -- statistics ------------------------------------------------------------------------

@given(st.lists(finite_floats, min_size=1, max_size=50))
def test_median_between_min_and_max(values):
    m = median(values)
    assert min(values) <= m <= max(values)


@given(st.lists(finite_floats, min_size=1, max_size=50))
def test_mad_nonnegative(values):
    assert mad(values) >= 0


@given(st.lists(finite_floats, min_size=1, max_size=50), finite_floats)
def test_median_shift_equivariance(values, shift):
    shifted = [v + shift for v in values]
    assert math.isclose(median(shifted), median(values) + shift,
                        rel_tol=1e-6, abs_tol=1e-6)


@given(st.lists(finite_floats, min_size=3, max_size=60))
def test_robust_zscores_length_and_median_zero(values):
    scores = robust_zscores(values)
    assert len(scores) == len(values)
    assert abs(median(scores)) < 1e-9


# -- change points -----------------------------------------------------------------------

@given(
    st.floats(min_value=-100, max_value=100),
    st.floats(min_value=5.0, max_value=100.0),
    st.integers(min_value=8, max_value=30),
    st.integers(min_value=8, max_value=30),
)
def test_cusum_locates_clean_shift(base, delta, n_before, n_after):
    values = [base] * n_before + [base + delta] * n_after
    idx = cusum_change_point(values)
    assert idx is not None
    assert abs(idx - n_before) <= 2


@given(st.lists(finite_floats, min_size=0, max_size=7))
def test_cusum_short_series_none(values):
    assert cusum_change_point(values) is None


# -- path edit distance ---------------------------------------------------------------------

as_paths = st.lists(st.integers(min_value=1, max_value=99), min_size=0, max_size=8).map(tuple)


@given(as_paths, as_paths)
def test_edit_distance_metric_properties(a, b):
    d = path_edit_distance(a, b)
    assert d == path_edit_distance(b, a)
    assert d >= abs(len(a) - len(b))
    assert d <= max(len(a), len(b))
    assert (d == 0) == (a == b)


@given(as_paths, as_paths, as_paths)
@settings(max_examples=50)
def test_edit_distance_triangle(a, b, c):
    assert path_edit_distance(a, c) <= (
        path_edit_distance(a, b) + path_edit_distance(b, c)
    )


# -- suspect scoring ----------------------------------------------------------------------------

@given(
    st.lists(
        st.fixed_dictionaries(
            {"id": st.text(min_size=1, max_size=5),
             "votes": st.floats(min_value=0, max_value=100)}
        ),
        min_size=1,
        max_size=10,
        unique_by=lambda r: r["id"],
    )
)
def test_rank_suspects_scores_bounded_and_sorted(rows):
    ranked = rank_suspects(rows, weights={"votes": 1.0})
    scores = [r["score"] for r in ranked]
    assert scores == sorted(scores, reverse=True)
    assert all(-1e-9 <= s <= 1.0 + 1e-9 for s in scores)
    assert len(ranked) == len(rows)


# -- evidence synthesis ----------------------------------------------------------------------------

evidence_items = st.lists(
    st.builds(
        EvidenceItem,
        kind=st.sampled_from(["statistical", "infrastructure", "routing"]),
        description=st.just("d"),
        strength=st.floats(min_value=0.0, max_value=1.0),
        supports=st.booleans(),
    ),
    min_size=0,
    max_size=8,
)


@given(evidence_items)
def test_synthesis_confidence_bounded(items):
    out = synthesize_evidence(items)
    assert 0.0 <= out["confidence"] <= 1.0
    assert out["supporting"] + out["contradicting"] == len(items)


@given(evidence_items)
def test_synthesis_all_contradicting_means_low_confidence(items):
    contradicting = [
        EvidenceItem(i.kind, i.description, i.strength, False) for i in items
    ]
    out = synthesize_evidence(contradicting)
    assert out["confidence"] == 0.0 or not contradicting


# -- workflow DAG --------------------------------------------------------------------------------

@st.composite
def linear_workflows(draw):
    """Random chains with arbitrary extra back-references (always acyclic)."""
    length = draw(st.integers(min_value=1, max_value=8))
    steps = []
    for i in range(length):
        inputs = {}
        if i > 0:
            back = draw(st.integers(min_value=0, max_value=i - 1))
            inputs["data"] = f"step:s{back}"
        steps.append(
            WorkflowStep(id=f"s{i}", step_type=StepType.TRANSFORM,
                         target="build_report", inputs=inputs)
        )
    return CandidateWorkflow(steps=steps)


@given(linear_workflows())
def test_topological_order_is_consistent(workflow):
    order = topological_order(workflow)
    assert len(order) == len(workflow.steps)
    positions = {step.id: i for i, step in enumerate(order)}
    for step in workflow.steps:
        for dep in step.binding_step_ids():
            assert positions[dep] < positions[step.id]


@given(st.integers(min_value=2, max_value=6))
def test_cycle_always_detected(n):
    steps = [
        WorkflowStep(id=f"s{i}", step_type=StepType.TRANSFORM,
                     target="build_report",
                     inputs={"data": f"step:s{(i + 1) % n}"})
        for i in range(n)
    ]
    workflow = CandidateWorkflow(steps=steps)
    try:
        topological_order(workflow)
        raise AssertionError("cycle not detected")
    except WorkflowValidationError:
        pass


# -- incremental route convergence --------------------------------------------------

# Module-level substrate shared by every example: building the world once is
# what keeps ~dozens of hypothesis examples cheap.  The collector is shared
# too, deliberately — the incremental path must equal the full recompute
# regardless of which failure states happened to be cached by prior examples.
_ROUTING_WORLD = build_world(WorldConfig(seed=3, tier1_count=6,
                                         tier2_per_region=2, edge_density=0.5))
_ROUTING_SIM = BGPCollectorSim(_ROUTING_WORLD)
_CABLE_LINK_IDS = sorted(l.id for l in _ROUTING_WORLD.ip_links if l.cable_id)

failure_sets = st.lists(
    st.sampled_from(_CABLE_LINK_IDS), max_size=6, unique=True
).map(frozenset)


@settings(max_examples=25, deadline=None)
@given(failure_sets)
def test_incremental_routes_equal_full_for_random_failures(failed):
    """The affected-frontier incremental table must be indistinguishable
    from a from-scratch SPF for every failure set, whatever the cache
    history looks like when the set is first encountered."""
    assert _ROUTING_SIM.routes_under(failed) == _ROUTING_SIM.routes_under_full(failed)


@settings(max_examples=25, deadline=None)
@given(failure_sets)
def test_frontier_recompute_never_exceeds_full(failed):
    """On a cache miss, every peer is either recomputed or structurally
    shared — and the recomputed frontier can never exceed the full
    recompute's per-peer work."""
    before = dict(_ROUTING_SIM.cache_info())
    _ROUTING_SIM.routes_under(failed)
    after = _ROUTING_SIM.cache_info()
    peers = len(_ROUTING_SIM.peers)
    recomputed = after["peers_recomputed"] - before["peers_recomputed"]
    shared = after["peers_shared"] - before["peers_shared"]
    assert 0 <= recomputed <= peers
    if after["misses"] > before["misses"] and after["incremental_recomputes"] > before["incremental_recomputes"]:
        # A fresh incremental entry accounts for every peer exactly once.
        assert recomputed + shared == peers
    if after["misses"] == before["misses"]:
        # A pure cache hit does zero convergence work.
        assert recomputed == 0 and shared == 0


@settings(max_examples=15, deadline=None)
@given(failure_sets)
def test_route_cache_hit_returns_identical_table(failed):
    first = _ROUTING_SIM.routes_under(failed)
    before = _ROUTING_SIM.cache_info()["hits"]
    second = _ROUTING_SIM.routes_under(failed)
    assert _ROUTING_SIM.cache_info()["hits"] == before + 1
    assert second is first  # memoized, not recomputed


@settings(max_examples=15, deadline=None)
@given(failure_sets)
def test_failures_never_create_routes(failed):
    """Severing links can only withdraw or reroute — a (peer, prefix) pair
    unroutable at baseline cannot become routable under failures."""
    baseline = _ROUTING_SIM.routes_under(frozenset())
    degraded = _ROUTING_SIM.routes_under(failed)
    assert set(degraded) <= set(baseline)


@settings(max_examples=10, deadline=None)
@given(st.lists(failure_sets, min_size=1, max_size=4))
def test_baseline_survives_arbitrary_failure_history(history):
    """The pinned baseline entry must stay byte-equal to a fresh full SPF
    no matter what failure states were computed (and evicted) in between."""
    for failed in history:
        _ROUTING_SIM.routes_under(failed)
    assert (_ROUTING_SIM.routes_under(frozenset())
            == _ROUTING_SIM.routes_under_full(frozenset()))


# -- raw routing core, per-origin repair, delta streams -----------------------------


@settings(max_examples=10, deadline=None)
@given(failure_sets)
def test_engine_paths_equal_legacy_router(failed):
    """The int-indexed batched SPF must be byte-identical to the legacy
    per-AS dict walk — same paths, same tie-breaks — for any failure set."""
    from repro.topology.relations import AdjacencyIndex, ASGraph
    from repro.topology.routing import LegacyValleyFreeRouter, shared_index

    graph = ASGraph.shared(_ROUTING_WORLD)
    index = shared_index(graph)
    dead = AdjacencyIndex.shared(_ROUTING_WORLD).dead_pairs(failed)
    legacy = LegacyValleyFreeRouter(graph.without_pairs(dead) if dead else graph)
    rows = index.filtered_rows(index.intern_pairs(dead))
    for peer in _ROUTING_SIM.peers:
        assert index.paths_over(peer, rows) == legacy.paths_from(peer)


@settings(max_examples=10, deadline=None)
@given(st.lists(failure_sets, min_size=2, max_size=6))
def test_repair_equals_full_under_any_query_order(history):
    """Per-origin frontier repair must equal a from-scratch SPF no matter
    which ancestor chain the query order happens to build in the cache."""
    sim = BGPCollectorSim(_ROUTING_WORLD)
    for failed in history:
        assert sim.routes_under(failed) == _ROUTING_SIM.routes_under_full(failed)


@settings(max_examples=12, deadline=None)
@given(failure_sets)
def test_delta_replay_reconstructs_table_byte_identically(failed):
    """A route delta applied to the baseline must rebuild the degraded
    table exactly — same rows, same paths, same iteration order."""
    baseline = _ROUTING_SIM.routes_under(frozenset())
    delta = _ROUTING_SIM.deltas_since(frozenset(), failed)
    rebuilt = delta.apply(baseline)
    assert list(rebuilt.items()) == list(
        _ROUTING_SIM.routes_under_full(failed).items()
    )


@settings(max_examples=8, deadline=None)
@given(st.lists(failure_sets, min_size=1, max_size=5))
def test_delta_stream_chain_reconstructs_every_epoch(history):
    """Replaying a delta stream's cuts *and heals* onto a running table
    keeps it equal to the full recompute at every epoch."""
    sim = BGPCollectorSim(_ROUTING_WORLD)
    table = dict(sim.routes_under(frozenset()))
    with sim.delta_stream() as stream:
        for failed in history:
            table = stream.advance(failed).apply(table)
            assert table == _ROUTING_SIM.routes_under_full(failed)
