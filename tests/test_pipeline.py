"""Pipeline: end-to-end runs, expert mode, stage tracing."""

import pytest

from repro.core.artifacts import Constraint
from repro.core.pipeline import ArachNet, ExpertHooks, build_data_context, standard_params
from repro.core.registry import default_registry

CS1 = "Identify the impact at a country level due to SeaMeWe-5 cable failure"


def test_data_context_shape(world):
    context = build_data_context(world)
    assert "SeaMeWe-5" in context["cable_names"]
    assert "europe" in context["regions"]
    assert set(context["region_country_map"]) <= set(context["regions"])
    assert "FR" in context["region_country_map"]["europe"]


def test_standard_params_window_covers_onset(world):
    params = standard_params(world, {"days_since_onset": 3})
    assert params["window_end"] - params["window_start"] >= 6 * 86_400.0
    assert params["now_ts"] == params["window_end"]


def test_pipeline_standard_mode_full_trace(world):
    system = ArachNet.for_world(world)
    result = system.answer(CS1)
    agents = [t.agent for t in result.stage_trace]
    assert agents == ["querymind", "workflowscout", "solutionweaver",
                      "executor", "registrycurator"]
    assert result.execution.succeeded
    assert not any(t.expert_reviewed for t in result.stage_trace)


def test_pipeline_without_curation(world):
    system = ArachNet.for_world(world, curate=False)
    result = system.answer(CS1)
    assert result.curator is None
    assert [t.agent for t in result.stage_trace][-1] == "executor"


def test_pipeline_rejects_unknown_mode(world):
    with pytest.raises(ValueError):
        ArachNet.for_world(world, mode="turbo")


def test_expert_mode_hooks_invoked_and_recorded(world):
    calls = []

    def on_analysis(analysis):
        calls.append("analysis")
        analysis.constraints.append(
            Constraint(kind="methodological", description="expert note")
        )
        return analysis

    def on_design(design):
        calls.append("design")
        return design

    system = ArachNet.for_world(
        world, mode="expert",
        hooks=ExpertHooks(on_analysis=on_analysis, on_design=on_design),
    )
    result = system.answer(CS1)
    assert calls == ["analysis", "design"]
    reviewed = {t.agent: t.expert_reviewed for t in result.stage_trace}
    assert reviewed["querymind"] and reviewed["workflowscout"]
    assert not reviewed["solutionweaver"]
    assert any(c.description == "expert note" for c in result.analysis.constraints)


def test_expert_hooks_ignored_in_standard_mode(world):
    calls = []
    system = ArachNet.for_world(
        world, hooks=ExpertHooks(on_analysis=lambda a: calls.append("x") or a)
    )
    system.answer(CS1)
    assert calls == []


def test_expert_can_modify_params_via_design_hook(world):
    def on_design(design):
        design.param_defaults["cable_name"] = "AAE-1"
        return design

    system = ArachNet.for_world(world, mode="expert",
                                hooks=ExpertHooks(on_design=on_design))
    result = system.answer(CS1)
    info_step = next(s for s in result.design.chosen.steps
                     if s.target == "nautilus.get_cable_info")
    info = result.execution.outputs["results"][info_step.id]
    assert info["name"] == "AAE-1"


def test_pipeline_result_serialises(world):
    import json

    system = ArachNet.for_world(world)
    result = system.answer(CS1)
    payload = result.to_dict()
    del payload["solution"]["source_code"]  # large but also serialisable
    json.dumps(payload)


def test_pipeline_params_override(world):
    system = ArachNet.for_world(world)
    result = system.answer(CS1, params={"cable_name": "FALCON"})
    final = result.execution.outputs["final"]
    assert "FALCON" in str(final.get("context", {}).get("cable_name", "")) or \
        result.execution.succeeded


def test_data_context_precomputed_once(world):
    system = ArachNet.for_world(world)
    assert system.data_context == build_data_context(world)
    # Derived in __post_init__, not per answer() call.
    assert system.data_context is system.data_context
    before = system.data_context
    system.answer(CS1)
    assert system.data_context is before


def test_stages_individually_invokable(world):
    system = ArachNet.for_world(world, curate=False)
    analysis = system.run_analysis(CS1)
    design = system.run_design(analysis)
    solution = system.run_solution(design, analysis)
    execution = system.run_execution(solution, design, analysis)
    assert analysis.intent == "cable_failure_impact"
    assert design.chosen.steps
    assert "def run" in solution.source_code
    assert execution.succeeded
    # The staged path and the one-shot path agree exactly.
    one_shot = system.answer(CS1)
    assert one_shot.solution.source_code == solution.source_code
    assert one_shot.execution.outputs["final"] == execution.outputs["final"]


def test_stage_observer_receives_every_stage(world):
    records = []
    system = ArachNet.for_world(world)
    system.answer(CS1, observer=records.append)
    assert [r.agent for r in records] == [
        "querymind", "workflowscout", "solutionweaver", "executor",
        "registrycurator"]
    assert all(r.duration_s >= 0.0 for r in records)
    assert not any(r.cache_hit for r in records)


def test_pipeline_cache_hits_are_byte_identical(world):
    from repro.serve.cache import ArtifactCache

    cache = ArtifactCache()
    system = ArachNet.for_world(world, curate=False, cache=cache)
    cold = system.answer(CS1)
    warm = system.answer(CS1)
    hits = {t.agent: t.cache_hit for t in warm.stage_trace}
    assert hits == {"querymind": True, "workflowscout": True,
                    "solutionweaver": True, "executor": False}
    assert warm.solution.source_code == cold.solution.source_code
    assert warm.analysis.to_dict() == cold.analysis.to_dict()
    assert warm.design.to_dict() == cold.design.to_dict()


def test_registry_evolution_invalidates_cache(world):
    from repro.serve.cache import ArtifactCache

    from repro.core.registry import RegistryEntry

    cache = ArtifactCache()
    # Registry evolution (e.g. a curator-promoted entry) changes the
    # fingerprint — the next identical query must not reuse stale artifacts.
    system = ArachNet.for_world(world, curate=False, cache=cache)
    system.answer(CS1)
    before = system.registry.fingerprint()
    system.registry.add(RegistryEntry(
        name="custom.new_capability", framework="custom",
        summary="added mid-serving", capabilities=("novelty",),
        inputs=(), outputs=(),
    ))
    assert system.registry.fingerprint() != before
    second = system.answer(CS1)
    analysis_hit = next(t for t in second.stage_trace
                        if t.agent == "querymind").cache_hit
    assert not analysis_hit
