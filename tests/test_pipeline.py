"""Pipeline: end-to-end runs, expert mode, stage tracing."""

import pytest

from repro.core.artifacts import Constraint
from repro.core.pipeline import ArachNet, ExpertHooks, build_data_context, standard_params
from repro.core.registry import default_registry

CS1 = "Identify the impact at a country level due to SeaMeWe-5 cable failure"


def test_data_context_shape(world):
    context = build_data_context(world)
    assert "SeaMeWe-5" in context["cable_names"]
    assert "europe" in context["regions"]
    assert set(context["region_country_map"]) <= set(context["regions"])
    assert "FR" in context["region_country_map"]["europe"]


def test_standard_params_window_covers_onset(world):
    params = standard_params(world, {"days_since_onset": 3})
    assert params["window_end"] - params["window_start"] >= 6 * 86_400.0
    assert params["now_ts"] == params["window_end"]


def test_pipeline_standard_mode_full_trace(world):
    system = ArachNet.for_world(world)
    result = system.answer(CS1)
    agents = [t.agent for t in result.stage_trace]
    assert agents == ["querymind", "workflowscout", "solutionweaver",
                      "executor", "registrycurator"]
    assert result.execution.succeeded
    assert not any(t.expert_reviewed for t in result.stage_trace)


def test_pipeline_without_curation(world):
    system = ArachNet.for_world(world, curate=False)
    result = system.answer(CS1)
    assert result.curator is None
    assert [t.agent for t in result.stage_trace][-1] == "executor"


def test_pipeline_rejects_unknown_mode(world):
    with pytest.raises(ValueError):
        ArachNet.for_world(world, mode="turbo")


def test_expert_mode_hooks_invoked_and_recorded(world):
    calls = []

    def on_analysis(analysis):
        calls.append("analysis")
        analysis.constraints.append(
            Constraint(kind="methodological", description="expert note")
        )
        return analysis

    def on_design(design):
        calls.append("design")
        return design

    system = ArachNet.for_world(
        world, mode="expert",
        hooks=ExpertHooks(on_analysis=on_analysis, on_design=on_design),
    )
    result = system.answer(CS1)
    assert calls == ["analysis", "design"]
    reviewed = {t.agent: t.expert_reviewed for t in result.stage_trace}
    assert reviewed["querymind"] and reviewed["workflowscout"]
    assert not reviewed["solutionweaver"]
    assert any(c.description == "expert note" for c in result.analysis.constraints)


def test_expert_hooks_ignored_in_standard_mode(world):
    calls = []
    system = ArachNet.for_world(
        world, hooks=ExpertHooks(on_analysis=lambda a: calls.append("x") or a)
    )
    system.answer(CS1)
    assert calls == []


def test_expert_can_modify_params_via_design_hook(world):
    def on_design(design):
        design.param_defaults["cable_name"] = "AAE-1"
        return design

    system = ArachNet.for_world(world, mode="expert",
                                hooks=ExpertHooks(on_design=on_design))
    result = system.answer(CS1)
    info_step = next(s for s in result.design.chosen.steps
                     if s.target == "nautilus.get_cable_info")
    info = result.execution.outputs["results"][info_step.id]
    assert info["name"] == "AAE-1"


def test_pipeline_result_serialises(world):
    import json

    system = ArachNet.for_world(world)
    result = system.answer(CS1)
    payload = result.to_dict()
    del payload["solution"]["source_code"]  # large but also serialisable
    json.dumps(payload)


def test_pipeline_params_override(world):
    system = ArachNet.for_world(world)
    result = system.answer(CS1, params={"cable_name": "FALCON"})
    final = result.execution.outputs["final"]
    assert "FALCON" in str(final.get("context", {}).get("cable_name", "")) or \
        result.execution.succeeded
