"""Execution backends: thread/process parity, payload validation, stats."""

import functools
import json

import pytest

from repro.core.llm.simulated import SimulatedHostedLLM
from repro.serve import (
    BackendError,
    CampaignJob,
    JobPayload,
    ProcessPoolBackend,
    QueryBroker,
    ServeConfig,
    ThreadPoolBackend,
    build_backend,
    run_campaign,
)
from repro.serve.backends import _process_execute, _worker_system
from repro.synth.scenarios import make_latency_incident
from repro.synth.world import WorldConfig, build_world


@pytest.fixture(scope="module")
def campaign_world():
    return build_world(WorldConfig())


def _campaign_jobs(world, count=3):
    names = world.cable_names()[:count]
    return [
        CampaignJob(
            query=f"Identify the impact at a country level due to {name} cable failure",
            tag=f"cable:{name}",
        )
        for name in names
    ]


def _run_backend_campaign(world, backend, jobs, cache_enabled=True):
    """One campaign through one backend; returns (report, digests, stats)."""
    broker = QueryBroker(
        world,
        config=ServeConfig(workers=2, backend=backend, cache_enabled=cache_enabled),
    ).start()
    try:
        report = run_campaign(broker, jobs)
        digests = [broker.result(t).artifact_digest() for t in report.tickets]
        payloads = [
            json.dumps(broker.result(t).to_dict()["execution"], sort_keys=True)
            for t in report.tickets
        ]
        # Stage provenance must reach the ledger through every backend
        # (streamed in-thread, replayed from the shipped result otherwise).
        ledger = broker.ledger.summary()
        assert ledger["per_stage"]["querymind"]["calls"] == len(jobs)
        stats = broker.stats()
    finally:
        broker.shutdown()
    return report, digests, payloads, stats


def test_build_backend_names():
    assert isinstance(build_backend("thread"), ThreadPoolBackend)
    assert isinstance(build_backend("process"), ProcessPoolBackend)
    with pytest.raises(BackendError):
        build_backend("carrier-pigeon")


def test_thread_process_parity_byte_identical(campaign_world):
    """The same campaign through both backends produces byte-identical
    artifacts — digests and serialized execution outputs match per job."""
    jobs = _campaign_jobs(campaign_world)
    t_report, t_digests, t_payloads, _ = _run_backend_campaign(
        campaign_world, "thread", jobs
    )
    p_report, p_digests, p_payloads, p_stats = _run_backend_campaign(
        campaign_world, "process", jobs
    )
    assert t_report.failed == 0 and p_report.failed == 0
    assert t_digests == p_digests
    assert t_payloads == p_payloads
    assert p_stats["backend"]["backend"] == "process"
    assert p_stats["backend"]["processes"] >= 1


def test_process_backend_with_incidents_and_hosted_llm(campaign_world):
    """Incidents and a picklable llm_factory ship across the process
    boundary and still match the thread backend byte for byte."""
    incident = make_latency_incident(campaign_world, "SeaMeWe-5")
    query = (
        "A sudden increase in latency was observed from European probes to "
        "Asian destinations starting three days ago. Determine if a submarine "
        "cable failure caused this, and if so, identify the specific cable."
    )
    digests = {}
    for backend in ("thread", "process"):
        broker = QueryBroker(
            campaign_world,
            incidents=[incident],
            config=ServeConfig(
                workers=2,
                backend=backend,
                llm_factory=functools.partial(SimulatedHostedLLM, latency_s=0.0),
            ),
        ).start()
        try:
            digests[backend] = broker.result(broker.submit(query)).artifact_digest()
        finally:
            broker.shutdown()
    assert digests["thread"] == digests["process"]


def test_process_backend_rejects_curation(campaign_world):
    broker = QueryBroker(
        config=ServeConfig(workers=1, backend="process", curate=True)
    )
    with pytest.raises(BackendError, match="curation"):
        broker.add_world("w", campaign_world)
    broker.shutdown()


def test_process_backend_rejects_unpicklable_llm_factory(campaign_world):
    broker = QueryBroker(
        config=ServeConfig(
            workers=1, backend="process",
            llm_factory=lambda: SimulatedHostedLLM(latency_s=0.0),
        )
    )
    with pytest.raises(BackendError, match="picklable"):
        broker.add_world("w", campaign_world)
    broker.shutdown()


def test_worker_system_verifies_world_fingerprint(campaign_world):
    """A payload whose fingerprint does not match the rebuilt world fails
    loudly instead of answering about a different Internet."""
    from repro.core.registry import default_registry

    registry = default_registry()
    payload = JobPayload(
        query="q", params=None,
        world_config=campaign_world.config,
        world_fingerprint="not-the-real-fingerprint",
        registry_names=tuple(registry.names()),
        registry_fingerprint=registry.fingerprint(),
    )
    with pytest.raises(BackendError, match="reproducible"):
        _worker_system(payload)


def test_process_execute_roundtrip_in_process(campaign_world):
    """The worker-side entry point is a pure function of its payload: it can
    run in this process and produce the same digest as a served job."""
    from repro.core.registry import default_registry

    registry = default_registry()
    query = "Identify the impact at a country level due to SeaMeWe-5 cable failure"
    payload = JobPayload(
        query=query, params=None,
        world_config=campaign_world.config,
        world_fingerprint=campaign_world.fingerprint(),
        registry_names=tuple(registry.names()),
        registry_fingerprint=registry.fingerprint(),
        cache_entries=64,
    )
    result, meta = _process_execute(payload)
    assert result.execution.succeeded
    assert meta["cache"]["misses"] > 0
    # Same payload again: the process-local system and artifact cache serve it.
    again, meta2 = _process_execute(payload)
    assert again.artifact_digest() == result.artifact_digest()
    assert meta2["cache"]["hits"] > 0


def test_process_backend_warm_cache_across_resubmission(campaign_world):
    """Resubmitting a campaign hits the process-local artifact caches.

    One worker so both rounds land on the same process — with several
    processes a resubmitted job may reach a sibling whose cache never saw
    it (caches are process-local by design).
    """
    jobs = _campaign_jobs(campaign_world, count=2)
    broker = QueryBroker(
        campaign_world, config=ServeConfig(workers=1, backend="process")
    ).start()
    try:
        first = run_campaign(broker, jobs)
        assert first.failed == 0
        second = run_campaign(broker, jobs)
        assert second.failed == 0
        merged = broker.stats()["backend"]["cache"]
        assert merged is not None and merged["hits"] > 0
    finally:
        broker.shutdown()


def test_backend_shutdown_is_idempotent(campaign_world):
    broker = QueryBroker(
        campaign_world, config=ServeConfig(workers=1, backend="process")
    ).start()
    broker.shutdown()
    broker.shutdown()  # second shutdown must be a no-op
